"""The query governor: per-query limits, cancellation, admission control.

The serving-layer story ("heavy traffic from millions of users") needs
more than fast queries — it needs **no query to be able to take the
endpoint down**.  This module is that resource-governance layer:

* :class:`QueryLimits` — per-query wall-clock deadline, result-row
  budget and binding-memory budget, an optional caller-held
  :class:`CancellationToken`, and the ``allow_partial`` opt-in for
  graceful degradation (deadline hit on a streamable query → partial
  results flagged ``truncated=True`` instead of an error);
* :class:`GovernorContext` — the per-request enforcement object the
  evaluator checks **cooperatively at batch boundaries** (join steps,
  streamed batches, index-scan strides); raises the typed taxonomy of
  :mod:`repro.sparql.errors` with the telemetry gathered so far;
* :class:`AdmissionController` — bounded concurrent-query slots plus a
  bounded wait queue; when both are full the request is **shed** with
  :class:`~repro.sparql.errors.EndpointOverloaded` instead of queueing
  unboundedly (load shedding beats collapse);
* :class:`QueryGovernor` — the endpoint-level bundle: default limits +
  an admission controller;
* :class:`CircuitBreaker` and :func:`retry_with_backoff` — the
  resilience primitives the enrichment layer wraps external fetches in
  (bounded exponential backoff, fail-fast once a source is known bad);
* :data:`GOVERNOR` — process-wide telemetry (admitted / queued / shed /
  timeouts / budget kills / truncated serves), rendered by ``EXPLAIN``
  next to the concurrency line.

Cancellation is **cooperative**: nothing is preempted mid-batch, so a
check cadence of one deadline read per batch (and one per
:data:`SCAN_CHECK_STRIDE` index entries inside a long scan) bounds
overshoot to a batch's worth of work while keeping the un-governed
fast path untouched.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

from repro.sparql.errors import (
    EndpointOverloaded,
    QueryCancelled,
    QueryTimeout,
    ResourceExhausted,
)

__all__ = [
    "AdmissionController",
    "CancellationToken",
    "CircuitBreaker",
    "CircuitOpenError",
    "GOVERNOR",
    "GovernorContext",
    "GovernorTelemetry",
    "QueryGovernor",
    "QueryLimits",
    "retry_with_backoff",
]

#: Index entries scanned between deadline checks inside one join-step
#: scan (the only loop that can run long between batch boundaries).
SCAN_CHECK_STRIDE = 2048


class CancellationToken:
    """A caller-held handle to cancel an in-flight query.

    Thread-safe: the caller cancels from any thread; the evaluator
    observes the flag at its next batch boundary.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled by caller") -> None:
        self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason}" if self.cancelled else "armed"
        return f"<CancellationToken {state}>"


@dataclass(frozen=True)
class QueryLimits:
    """Per-query resource limits (all optional; ``None`` = unlimited).

    ``deadline_seconds`` — wall-clock budget for the whole evaluation;
    ``max_rows`` — budget on *produced solution rows* (streamed rows
    and join-step outputs both count);
    ``max_binding_cells`` — budget on binding-table cells materialized
    (rows × columns), the evaluator's memory proxy;
    ``allow_partial`` — deadline/row-budget hits on a *streamable*
    query return the rows gathered so far with ``truncated=True``
    instead of raising;
    ``token`` — a caller-held :class:`CancellationToken`.
    """

    deadline_seconds: Optional[float] = None
    max_rows: Optional[int] = None
    max_binding_cells: Optional[int] = None
    allow_partial: bool = False
    token: Optional[CancellationToken] = None

    @property
    def unlimited(self) -> bool:
        return (self.deadline_seconds is None and self.max_rows is None
                and self.max_binding_cells is None and self.token is None)

    def merged_over(self, defaults: "QueryLimits") -> "QueryLimits":
        """These limits with unset fields filled from ``defaults``."""
        return QueryLimits(
            deadline_seconds=(self.deadline_seconds
                              if self.deadline_seconds is not None
                              else defaults.deadline_seconds),
            max_rows=(self.max_rows if self.max_rows is not None
                      else defaults.max_rows),
            max_binding_cells=(self.max_binding_cells
                               if self.max_binding_cells is not None
                               else defaults.max_binding_cells),
            allow_partial=self.allow_partial or defaults.allow_partial,
            token=self.token if self.token is not None else defaults.token)


class GovernorContext:
    """Per-request limit enforcement, checked at batch boundaries.

    Built by the endpoint once per governed request and handed to the
    evaluator through the :class:`~repro.sparql.evaluator.DatasetContext`.
    Not thread-safe (one request evaluates on one thread); the token it
    observes is.
    """

    __slots__ = ("limits", "started", "deadline", "rows", "cells",
                 "scanned", "_stride", "truncated")

    def __init__(self, limits: QueryLimits,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.limits = limits
        self.started = clock()
        self.deadline = (self.started + limits.deadline_seconds
                         if limits.deadline_seconds is not None else None)
        self.rows = 0         # solution rows produced so far
        self.cells = 0        # binding-table cells materialized so far
        self.scanned = 0      # index entries pulled through metered scans
        self._stride = SCAN_CHECK_STRIDE
        self.truncated = False

    # -- telemetry -----------------------------------------------------------

    def telemetry(self) -> Dict[str, object]:
        """Progress gathered so far, attached to governed errors."""
        return {
            "elapsed_seconds": round(time.monotonic() - self.started, 6),
            "rows_produced": self.rows,
            "binding_cells": self.cells,
            "entries_scanned": self.scanned,
        }

    # -- checks --------------------------------------------------------------

    def check(self) -> None:
        """One batch-boundary check: cancellation, then deadline."""
        token = self.limits.token
        if token is not None and token.cancelled:
            raise QueryCancelled(
                f"query cancelled: {token.reason}",
                telemetry=self.telemetry())
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeout(
                f"query exceeded its {self.limits.deadline_seconds:.3f}s "
                f"deadline", telemetry=self.telemetry())

    def charge_rows(self, rows: int, width: int = 1) -> None:
        """Account one produced batch (``rows`` solutions of ``width``
        columns), then run the boundary check."""
        self.rows += rows
        self.cells += rows * width
        limits = self.limits
        if limits.max_rows is not None and self.rows > limits.max_rows:
            raise ResourceExhausted(
                f"query produced more than max_rows={limits.max_rows} "
                f"solution rows", telemetry=self.telemetry())
        if limits.max_binding_cells is not None \
                and self.cells > limits.max_binding_cells:
            raise ResourceExhausted(
                f"query materialized more than max_binding_cells="
                f"{limits.max_binding_cells} binding cells",
                telemetry=self.telemetry())
        self.check()

    def charge_batches(self,
                       charges: Iterable[Tuple[int, int]]) -> None:
        """Replay a parallel worker's per-step charge log against this
        (single) budget.

        Workers never see the budget: each morsel records the
        ``(rows, width)`` batches its join steps produced, and the
        parent replays them here as results arrive.  That makes
        ``max_rows`` / ``max_binding_cells`` **global across the
        worker pool** — N workers share one allowance instead of
        getting one each — and any verdict raised here trips the
        query's shared control flag, which the remaining workers poll
        at morsel boundaries.
        """
        for rows, width in charges:
            self.charge_rows(rows, width)

    def tick_scan(self) -> None:
        """One scanned index entry; checks every
        :data:`SCAN_CHECK_STRIDE` entries so long scans stay
        interruptible between batch boundaries."""
        self.scanned += 1
        if self.scanned % self._stride == 0:
            self.check()

    def charge_scan(self, entries: int) -> None:
        """Account ``entries`` scanned index entries at once (the
        vectorized scan path produces a whole range per call instead of
        per-entry ticks).  The deadline check fires on the same stride
        boundaries :meth:`tick_scan` would have hit."""
        if entries <= 0:
            return
        before = self.scanned
        self.scanned = before + entries
        if before // self._stride != self.scanned // self._stride:
            self.check()

    def metered(self, match_ids: Callable[..., Iterable]) -> Callable:
        """Wrap a ``match_ids`` callable so its scans tick the governor."""
        def wrapped(pattern: object) -> Iterator:
            for ids in match_ids(pattern):
                self.tick_scan()
                yield ids
        return wrapped


class _AdmissionSlot:
    """RAII handle for one admitted query (returned by ``admit``)."""

    __slots__ = ("controller", "waited", "_released")

    def __init__(self, controller: "AdmissionController",
                 waited: bool) -> None:
        self.controller = controller
        self.waited = waited
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.controller._release()

    def __enter__(self) -> "_AdmissionSlot":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()


class AdmissionController:
    """Bounded concurrent-query slots with a bounded wait queue.

    ``max_concurrent`` queries run at once; up to ``max_queue`` more
    wait (at most ``queue_timeout`` seconds each).  Anything beyond
    that is **shed** immediately with
    :class:`~repro.sparql.errors.EndpointOverloaded` — bounded queues
    keep latency bounded; unbounded ones convert overload into
    collapse.
    """

    def __init__(self, max_concurrent: int, max_queue: int = 0,
                 queue_timeout: Optional[float] = None) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._condition = threading.Condition()
        self.active = 0
        self.queued = 0

    def admit(self) -> _AdmissionSlot:
        """Take a slot (waiting in the bounded queue if necessary) or
        shed with :class:`EndpointOverloaded`."""
        with self._condition:
            if self.active < self.max_concurrent:
                self.active += 1
                return _AdmissionSlot(self, waited=False)
            if self.queued >= self.max_queue:
                raise EndpointOverloaded(
                    f"endpoint overloaded: {self.active} queries active, "
                    f"wait queue full ({self.queued}/{self.max_queue})",
                    telemetry={"active": self.active,
                               "queued": self.queued,
                               "max_concurrent": self.max_concurrent,
                               "max_queue": self.max_queue})
            self.queued += 1
            deadline = (time.monotonic() + self.queue_timeout
                        if self.queue_timeout is not None else None)
            try:
                while self.active >= self.max_concurrent:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise EndpointOverloaded(
                                f"endpoint overloaded: queued "
                                f"{self.queue_timeout:.3f}s without a "
                                f"free slot",
                                telemetry={"active": self.active,
                                           "queued": self.queued})
                    self._condition.wait(remaining)
            finally:
                self.queued -= 1
            self.active += 1
            return _AdmissionSlot(self, waited=True)

    def _release(self) -> None:
        with self._condition:
            self.active -= 1
            self._condition.notify()

    def __repr__(self) -> str:
        return (f"<AdmissionController active={self.active}/"
                f"{self.max_concurrent} queued={self.queued}/"
                f"{self.max_queue}>")


@dataclass
class QueryGovernor:
    """The endpoint-level governance bundle.

    ``defaults`` apply to every request (per-call
    :class:`QueryLimits` override field-by-field); ``admission`` is
    the optional concurrent-slot controller.
    """

    defaults: QueryLimits = field(default_factory=QueryLimits)
    admission: Optional[AdmissionController] = None

    @classmethod
    def for_serving(cls, max_concurrent: int = 8, max_queue: int = 16,
                    queue_timeout: Optional[float] = 1.0,
                    **limit_fields: object) -> "QueryGovernor":
        """A production-shaped governor in one call."""
        return cls(defaults=QueryLimits(**limit_fields),
                   admission=AdmissionController(
                       max_concurrent, max_queue, queue_timeout))

    def effective(self, limits: Optional[QueryLimits]) -> QueryLimits:
        if limits is None:
            return self.defaults
        return limits.merged_over(self.defaults)


class GovernorTelemetry:
    """Process-wide governor counters (like ``CONCURRENCY``).

    ``admitted`` counts requests that got a slot (or ran ungoverned by
    admission), ``queued`` the subset that waited in the bounded queue
    first, ``shed`` requests rejected with ``EndpointOverloaded``,
    ``timeouts`` / ``cancelled`` / ``budget_kills`` the governed
    verdicts, ``truncated_serves`` partial results returned under
    ``allow_partial``, and ``mapped_internal_errors`` raw engine
    exceptions wrapped into :class:`QueryExecutionError`.
    """

    FIELDS = ("admitted", "queued", "shed", "timeouts", "cancelled",
              "budget_kills", "truncated_serves", "mapped_internal_errors")

    __slots__ = ("_lock",) + FIELDS

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for field in self.FIELDS:
            setattr(self, field, 0)

    def record(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {field: getattr(self, field) for field in self.FIELDS}

    def reset(self) -> None:
        with self._lock:
            for field in self.FIELDS:
                setattr(self, field, 0)

    def __repr__(self) -> str:
        return (f"<GovernorTelemetry admitted={self.admitted} "
                f"shed={self.shed} timeouts={self.timeouts} "
                f"budget_kills={self.budget_kills}>")


#: The process-wide governor counters (rendered by ``EXPLAIN``).
GOVERNOR = GovernorTelemetry()


# ---------------------------------------------------------------------------
# Resilience primitives for external sources
# ---------------------------------------------------------------------------


class CircuitOpenError(RuntimeError):
    """Fail-fast signal: the circuit breaker is open for this source."""

    code = "circuit_open"


class CircuitBreaker:
    """A classic three-state circuit breaker.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses instantly (no doomed fetch burns a
    worker).  After ``cooldown_seconds`` one *probe* call is let
    through (half-open); its success closes the circuit, its failure
    re-opens it for another cooldown.  ``clock`` is injectable so tests
    drive state transitions deterministically.
    """

    def __init__(self, failure_threshold: int = 5,
                 cooldown_seconds: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None

    def allow(self) -> bool:
        """Whether a call may proceed (True also for the probe call)."""
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if (self._clock() - self.opened_at
                        >= self.cooldown_seconds):
                    self.state = "half-open"
                    return True
                return False
            return True  # half-open: the probe is in flight

    def record_success(self) -> None:
        with self._lock:
            self.state = "closed"
            self.consecutive_failures = 0
            self.opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self.consecutive_failures += 1
            if (self.state == "half-open"
                    or self.consecutive_failures >= self.failure_threshold):
                self.state = "open"
                self.opened_at = self._clock()

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.state} "
                f"failures={self.consecutive_failures}>")


def retry_with_backoff(operation: Callable[[], object], *,
                       attempts: int = 3,
                       base_delay: float = 0.05,
                       max_delay: float = 1.0,
                       retry_on: tuple = (Exception,),
                       breaker: Optional[CircuitBreaker] = None,
                       sleep: Callable[[float], None] = time.sleep
                       ) -> object:
    """Run ``operation`` with bounded exponential-backoff retries.

    Delays are ``base_delay * 2**attempt`` capped at ``max_delay`` —
    *bounded*: after ``attempts`` tries the last exception propagates.
    A ``breaker`` is consulted before each attempt (fail-fast with
    :class:`CircuitOpenError` while open) and fed every outcome.
    ``sleep`` is injectable so tests run instantly.
    """
    last: Optional[BaseException] = None
    for attempt in range(attempts):
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"circuit open after {breaker.consecutive_failures} "
                f"consecutive failures")
        try:
            result = operation()
        except retry_on as error:
            if breaker is not None:
                breaker.record_failure()
            last = error
            if attempt + 1 < attempts:
                sleep(min(max_delay, base_delay * (2 ** attempt)))
            continue
        if breaker is not None:
            breaker.record_success()
        return result
    if last is None:
        # only reachable with attempts < 1: the loop never ran, so
        # there is no operation outcome to report
        raise ValueError("retry_with_backoff needs attempts >= 1")
    raise last
