"""Join-order optimization for basic graph patterns.

The engine evaluates a BGP by index-nested-loop joins: each step picks
the remaining triple pattern with the smallest estimated cardinality
*under the bindings accumulated so far* (a greedy selectivity order).
This mirrors what production stores (including Virtuoso, the paper's
endpoint) do for star-shaped observation queries, and keeps the 80k-fact
benchmark workloads tractable in pure Python.

The estimate comes from :meth:`repro.rdf.graph.Graph.estimate`, which is
exact for the bound shapes the QB2OLAP queries produce.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.rdf.terms import Term
from repro.sparql.algebra import PathPatternNode, TriplePatternNode, Var
from repro.sparql.paths import estimate_path

Binding = Dict[str, Term]

#: Penalty rank applied before cardinality: patterns with no bound
#: position join last unless nothing else is available.
_UNBOUND_PENALTY = 1 << 40


def substituted(pattern: TriplePatternNode, binding: Binding
                ) -> Tuple[Optional[Term], Optional[Term], Optional[Term]]:
    """The concrete match pattern under ``binding`` (None = wildcard)."""
    out = []
    for position in pattern.positions():
        if isinstance(position, Var):
            out.append(binding.get(position.name))
        else:
            out.append(position)
    return out[0], out[1], out[2]


def substituted_endpoints(pattern: PathPatternNode, binding: Binding
                          ) -> Tuple[Optional[Term], Optional[Term]]:
    """Concrete (start, end) endpoints of a path pattern under ``binding``."""
    out = []
    for position in pattern.endpoints():
        if isinstance(position, Var):
            out.append(binding.get(position.name))
        else:
            out.append(position)
    return out[0], out[1]


def pattern_cost(pattern, binding: Binding, source) -> int:
    """Estimated matches for ``pattern`` under ``binding``."""
    if isinstance(pattern, PathPatternNode):
        start, end = substituted_endpoints(pattern, binding)
        return estimate_path(source, pattern.path, start, end)
    concrete = substituted(pattern, binding)
    cost = source.estimate(concrete)
    if all(term is None for term in concrete):
        cost += _UNBOUND_PENALTY
    return cost


def choose_next(patterns: Sequence[TriplePatternNode], binding: Binding,
                source) -> int:
    """Index of the cheapest pattern to evaluate next (greedy)."""
    best_index = 0
    best_cost: Optional[int] = None
    for index, pattern in enumerate(patterns):
        cost = pattern_cost(pattern, binding, source)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
            if cost == 0:
                break  # cannot do better; also prunes dead branches early
    return best_index


def static_order(patterns: Sequence[TriplePatternNode], source,
                 bound_vars: Optional[set] = None) -> List[TriplePatternNode]:
    """A full greedy ordering computed once (used for EXPLAIN output).

    Unlike :func:`choose_next` (which re-plans per binding), this assumes
    every variable seen in an earlier pattern is bound, which is how the
    classic textbook heuristic works.
    """
    remaining = list(patterns)
    bound: set = set(bound_vars or ())
    ordered: List[TriplePatternNode] = []
    while remaining:
        def rank(pattern) -> Tuple[int, int]:
            if isinstance(pattern, PathPatternNode):
                unbound = sum(
                    1 for position in pattern.endpoints()
                    if isinstance(position, Var)
                    and position.name not in bound)
                return (unbound + 1, 4096)
            concrete = []
            for position in pattern.positions():
                if isinstance(position, Var):
                    concrete.append(
                        object() if position.name in bound else None)
                else:
                    concrete.append(position)
            # count wildcards: fewer wildcards first, then raw estimate
            wildcards = sum(1 for term in concrete if term is None)
            estimate_pattern = tuple(
                None if not isinstance(term, Term) else term
                for term in concrete)
            return (wildcards, source.estimate(estimate_pattern))

        remaining.sort(key=rank)
        chosen = remaining.pop(0)
        ordered.append(chosen)
        bound |= chosen.variables()
    return ordered
