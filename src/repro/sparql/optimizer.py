"""Join-order optimization and plan caching for basic graph patterns.

The engine evaluates a BGP as a pipeline of batch join steps (see
:mod:`repro.sparql.evaluator`).  The join *order* is planned **once per
distinct bound-variable signature** with the classic greedy heuristic
(fewest unbound positions first, ties broken by index cardinality) and
memoized in a process-wide LRU :class:`PlanCache`.  Cache keys include
the source graphs' mutation epochs, so a graph update naturally retires
the plans computed against its old statistics — entries for stale
epochs simply age out of the LRU.

The estimate comes from :meth:`repro.rdf.graph.Graph.estimate`, which
is exact for every pattern shape now that the indexes are id-keyed.

The per-binding helpers (:func:`choose_next`, :func:`pattern_cost`)
remain for the lazy existence-check path (ASK / EXISTS) and tooling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rdf.terms import Term
from repro.sparql.algebra import BGP, PathPatternNode, TriplePatternNode, Var
from repro.sparql.paths import estimate_path

Binding = Dict[str, Term]

#: Penalty rank applied before cardinality: patterns with no bound
#: position join last unless nothing else is available.
_UNBOUND_PENALTY = 1 << 40


def substituted(pattern: TriplePatternNode, binding: Binding
                ) -> Tuple[Optional[Term], Optional[Term], Optional[Term]]:
    """The concrete match pattern under ``binding`` (None = wildcard)."""
    out = []
    for position in pattern.positions():
        if isinstance(position, Var):
            out.append(binding.get(position.name))
        else:
            out.append(position)
    return out[0], out[1], out[2]


def substituted_endpoints(pattern: PathPatternNode, binding: Binding
                          ) -> Tuple[Optional[Term], Optional[Term]]:
    """Concrete (start, end) endpoints of a path pattern under ``binding``."""
    out = []
    for position in pattern.endpoints():
        if isinstance(position, Var):
            out.append(binding.get(position.name))
        else:
            out.append(position)
    return out[0], out[1]


def pattern_cost(pattern, binding: Binding, source) -> int:
    """Estimated matches for ``pattern`` under ``binding``."""
    if isinstance(pattern, PathPatternNode):
        start, end = substituted_endpoints(pattern, binding)
        return estimate_path(source, pattern.path, start, end)
    concrete = substituted(pattern, binding)
    cost = source.estimate(concrete)
    if all(term is None for term in concrete):
        cost += _UNBOUND_PENALTY
    return cost


def choose_next(patterns: Sequence[TriplePatternNode], binding: Binding,
                source) -> int:
    """Index of the cheapest pattern to evaluate next (greedy)."""
    best_index = 0
    best_cost: Optional[int] = None
    for index, pattern in enumerate(patterns):
        cost = pattern_cost(pattern, binding, source)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
            if cost == 0:
                break  # cannot do better; also prunes dead branches early
    return best_index


# ---------------------------------------------------------------------------
# Static planning (one greedy ordering per bound-variable signature)
# ---------------------------------------------------------------------------


def _static_rank(pattern, bound: set, source) -> Tuple[int, int, int]:
    """Greedy rank under the assumption that ``bound`` vars are bound:
    (disconnected?, number of effectively-unbound positions, estimate).

    The leading component prefers patterns *connected* to the already
    bound variables — a disconnected pattern multiplies the running
    binding table by its match count (a Cartesian product), so it only
    joins when nothing connected remains.
    """
    if isinstance(pattern, PathPatternNode):
        names = [position.name for position in pattern.endpoints()
                 if isinstance(position, Var)]
        connected = not names or any(name in bound for name in names)
        unbound = sum(1 for name in names if name not in bound)
        return (0 if connected else 1, unbound + 1, 4096)
    wildcards = 0
    shares_bound = False
    has_vars = False
    concrete: List[Optional[Term]] = []
    for position in pattern.positions():
        if isinstance(position, Var):
            has_vars = True
            if position.name in bound:
                shares_bound = True
            else:
                wildcards += 1
            concrete.append(None)
        else:
            concrete.append(position)
    connected = shares_bound or not has_vars or not bound
    return (0 if connected else 1, wildcards, source.estimate(
        (concrete[0], concrete[1], concrete[2])))


def plan_order(patterns: Sequence, source,
               bound_vars: Optional[set] = None) -> List[int]:
    """A full greedy join ordering, as pattern indices.

    Assumes every variable seen in an earlier pattern is bound — the
    classic textbook heuristic.  The batch evaluator executes each
    step with the accumulated binding table, so only the *order* needs
    to be decided up front.
    """
    bound: set = set(bound_vars or ())
    remaining = list(range(len(patterns)))
    order: List[int] = []
    while remaining:
        best = remaining[0]
        best_rank = _static_rank(patterns[best], bound, source)
        for index in remaining[1:]:
            rank = _static_rank(patterns[index], bound, source)
            if rank < best_rank:
                best, best_rank = index, rank
        remaining.remove(best)
        order.append(best)
        bound |= patterns[best].variables()
    return order


def static_order(patterns: Sequence[TriplePatternNode], source,
                 bound_vars: Optional[set] = None) -> List[TriplePatternNode]:
    """A full greedy ordering computed once (used for EXPLAIN output)."""
    return [patterns[index]
            for index in plan_order(patterns, source, bound_vars)]


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """A process-wide LRU cache of BGP join orders.

    Keys combine the BGP's structural signature, the bound-variable
    signature it is planned under, and the source graphs' identity +
    mutation epochs.  A stale plan can never produce wrong results
    (execution always applies the *actual* patterns); caching merely
    skips recomputing the greedy order and its cardinality estimates.
    """

    __slots__ = ("maxsize", "_entries", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, List[int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Optional[List[int]]:
        plan = self._entries.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: tuple, plan: List[int]) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def statistics(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (f"<PlanCache {len(self._entries)}/{self.maxsize} entries, "
                f"{self.hits} hits, {self.misses} misses>")


#: The shared plan cache used by the evaluator.
PLAN_CACHE = PlanCache()


def _position_signature(position) -> tuple:
    if isinstance(position, Var):
        return ("v", position.name)
    return ("c", position.n3())


def bgp_signature(node: BGP) -> tuple:
    """A structural key for a BGP, independent of node identity.

    Two parses of the same query text share plans through this key
    (the endpoint's parse cache makes that the common case anyway).
    """
    cached = getattr(node, "_plan_signature", None)
    if cached is not None:
        return cached
    parts = []
    for pattern in node.patterns:
        if isinstance(pattern, PathPatternNode):
            parts.append(("p", _position_signature(pattern.subject),
                          pattern.path.to_sparql(),
                          _position_signature(pattern.object)))
        else:
            parts.append(("t", _position_signature(pattern.subject),
                          _position_signature(pattern.predicate),
                          _position_signature(pattern.object)))
    signature = tuple(parts)
    node._plan_signature = signature
    return signature


def get_plan(node: BGP, bound_names: frozenset, source) -> List[int]:
    """The cached (or freshly computed) join order for ``node`` when
    the variables in ``bound_names`` are already bound."""
    relevant = frozenset(bound_names & node.variables())
    source_key = getattr(source, "cache_key", None)
    source_key = source_key() if callable(source_key) else (id(source),)
    key = (bgp_signature(node), relevant, source_key)
    plan = PLAN_CACHE.get(key)
    if plan is None:
        plan = plan_order(node.patterns, source, relevant)
        PLAN_CACHE.put(key, plan)
    return plan
