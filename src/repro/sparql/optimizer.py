"""Cost-based join planning and parameterized plan caching for BGPs.

The engine evaluates a BGP as a pipeline of batch join steps (see
:mod:`repro.sparql.evaluator`).  This module decides the pipeline:

* **Cost model** — fed by the O(1) per-predicate statistics layer
  (:mod:`repro.rdf.stats`): a pattern's expected matches per input row
  come from its predicate's cardinality divided by the average subject
  fan-out / object fan-in for each bound *variable* position.  A bound
  **constant**, however, is costed from its value (statistics v2): its
  exact most-common-value count when it is hot, its equi-depth
  histogram bucket's depth otherwise, falling back to the average only
  when no summary applies.  Skewed constants therefore get different
  join orders than cold ones — the E3 "busy destinations" fix.
* **Selectivity bands and brackets** — constant-aware plans are cached
  per *selectivity band*: every constant-bearing pattern's estimated
  cardinality is bucketed into a logarithmic band
  (:func:`selectivity_band`, base :data:`SELECTIVITY_BAND_BASE`), and
  the band vector joins the cache key.  A cached plan carries, per
  step, the cardinality *bracket* (band bounds) it was costed under;
  when a later execution binds a constant whose estimate falls outside
  the bracket, the lookup misses that entry and triggers a
  constant-specialized replan — one cache entry per shape × bracket,
  counted by :attr:`PlanCache.bracket_replans`.
* **Join ordering** — BGPs of up to :data:`DP_PATTERN_LIMIT` patterns
  are planned with a Selinger-style dynamic program over pattern
  subsets (left-deep, connected-first, minimizing the classic
  Σ-of-intermediate-results cost); larger BGPs fall back to a greedy
  walk driven by the same cost model — the fallback is logged and
  recorded on :attr:`PhysicalPlan.fallback` so ``EXPLAIN`` can show
  it.  The result is an explicit
  :class:`PhysicalPlan`: ordered :class:`PlanStep`\\ s carrying the
  chosen join strategy (hash join / memoized index probe / scan) and
  the cardinality estimates that justified them.
* **Parameterized plan cache** — BGPs are canonicalized into a
  *constant-lifted signature*: subject/object constants become numbered
  parameter slots (predicates stay concrete, since statistics hang off
  them).  Structurally identical BGPs that differ only in those
  constants — e.g. the one-query-per-member-IRI workload of cube
  materialization — share a single :class:`PLAN_CACHE` entry; the
  actual constants are supplied by the evaluator at execution time.
  Cache keys still include the source graphs' mutation epochs, so an
  update naturally retires plans costed from stale statistics.

A stale or mis-estimated plan can never produce wrong results
(execution always applies the *actual* patterns); the worst case is a
suboptimal order, which ``EXPLAIN ... analyze`` makes visible as an
estimated-vs-actual gap (:mod:`repro.sparql.explain`).

The per-binding helpers (:func:`choose_next`, :func:`pattern_cost`)
remain for the lazy existence-check path (ASK / EXISTS): they use
*exact* index counts per binding, which is ideal when the pipeline
stops at the first solution.
"""

from __future__ import annotations

import logging
import math
import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.rdf.stats import StatisticsView, statistics_for
from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.algebra import (
    BGP,
    Empty,
    Extend,
    Filter,
    GraphNode,
    Join,
    LeftJoin,
    Minus,
    PathPatternNode,
    PatternNode,
    SubSelectNode,
    TriplePatternNode,
    Union as UnionNode,
    ValuesNode,
    Var,
)
from repro.sparql.paths import estimate_path

Binding = Dict[str, Term]

_LOG = logging.getLogger(__name__)

#: Penalty rank applied before cardinality: patterns with no bound
#: position join last unless nothing else is available.
_UNBOUND_PENALTY = 1 << 40

#: BGPs up to this size are planned with the exact subset DP; larger
#: ones use the greedy walk over the same cost model.
DP_PATTERN_LIMIT = 12

#: Kill switch for value-aware (MCV/histogram) constant costing.
#: When False, constants are costed from averages exactly as before
#: statistics v2 — benchmarks flip this to measure what the
#: constant-aware planner is worth (``check_plans.py --skew``).
CONSTANT_AWARE = True

#: Base of the logarithmic selectivity bands: constants whose
#: estimated cardinalities fall within the same power-of-8 range share
#: one cached plan, so the cache grows per *order of magnitude* of
#: skew, not per constant.
SELECTIVITY_BAND_BASE = 8

#: Debug flag: verify every freshly planned :class:`PhysicalPlan`
#: against the IR well-formedness conditions before it enters the plan
#: cache (:mod:`repro.sparql.plan_verifier`).  Off by default — CI
#: exercises the same checks offline over a generated corpus; set the
#: ``REPRO_VERIFY_PLANS`` environment variable (any non-empty value
#: other than ``0``) to pay one verification per cache insert.
VERIFY_PLANS = os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")


def selectivity_band(estimate: float) -> int:
    """The logarithmic band of an estimated cardinality.

    Band 0 covers [0, 8), band 1 [8, 64), band 2 [64, 512) … — wide
    enough that uniform data lands in one band (plans keep being
    shared across every member IRI of a level), narrow enough that a
    hot key an order of magnitude off the average lands in another.
    """
    if estimate < SELECTIVITY_BAND_BASE:
        return 0
    return int(math.log(estimate, SELECTIVITY_BAND_BASE))


def band_bracket(band: int) -> Tuple[float, float]:
    """The ``[low, high)`` cardinality range covered by ``band``."""
    low = 0.0 if band == 0 else float(SELECTIVITY_BAND_BASE ** band)
    return low, float(SELECTIVITY_BAND_BASE ** (band + 1))

#: Static path-pattern pricing by number of known endpoints (paths are
#: deliberately priced above plain patterns of the same boundness so
#: the planner binds their endpoints first when it can).
_PATH_ESTIMATES = {2: 64.0, 1: 4096.0, 0: float(1 << 41)}


def substituted(pattern: TriplePatternNode, binding: Binding
                ) -> Tuple[Optional[Term], Optional[Term], Optional[Term]]:
    """The concrete match pattern under ``binding`` (None = wildcard)."""
    out = []
    for position in pattern.positions():
        if isinstance(position, Var):
            out.append(binding.get(position.name))
        else:
            out.append(position)
    return out[0], out[1], out[2]


def substituted_endpoints(pattern: PathPatternNode, binding: Binding
                          ) -> Tuple[Optional[Term], Optional[Term]]:
    """Concrete (start, end) endpoints of a path pattern under ``binding``."""
    out = []
    for position in pattern.endpoints():
        if isinstance(position, Var):
            out.append(binding.get(position.name))
        else:
            out.append(position)
    return out[0], out[1]


def pattern_cost(pattern, binding: Binding, source) -> int:
    """Exact matches for ``pattern`` under ``binding`` (lazy pipeline)."""
    if isinstance(pattern, PathPatternNode):
        start, end = substituted_endpoints(pattern, binding)
        return estimate_path(source, pattern.path, start, end)
    concrete = substituted(pattern, binding)
    cost = source.estimate(concrete)
    if all(term is None for term in concrete):
        cost += _UNBOUND_PENALTY
    return cost


def choose_next(patterns: Sequence[TriplePatternNode], binding: Binding,
                source) -> int:
    """Index of the cheapest pattern to evaluate next (greedy, exact)."""
    best_index = 0
    best_cost: Optional[int] = None
    for index, pattern in enumerate(patterns):
        cost = pattern_cost(pattern, binding, source)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
            if cost == 0:
                break  # cannot do better; also prunes dead branches early
    return best_index


# ---------------------------------------------------------------------------
# Cost model (statistics-driven, constant-independent)
# ---------------------------------------------------------------------------


class _PatternCost:
    """Pre-resolved costing facts for one pattern.

    ``base`` is the expected scan size with only the pattern's
    constants applied.  With statistics v2 the constants are folded in
    *by value* — a constant subject/object under a concrete predicate
    is estimated from its MCV count or histogram bucket
    (``est_source`` records which estimator won); ``base_avg`` keeps
    the v1 constant-independent figure alongside so EXPLAIN can render
    the skew the averages would have hidden.  ``s_sel`` / ``o_sel`` /
    ``p_sel`` are the multipliers applied when the respective
    *variable* position is already bound; ``None`` marks a constant
    position.  ``bracket`` is the cardinality band the constant
    estimate fell into (``None`` when the pattern has no value-aware
    constant) — the validity range of any plan built from this cost.
    """

    __slots__ = ("base", "base_avg", "est_source", "bracket",
                 "s_name", "s_sel", "o_name", "o_sel",
                 "p_name", "p_sel", "is_path", "vars", "endpoint_names")

    def __init__(self) -> None:
        self.base = 0.0
        self.base_avg = 0.0
        self.est_source = "avg"
        self.bracket: Optional[Tuple[float, float]] = None
        self.s_name: Optional[str] = None
        self.s_sel = 1.0
        self.o_name: Optional[str] = None
        self.o_sel = 1.0
        self.p_name: Optional[str] = None
        self.p_sel = 1.0
        self.is_path = False
        self.vars: Set[str] = set()
        self.endpoint_names: Tuple[Optional[str], ...] = ()


_ESTIMATOR_RANK = {"avg": 0, "hist": 1, "mcv": 2}


def _constant_base(pattern: TriplePatternNode, stats: StatisticsView
                   ) -> Optional[Tuple[float, float, str]]:
    """Value-aware ``(base, base_avg, estimator)`` for a pattern whose
    subject and/or object is a constant under a concrete predicate.

    Returns ``None`` when the pattern has no value-aware constant (all
    positions variable, or a variable predicate — per-predicate
    summaries cannot apply).  Both the value-aware and the average
    figure fold multiple constants in under the usual independence
    assumption, so they stay comparable.
    """
    subject, predicate, obj = pattern.positions()
    if isinstance(predicate, Var):
        return None
    if isinstance(subject, Var) and isinstance(obj, Var):
        return None
    cardinality = float(stats.predicate_cardinality(predicate))
    s_sel = 1.0 / max(1, stats.predicate_subjects(predicate))
    o_sel = 1.0 / max(1, stats.predicate_objects(predicate))
    base = cardinality
    base_avg = cardinality
    kind = "avg"
    if not isinstance(subject, Var):
        base_avg *= s_sel
        estimate, used = stats.subject_constant_estimate(predicate, subject)
        base = base * (estimate / cardinality) if cardinality else 0.0
        if _ESTIMATOR_RANK[used] > _ESTIMATOR_RANK[kind]:
            kind = used
    if not isinstance(obj, Var):
        base_avg *= o_sel
        estimate, used = stats.object_constant_estimate(predicate, obj)
        base = base * (estimate / cardinality) if cardinality else 0.0
        if _ESTIMATOR_RANK[used] > _ESTIMATOR_RANK[kind]:
            kind = used
    return base, base_avg, kind


def _compile_cost(pattern, stats: StatisticsView) -> _PatternCost:
    cost = _PatternCost()
    cost.vars = set(pattern.variables())
    if isinstance(pattern, PathPatternNode):
        cost.is_path = True
        cost.endpoint_names = tuple(
            position.name if isinstance(position, Var) else None
            for position in pattern.endpoints())
        known = sum(1 for name in cost.endpoint_names if name is None)
        cost.base = cost.base_avg = _PATH_ESTIMATES[known]
        return cost
    subject, predicate, obj = pattern.positions()
    if isinstance(predicate, Var):
        base = float(stats.triple_count())
        s_sel = 1.0 / max(1, stats.subject_count())
        o_sel = 1.0 / max(1, stats.object_count())
        cost.p_name = predicate.name
        cost.p_sel = 1.0 / max(1, stats.predicate_count())
    else:
        base = float(stats.predicate_cardinality(predicate))
        s_sel = 1.0 / max(1, stats.predicate_subjects(predicate))
        o_sel = 1.0 / max(1, stats.predicate_objects(predicate))
    if isinstance(subject, Var):
        cost.s_name = subject.name
        cost.s_sel = s_sel
    else:
        base *= s_sel
    if isinstance(obj, Var):
        cost.o_name = obj.name
        cost.o_sel = o_sel
    else:
        base *= o_sel
    cost.base = cost.base_avg = base
    if CONSTANT_AWARE:
        aware = _constant_base(pattern, stats)
        if aware is not None:
            cost.base, cost.base_avg, cost.est_source = aware
            if cost.est_source != "avg":
                cost.bracket = band_bracket(selectivity_band(cost.base))
    return cost


def _estimate(cost: _PatternCost, bound, avg: bool = False) -> float:
    """Expected matches per input row when ``bound`` vars are bound.

    ``avg=True`` prices from the constant-independent v1 base — the
    figure the pre-v2 planner would have used — for EXPLAIN's
    ``est(avg)`` column.
    """
    if cost.is_path:
        known = sum(1 for name in cost.endpoint_names
                    if name is None or name in bound)
        return _PATH_ESTIMATES[known]
    estimate = cost.base_avg if avg else cost.base
    if cost.s_name is not None and cost.s_name in bound:
        estimate *= cost.s_sel
    if cost.o_name is not None and cost.o_name in bound:
        estimate *= cost.o_sel
    if cost.p_name is not None and cost.p_name in bound:
        estimate *= cost.p_sel
    return estimate


def _connected(cost: _PatternCost, bound) -> bool:
    """Joining this pattern now would not be a Cartesian product."""
    return not cost.vars or not bound or bool(cost.vars & bound)


# ---------------------------------------------------------------------------
# Physical plans
# ---------------------------------------------------------------------------


class PlanStep:
    """One join step of a physical plan.

    ``strategy`` is the planner's estimate-based choice — ``"hash"``
    (bucket one index scan by the join key), ``"probe"`` (memoized
    per-distinct-key index probes), ``"scan"`` (no shared variables:
    one scan cross-applied) or ``"path"``.  The evaluator re-validates
    hash-vs-probe against the *actual* table size at execution time, so
    a mis-estimate degrades to the safe choice rather than a blowup.

    ``stream_safe`` marks steps the streaming pipeline may execute
    incrementally.  Every step is row-local once it has input rows; the
    only constraint is the *leading* step, whose index scan becomes the
    batch source — a property-path closure cannot be pulled in batches,
    so a path-first plan is marked not stream-safe at position 0.

    Statistics-v2 fields: ``est_source`` names the estimator that
    produced ``est_out`` (``"avg"`` / ``"hist"`` / ``"mcv"``);
    ``est_avg`` prices *this* step with the constant-independent v1
    per-row estimate while keeping the value-aware ``est_in`` of the
    steps before it — it isolates the per-step skew the averages hid,
    not a full replay of the pre-v2 planner (which might also have
    chosen a different order); ``bracket`` is the
    ``[low, high)`` cardinality band of the step's constant estimate —
    the range of constants this plan stays valid for.  A bound
    constant outside the bracket re-keys the plan-cache lookup and
    triggers a constant-specialized replan (:func:`get_plan`).
    """

    __slots__ = ("index", "strategy", "est_in", "est_out", "est_scan",
                 "stream_safe", "est_avg", "est_source", "bracket")

    def __init__(self, index: int, strategy: str, est_in: float,
                 est_out: float, est_scan: float,
                 stream_safe: bool = True,
                 est_avg: Optional[float] = None,
                 est_source: str = "avg",
                 bracket: Optional[Tuple[float, float]] = None) -> None:
        self.index = index
        self.strategy = strategy
        self.est_in = est_in
        self.est_out = est_out
        self.est_scan = est_scan
        self.stream_safe = stream_safe
        self.est_avg = est_out if est_avg is None else est_avg
        self.est_source = est_source
        self.bracket = bracket

    def __repr__(self) -> str:
        return (f"<PlanStep [{self.index}] {self.strategy} "
                f"est {self.est_in:.0f}->{self.est_out:.0f} "
                f"({self.est_source})>")


class PhysicalPlan:
    """An ordered, costed join pipeline for one BGP.

    Iterating the plan yields the pattern indices in join order (which
    keeps it drop-in for code that only needs the ordering); ``steps``
    carries the full per-step metadata for execution and EXPLAIN.

    ``bands`` is the selectivity-band vector of the constants the plan
    was costed under (set by :func:`get_plan`; ``()`` when the BGP has
    no value-aware constants) — together with the per-step
    :attr:`PlanStep.bracket` it describes when this plan may be reused
    for other constants.  ``fallback`` records a non-exhaustive
    ordering decision (the greedy walk above :data:`DP_PATTERN_LIMIT`,
    or the legacy path for statistics-less sources) so EXPLAIN can
    surface what used to be a silent fallback.
    """

    __slots__ = ("order", "steps", "est_rows", "cost", "bands", "fallback")

    def __init__(self, order: List[int], steps: List[PlanStep],
                 est_rows: float, cost: float,
                 bands: tuple = (),
                 fallback: Optional[str] = None) -> None:
        self.order = order
        self.steps = steps
        self.est_rows = est_rows
        self.cost = cost
        self.bands = bands
        self.fallback = fallback

    def __iter__(self):
        return iter(self.order)

    def __len__(self) -> int:
        return len(self.order)

    def __getitem__(self, index: int) -> int:
        return self.order[index]

    @property
    def streamable(self) -> bool:
        """Whether the leading step can feed the pipeline in batches.

        This is the plan-IR flag the evaluator's streaming path
        consults (instead of re-deriving streamability from the
        patterns): the first step must be an incremental index scan,
        and every later step is row-local by construction.
        """
        return bool(self.steps) and self.steps[0].stream_safe

    @property
    def parallel_safe(self) -> bool:
        """Whether every step of this plan may run inside a morsel
        worker.

        This is the plan-IR flag the parallel executor consults: the
        whole pipeline must consist of triple-pattern join steps
        (scan / probe / hash), because those read only id columns and
        the shipped dictionary.  Property-path steps are excluded —
        their closure evaluation walks live graph adjacency and is not
        part of the worker protocol.
        """
        return bool(self.steps) and all(
            step.strategy != "path" for step in self.steps)

    def __repr__(self) -> str:
        return (f"<PhysicalPlan {self.order} cost {self.cost:.0f} "
                f"est {self.est_rows:.0f} rows>")


def _dp_order(costs: List[_PatternCost], bound0: frozenset, n: int
              ) -> Tuple[float, float, Tuple[int, ...]]:
    """Exact left-deep DP over pattern subsets (Selinger-style).

    ``dp[mask]`` holds the cheapest way to have joined exactly the
    patterns in ``mask``: (Σ intermediate rows, current rows, order,
    bound vars).  Disconnected extensions are only considered when no
    connected pattern remains, mirroring the executor's aversion to
    Cartesian products.
    """
    full = (1 << n) - 1
    dp: Dict[int, Tuple[float, float, Tuple[int, ...], frozenset]] = {
        0: (0.0, 1.0, (), bound0)}
    for mask in range(full):
        entry = dp.get(mask)
        if entry is None:
            continue
        total, rows, order, bound = entry
        remaining = [i for i in range(n) if not mask >> i & 1]
        connected = [i for i in remaining if _connected(costs[i], bound)]
        for i in (connected or remaining):
            out_rows = rows * _estimate(costs[i], bound)
            new_total = total + out_rows
            new_mask = mask | (1 << i)
            old = dp.get(new_mask)
            if old is None or new_total < old[0]:
                dp[new_mask] = (new_total, out_rows, order + (i,),
                                bound | frozenset(costs[i].vars))
    total, rows, order, _ = dp[full]
    return total, rows, order


def _greedy_cost_order(costs: List[_PatternCost], bound0: frozenset, n: int
                       ) -> Tuple[float, float, Tuple[int, ...]]:
    """Greedy fallback for large BGPs, driven by the same cost model."""
    bound: Set[str] = set(bound0)
    remaining = list(range(n))
    order: List[int] = []
    rows = 1.0
    total = 0.0
    while remaining:
        connected = [i for i in remaining if _connected(costs[i], bound)]
        pool = connected or remaining
        best = min(pool, key=lambda i: _estimate(costs[i], bound))
        rows *= _estimate(costs[best], bound)
        total += rows
        order.append(best)
        remaining.remove(best)
        bound |= costs[best].vars
    return total, rows, tuple(order)


def _build_steps(order: Sequence[int], costs: List[_PatternCost],
                 bound0: frozenset) -> List[PlanStep]:
    bound: Set[str] = set(bound0)
    steps: List[PlanStep] = []
    rows = 1.0
    for index in order:
        cost = costs[index]
        est = _estimate(cost, bound)
        out_rows = rows * est
        scan = _estimate(cost, frozenset())
        if cost.is_path:
            strategy = "path"
        elif not (cost.vars & bound):
            strategy = "scan"
        elif rows >= 64 and scan <= 4 * rows:
            strategy = "hash"
        else:
            strategy = "probe"
        steps.append(PlanStep(index, strategy, rows, out_rows, scan,
                              stream_safe=bool(steps) or not cost.is_path,
                              est_avg=rows * _estimate(cost, bound, avg=True),
                              est_source=cost.est_source,
                              bracket=cost.bracket))
        rows = out_rows
        bound |= cost.vars
    return steps


def plan_physical(patterns: Sequence, source,
                  bound_vars: Optional[frozenset] = None) -> PhysicalPlan:
    """Cost-based physical plan for ``patterns`` over ``source``.

    ``bound_vars`` are variables already bound by the surrounding
    pipeline (the seed table's columns).
    """
    bound0 = frozenset(bound_vars or ())
    n = len(patterns)
    if n == 0:
        return PhysicalPlan([], [], 1.0, 0.0)
    stats = statistics_for(source)
    if stats is None:
        return _legacy_plan(patterns, source, bound0)
    costs = [_compile_cost(pattern, stats) for pattern in patterns]
    fallback = None
    if n <= DP_PATTERN_LIMIT:
        total, rows, order = _dp_order(costs, bound0, n)
    else:
        total, rows, order = _greedy_cost_order(costs, bound0, n)
        fallback = (f"greedy ordering: {n} patterns exceed the DP limit "
                    f"of {DP_PATTERN_LIMIT}")
        _LOG.info(
            "BGP with %d patterns exceeds DP_PATTERN_LIMIT=%d; "
            "falling back to greedy join ordering", n, DP_PATTERN_LIMIT)
    return PhysicalPlan(list(order), _build_steps(order, costs, bound0),
                        est_rows=rows, cost=total, fallback=fallback)


# -- legacy greedy (sources without a statistics layer) ----------------------


def _static_rank(pattern, bound: set, source) -> Tuple[int, int, int]:
    """Greedy rank under the assumption that ``bound`` vars are bound:
    (disconnected?, number of effectively-unbound positions, estimate).
    """
    if isinstance(pattern, PathPatternNode):
        names = [position.name for position in pattern.endpoints()
                 if isinstance(position, Var)]
        connected = not names or any(name in bound for name in names)
        unbound = sum(1 for name in names if name not in bound)
        return (0 if connected else 1, unbound + 1, 4096)
    wildcards = 0
    shares_bound = False
    has_vars = False
    concrete: List[Optional[Term]] = []
    for position in pattern.positions():
        if isinstance(position, Var):
            has_vars = True
            if position.name in bound:
                shares_bound = True
            else:
                wildcards += 1
            concrete.append(None)
        else:
            concrete.append(position)
    connected = shares_bound or not has_vars or not bound
    return (0 if connected else 1, wildcards, source.estimate(
        (concrete[0], concrete[1], concrete[2])))


def _legacy_plan(patterns: Sequence, source,
                 bound0: frozenset) -> PhysicalPlan:
    """The pre-statistics greedy ordering, wrapped as a physical plan.

    Only sources without a ``statistics()`` view (exotic test doubles)
    take this path; estimates come from exact per-pattern counts.
    """
    bound: set = set(bound0)
    remaining = list(range(len(patterns)))
    order: List[int] = []
    steps: List[PlanStep] = []
    rows = 1.0
    total = 0.0
    while remaining:
        best = remaining[0]
        best_rank = _static_rank(patterns[best], bound, source)
        for index in remaining[1:]:
            rank = _static_rank(patterns[index], bound, source)
            if rank < best_rank:
                best, best_rank = index, rank
        remaining.remove(best)
        order.append(best)
        estimate = float(best_rank[2])
        out_rows = max(rows, estimate)
        total += out_rows
        strategy = "path" if isinstance(patterns[best], PathPatternNode) \
            else ("probe" if patterns[best].variables() & bound else "scan")
        steps.append(PlanStep(best, strategy, rows, out_rows, estimate,
                              stream_safe=bool(steps) or strategy != "path"))
        rows = out_rows
        bound |= patterns[best].variables()
    return PhysicalPlan(order, steps, est_rows=rows, cost=total,
                        fallback="legacy greedy: source has no "
                                 "statistics view")


def plan_order(patterns: Sequence, source,
               bound_vars: Optional[set] = None) -> List[int]:
    """A full cost-based join ordering, as pattern indices."""
    return plan_physical(patterns, source,
                         frozenset(bound_vars or ())).order


def static_order(patterns: Sequence[TriplePatternNode], source,
                 bound_vars: Optional[set] = None) -> List[TriplePatternNode]:
    """A full ordering computed once (used for tooling and tests)."""
    return [patterns[index]
            for index in plan_order(patterns, source, bound_vars)]


# ---------------------------------------------------------------------------
# Whole-pattern-tree planning surface (streamability + costing)
# ---------------------------------------------------------------------------


def stream_shape(node: PatternNode) -> bool:
    """Whether the algebra *shape* of ``node`` admits batch streaming.

    A streamable tree has a BGP at its left-most leaf (whose leading
    index scan becomes the batch source) under operators that consume
    input rows locally: FILTER, BIND, joins fed from the left, and —
    via the streaming left-outer probe — OPTIONAL whose required side
    is itself streamable.  Whether the *plan* for that leading BGP can
    actually scan incrementally (its first step might be a property
    path) is recorded on the :class:`PhysicalPlan` IR as
    :attr:`PhysicalPlan.streamable`, so the shape test here and the
    plan flag together replace any ad-hoc re-derivation in the
    evaluator.
    """
    if isinstance(node, BGP):
        return True
    if isinstance(node, (Filter, Extend)):
        return stream_shape(node.child)
    if isinstance(node, (Join, LeftJoin)):
        return stream_shape(node.left)
    return False


def estimate_pattern(node: PatternNode, source,
                     bound: frozenset = frozenset()
                     ) -> Tuple[float, float]:
    """``(est_rows, est_cost)`` for an arbitrary pattern tree.

    Extends the BGP cost model upward through the non-BGP operators so
    EXPLAIN can annotate them — most importantly the *optional* side
    of a LeftJoin, which is costed under the required side's bound
    variables (it executes seeded by required-side rows, so its
    per-row estimate multiplies by the required side's cardinality).
    Estimates are per one input row of the surrounding pipeline, like
    :attr:`PhysicalPlan.est_rows`.
    """
    if isinstance(node, BGP):
        plan = plan_physical(node.patterns, source, bound)
        return plan.est_rows, plan.cost
    if isinstance(node, Join):
        left_rows, left_cost = estimate_pattern(node.left, source, bound)
        right_rows, right_cost = estimate_pattern(
            node.right, source, bound | frozenset(node.left.variables()))
        return (left_rows * right_rows,
                left_cost + right_cost * max(1.0, left_rows))
    if isinstance(node, LeftJoin):
        left_rows, left_cost = estimate_pattern(node.left, source, bound)
        right_rows, right_cost = estimate_pattern(
            node.right, source, bound | frozenset(node.left.variables()))
        # left-outer: every required-side row survives; matches extend
        return (max(left_rows, left_rows * right_rows),
                left_cost + right_cost * max(1.0, left_rows))
    if isinstance(node, UnionNode):
        left_rows, left_cost = estimate_pattern(node.left, source, bound)
        right_rows, right_cost = estimate_pattern(node.right, source, bound)
        return left_rows + right_rows, left_cost + right_cost
    if isinstance(node, Minus):
        left_rows, left_cost = estimate_pattern(node.left, source, bound)
        _, right_cost = estimate_pattern(node.right, source, frozenset())
        return left_rows, left_cost + right_cost
    if isinstance(node, (Filter, Extend, GraphNode)):
        return estimate_pattern(node.child, source, bound)
    if isinstance(node, ValuesNode):
        return float(len(node.rows)), 0.0
    if isinstance(node, SubSelectNode):
        rows, cost = estimate_pattern(node.query.pattern, source, frozenset())
        if node.query.limit is not None:
            rows = min(rows, float(node.query.limit))
        return rows, cost
    if isinstance(node, Empty):
        return 1.0, 0.0
    return 1.0, 0.0


# ---------------------------------------------------------------------------
# Parameterized plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """A process-wide LRU cache of BGP physical plans.

    Keys combine the BGP's *constant-lifted* structural signature, the
    bound-variable signature it is planned under, and the source
    graphs' identity + mutation epochs.  Entries remember the constant
    parameters present when the plan was built, so hits are classified
    as **exact** (same constants — e.g. the same query text re-run) or
    **parameterized** (same shape, different constants — e.g. the next
    member IRI of a cube level reusing the plan of the previous one).

    A stale plan can never produce wrong results (execution always
    applies the *actual* patterns); caching merely skips re-running the
    planner.  Set :attr:`parameterized` to ``False`` to key plans on
    their exact constants again (used by benchmarks to measure what the
    sharing is worth).

    The cache is **thread-safe**: every lookup/insert takes a small
    internal mutex (the LRU's ``OrderedDict`` reordering is not safe
    under concurrent readers, and the snapshot-isolated endpoint runs
    SELECTs in parallel).  Two threads missing on the same key may both
    plan and both insert — the second insert wins, both plans are
    valid, and no lock is held while planning.
    """

    __slots__ = ("maxsize", "_entries", "hits_exact", "hits_parameterized",
                 "misses", "evictions", "parameterized",
                 "bracket_replans", "_shape_bands", "_lock")

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, Tuple[PhysicalPlan, tuple]]" = \
            OrderedDict()
        self.hits_exact = 0
        self.hits_parameterized = 0
        self.misses = 0
        self.evictions = 0
        #: when False, plans are keyed on their exact constants (no
        #: sharing across parameter values); diagnostic use only.
        self.parameterized = True
        #: misses caused by a bound constant whose selectivity band
        #: differs from every plan cached for the same shape — i.e.
        #: bracket-triggered constant-specialized replans.
        self.bracket_replans = 0
        #: shape key -> set of band vectors already planned (bounded;
        #: diagnostic backing for ``bracket_replans``).
        self._shape_bands: Dict[tuple, set] = {}
        self._lock = threading.Lock()

    def note_bands(self, shape_key: tuple, bands: tuple) -> None:
        """Record that ``shape_key`` is being (re)planned under
        ``bands``; counts a bracket replan when the same shape was
        already planned under a different band vector."""
        with self._lock:
            if len(self._shape_bands) > 4 * self.maxsize:
                self._shape_bands.clear()
            seen = self._shape_bands.get(shape_key)
            if seen is None:
                self._shape_bands[shape_key] = {bands}
            elif bands not in seen:
                seen.add(bands)
                self.bracket_replans += 1

    @property
    def hits(self) -> int:
        return self.hits_exact + self.hits_parameterized

    def get(self, key: tuple, params: tuple = ()) -> Optional[PhysicalPlan]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            plan, build_params = entry
            if params == build_params:
                self.hits_exact += 1
            else:
                self.hits_parameterized += 1
            return plan

    def put(self, key: tuple, plan: PhysicalPlan,
            params: tuple = ()) -> None:
        with self._lock:
            self._entries[key] = (plan, params)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits_exact = 0
            self.hits_parameterized = 0
            self.misses = 0
            self.evictions = 0
            self.bracket_replans = 0
            self._shape_bands.clear()

    def statistics(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "hits_exact": self.hits_exact,
                "hits_parameterized": self.hits_parameterized,
                "misses": self.misses,
                "evictions": self.evictions,
                "bracket_replans": self.bracket_replans,
            }

    def __repr__(self) -> str:
        return (f"<PlanCache {len(self._entries)}/{self.maxsize} entries, "
                f"{self.hits} hits ({self.hits_parameterized} parameterized), "
                f"{self.misses} misses>")


#: The shared plan cache used by the evaluator.
PLAN_CACHE = PlanCache()


def _term_kind(term: Term) -> tuple:
    """The plan-relevant kind of a lifted constant.

    Parameter slots must not conflate terms of different kinds: a
    literal constant can never match a subject position, a plain
    ``"5"`` and an integer ``5`` are different RDF terms with different
    index neighbourhoods, and future value-aware statistics (per-
    datatype histograms) will hang off exactly this distinction.  Two
    queries whose constants differ only in *value* still share a slot
    kind — and therefore a plan.
    """
    if isinstance(term, Literal):
        return ("lit", term.datatype.value, term.language or "")
    if isinstance(term, IRI):
        return ("iri",)
    return ("bnode",)


def _signature_and_params(node: BGP) -> Tuple[tuple, tuple]:
    """The constant-lifted structural key of a BGP plus its parameters.

    Subject/object constants (and path endpoints) are replaced by
    numbered ``("$", slot, kind)`` parameter markers — the same
    constant repeating maps to the same slot, so equality constraints
    between positions stay visible in the signature, and the marker
    carries the constant's term kind (IRI / bnode / literal datatype +
    language) so e.g. ``"5"``, ``5`` and ``<5>`` never collide on one
    cached plan.  Predicate constants stay concrete: the cost model's
    statistics hang off them, so two BGPs with different predicates
    genuinely need different plans.
    """
    cached = getattr(node, "_plan_signature", None)
    if cached is not None:
        return cached
    parts: List[tuple] = []
    params: List[Term] = []
    slot_of: Dict[Term, int] = {}

    def lift(term: Term) -> tuple:
        slot = slot_of.get(term)
        if slot is None:
            slot = len(params)
            slot_of[term] = slot
            params.append(term)
        return ("$", slot, _term_kind(term))

    def position_key(position) -> tuple:
        if isinstance(position, Var):
            return ("v", position.name)
        return lift(position)

    for pattern in node.patterns:
        if isinstance(pattern, PathPatternNode):
            parts.append(("p", position_key(pattern.subject),
                          pattern.path.to_sparql(),
                          position_key(pattern.object)))
        else:
            predicate = pattern.predicate
            predicate_key = (("v", predicate.name)
                             if isinstance(predicate, Var)
                             else ("c", predicate.n3()))
            parts.append(("t", position_key(pattern.subject), predicate_key,
                          position_key(pattern.object)))
    result = (tuple(parts), tuple(params))
    node._plan_signature = result
    return result


def bgp_signature(node: BGP) -> tuple:
    """The constant-lifted structural key for a BGP.

    Two parses of the same query text share plans through this key —
    and so do parses of *different* texts that differ only in
    subject/object constants (the parameterized-plan property).
    """
    return _signature_and_params(node)[0]


def bgp_parameters(node: BGP) -> tuple:
    """The lifted constants of a BGP, in first-occurrence order."""
    return _signature_and_params(node)[1]


def constant_bands(node: BGP, stats: Optional[StatisticsView]) -> tuple:
    """The selectivity-band vector of a BGP's value-aware constants.

    One band per pattern that has a constant subject/object under a
    concrete predicate, in pattern order — the coordinates the plan
    cache distinguishes brackets by.  ``()`` when value-aware costing
    is off, the source has no statistics, or no pattern qualifies, so
    band-free shapes keep exactly the pre-v2 cache behaviour.
    """
    if not CONSTANT_AWARE or stats is None:
        return ()
    bands: List[int] = []
    for pattern in node.patterns:
        if isinstance(pattern, PathPatternNode):
            continue
        aware = _constant_base(pattern, stats)
        if aware is not None and aware[2] != "avg":
            bands.append(selectivity_band(aware[0]))
    return tuple(bands)


def get_plan(node: BGP, bound_names: frozenset, source) -> PhysicalPlan:
    """The cached (or freshly computed) physical plan for ``node`` when
    the variables in ``bound_names`` are already bound.

    The cache key joins the constant-lifted shape with the *selectivity
    bands* of the actual constants: binding a constant whose estimated
    cardinality falls outside the brackets of every cached plan for
    this shape misses and replans with the constant's real statistics —
    one entry per shape × bracket, so hot and cold members of the same
    level can hold different join orders side by side while everything
    in one band keeps sharing.
    """
    signature, params = _signature_and_params(node)
    relevant = frozenset(bound_names & node.variables())
    source_key = getattr(source, "cache_key", None)
    if callable(source_key):
        source_key = source_key()
    else:
        source_key = (id(source), getattr(source, "epoch", None))
    # per-node bands memo, keyed by source identity+epoch so a BGP
    # evaluated against several sources (GRAPH iteration) keeps every
    # source's bands hot; bounded because epochs retire old keys.
    # Parsed trees are shared across concurrent queries (endpoint parse
    # cache): the point reads/writes here are GIL-atomic, and two
    # threads racing to fill a key derive the same value.
    bands_cache = getattr(node, "_bands_cache", None)
    if bands_cache is None:
        bands_cache = node._bands_cache = {}
    bands_key = (source_key, CONSTANT_AWARE)
    bands = bands_cache.get(bands_key)
    if bands is None:
        bands = constant_bands(node, statistics_for(source))
        if len(bands_cache) >= 8:
            bands_cache.clear()
        bands_cache[bands_key] = bands
    if PLAN_CACHE.parameterized:
        shape_key = (signature, relevant, source_key)
    else:
        shape_key = (signature, params, relevant, source_key)
    key = shape_key + (bands,)
    plan = PLAN_CACHE.get(key, params)
    if plan is None:
        plan = plan_physical(node.patterns, source, relevant)
        plan.bands = bands
        if VERIFY_PLANS:
            # debug-flag hook: verify the IR before the plan becomes
            # reusable state (one check per cache insert, not per query)
            from repro.sparql.plan_verifier import verify_plan
            verify_plan(plan, node.patterns, relevant)
        PLAN_CACHE.note_bands(shape_key, bands)
        PLAN_CACHE.put(key, plan, params)
    return plan
