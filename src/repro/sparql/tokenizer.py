"""Tokenizer for the SPARQL 1.1 fragment the engine supports.

Produces a flat list of :class:`Token` objects.  Keywords are recognized
case-insensitively and normalized to upper case; punctuation and operators
are single tokens.  The token stream is consumed by
:mod:`repro.sparql.parser`.
"""

from __future__ import annotations

import re
from typing import List

from repro.sparql.errors import QuerySyntaxError

#: All keywords the parser understands.  Sorted longest-first inside the
#: regex so that e.g. ``GROUP_CONCAT`` wins over ``GROUP``.
KEYWORDS = (
    "GROUP_CONCAT", "NOT EXISTS", "SELECT", "DISTINCT", "REDUCED", "WHERE",
    "FILTER", "OPTIONAL", "UNION", "MINUS", "GRAPH", "SERVICE", "BIND",
    "VALUES", "GROUP", "HAVING", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "OFFSET", "PREFIX", "BASE", "ASK", "CONSTRUCT", "DESCRIBE", "FROM",
    "NAMED", "AS", "INSERT", "DELETE", "DATA", "CLEAR", "DROP", "CREATE",
    "SILENT", "INTO", "WITH", "USING", "DEFAULT", "ALL", "EXISTS",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE", "SEPARATOR",
    "BOUND", "COALESCE", "IF", "SAMETERM", "ISIRI", "ISURI", "ISBLANK",
    "ISLITERAL", "ISNUMERIC", "STRLEN", "SUBSTR", "UCASE", "LCASE",
    "STRSTARTS", "STRENDS", "CONTAINS", "STRBEFORE", "STRAFTER", "CONCAT",
    "LANGMATCHES", "LANG", "DATATYPE", "IRI", "URI", "BNODE", "STRDT",
    "STRLANG", "STR", "REGEX", "REPLACE", "ABS", "ROUND", "CEIL", "FLOOR",
    "RAND", "NOW", "YEAR", "MONTH", "DAY", "HOURS", "MINUTES", "SECONDS",
    "TIMEZONE", "TZ", "MD5", "SHA1", "SHA256", "IN", "NOT", "TRUE", "FALSE",
    "UNDEF", "A",
)

_KEYWORD_PATTERN = "|".join(
    sorted((re.escape(k) for k in KEYWORDS), key=len, reverse=True))

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<LONG_STRING>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\"|'''(?:[^'\\]|\\.|'(?!''))*''')
  | (?P<STRING>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<LANGTAG>@[a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8})*)
  | (?P<DOUBLE_NUM>[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+))
  | (?P<DECIMAL>[+-]?\d*\.\d+)
  | (?P<INTEGER>[+-]?\d+)
  | (?P<HATHAT>\^\^)
  | (?P<BNODE>_:[A-Za-z0-9][A-Za-z0-9_.\-]*)
  | (?P<KEYWORD>(?:%KEYWORDS%)(?![A-Za-z0-9_\-:]))
  | (?P<PNAME>[A-Za-z][\w\-]*(?:\.[\w\-]+)*:[\w\-.%%]*[\w\-%%]|[A-Za-z][\w\-]*(?:\.[\w\-]+)*:|:[\w\-.%%]*[\w\-%%]|:)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<OP><=|>=|!=|&&|\|\||[=<>!*/+\-?^|])
  | (?P<PUNCT>[{}().,;\[\]])
    """.replace("%KEYWORDS%", _KEYWORD_PATTERN),
    re.VERBOSE | re.IGNORECASE,
)


class Token:
    """One lexical token: a kind tag, the raw text, and the source line."""

    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    @property
    def upper(self) -> str:
        return self.text.upper()

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.upper in names

    def is_punct(self, *chars: str) -> bool:
        return self.kind == "PUNCT" and self.text in chars

    def is_op(self, *ops: str) -> bool:
        return self.kind == "OP" and self.text in ops

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


def tokenize(text: str) -> List[Token]:
    """Tokenize SPARQL ``text``; raises :class:`QuerySyntaxError` on junk."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup or ""
        chunk = match.group()
        line += chunk.count("\n")
        if kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, chunk, line))
        pos = match.end()
    tokens.append(Token("EOF", "", line))
    return tokens
