"""SPARQL result representations.

:class:`ResultTable` is the SELECT result: ordered column names plus rows
of optional terms (``None`` marks an unbound cell).  It offers dict-style
row iteration, column extraction, Python-value conversion, and a plain
text rendering used by the examples and the exploration module.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.rdf.terms import IRI, Literal, Term

Row = Tuple[Optional[Term], ...]


class ResultTable:
    """An immutable SELECT result.

    ``snapshot_epoch`` is filled in by the endpoint's snapshot-isolated
    read path: the dataset epoch the query was pinned to (``None`` for
    tables produced outside an endpoint).  Concurrency tests use it to
    assert that every row of a result is consistent with exactly one
    snapshot.
    """

    #: dataset snapshot epoch this result was evaluated against
    snapshot_epoch: Optional[int] = None

    #: ``True`` when the governor cut a streamable query short (the
    #: caller opted into partial results with ``allow_partial``): the
    #: rows present are each correct, but the set is incomplete
    truncated: bool = False

    def __init__(self, variables: Sequence[str],
                 rows: Sequence[Sequence[Optional[Term]]]) -> None:
        self.vars: List[str] = list(variables)
        self.rows: List[Row] = [tuple(row) for row in rows]
        self._index = {name: position for position, name in enumerate(self.vars)}

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Term]]:
        """Iterate rows as {var: term} dicts (unbound cells omitted)."""
        for row in self.rows:
            yield {
                name: value
                for name, value in zip(self.vars, row)
                if value is not None
            }

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, name: str) -> List[Optional[Term]]:
        position = self._index[name]
        return [row[position] for row in self.rows]

    def cell(self, row: int, name: str) -> Optional[Term]:
        return self.rows[row][self._index[name]]

    def to_python(self) -> List[Dict[str, Any]]:
        """Rows as dicts of Python values (IRIs become strings)."""
        converted: List[Dict[str, Any]] = []
        for row in self.rows:
            item: Dict[str, Any] = {}
            for name, value in zip(self.vars, row):
                if value is None:
                    item[name] = None
                elif isinstance(value, Literal):
                    item[name] = value.value
                elif isinstance(value, IRI):
                    item[name] = value.value
                else:
                    item[name] = str(value)
            converted.append(item)
        return converted

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.vars)
        for row in self.rows:
            writer.writerow([
                "" if value is None else (
                    value.lexical if isinstance(value, Literal) else str(value))
                for value in row
            ])
        return buffer.getvalue()

    def to_text(self, max_rows: Optional[int] = None,
                max_width: int = 40) -> str:
        """Fixed-width table rendering for terminal display."""
        def cell_text(value: Optional[Term]) -> str:
            if value is None:
                return ""
            if isinstance(value, Literal):
                text = value.lexical
            elif isinstance(value, IRI):
                text = value.value
                for separator in ("#", "/"):
                    if separator in text:
                        tail = text.rsplit(separator, 1)[1]
                        if tail:
                            text = tail
                            break
            else:
                text = str(value)
            if len(text) > max_width:
                text = text[: max_width - 1] + "…"
            return text

        shown = self.rows if max_rows is None else self.rows[:max_rows]
        grid = [[cell_text(v) for v in row] for row in shown]
        widths = [len(name) for name in self.vars]
        for row in grid:
            for position, text in enumerate(row):
                widths[position] = max(widths[position], len(text))
        lines = [
            " | ".join(name.ljust(widths[i])
                       for i, name in enumerate(self.vars)),
            "-+-".join("-" * width for width in widths),
        ]
        for row in grid:
            lines.append(" | ".join(
                text.ljust(widths[i]) for i, text in enumerate(row)))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ResultTable {self.vars} ({len(self.rows)} rows)>"
