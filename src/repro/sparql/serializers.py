"""W3C SPARQL 1.1 query-result serializations.

Implements the three result formats a protocol endpoint serves, working
over :class:`~repro.sparql.results.ResultTable` and plain booleans:

* **SPARQL 1.1 Query Results JSON Format**
  (``application/sparql-results+json``) — :func:`results_to_json` /
  :func:`results_from_json`, round-trippable;
* **SPARQL Query Results XML Format**
  (``application/sparql-results+xml``) — :func:`results_to_xml`;
* **CSV and TSV** (RFC 4180 / the W3C TSV profile) —
  :func:`results_to_csv` and :func:`results_to_tsv`.

The paper's Exploration/Querying front ends consume exactly these wire
formats from Virtuoso; the formats also let the repo's CLI print results
the way `curl` against a real endpoint would.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Optional
from xml.sax.saxutils import escape as xml_escape

from repro.rdf.namespace import RDF
from repro.rdf.terms import BNode, IRI, Literal, Term, XSD_STRING
from repro.sparql.errors import EndpointError
from repro.sparql.results import ResultTable

RDF_LANGSTRING = RDF.base + "langString"


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def _term_to_json(term: Term) -> Dict[str, str]:
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        entry: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            entry["xml:lang"] = term.language
        elif term.datatype.value != XSD_STRING:
            entry["datatype"] = term.datatype.value
        return entry
    raise EndpointError(f"cannot serialize term {term!r}")


def _term_from_json(entry: Dict[str, str]) -> Term:
    kind = entry.get("type")
    value = entry.get("value", "")
    if kind == "uri":
        return IRI(value)
    if kind == "bnode":
        return BNode(value)
    if kind in ("literal", "typed-literal"):
        language = entry.get("xml:lang")
        if language is not None:
            return Literal(value, language=language)
        datatype = entry.get("datatype")
        if datatype is not None and datatype != RDF_LANGSTRING:
            return Literal(value, datatype=IRI(datatype))
        return Literal(value, datatype=IRI(XSD_STRING))
    raise EndpointError(f"unknown JSON term type {kind!r}")


def results_to_json(table: ResultTable, indent: Optional[int] = None) -> str:
    """Serialize a SELECT result to SPARQL 1.1 JSON."""
    bindings: List[Dict[str, Any]] = []
    for row in table.rows:
        entry = {}
        for name, value in zip(table.vars, row):
            if value is not None:
                entry[name] = _term_to_json(value)
        bindings.append(entry)
    document = {
        "head": {"vars": list(table.vars)},
        "results": {"bindings": bindings},
    }
    return json.dumps(document, indent=indent, sort_keys=False)


def results_from_json(text: str) -> ResultTable:
    """Parse a SPARQL 1.1 JSON SELECT result document."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise EndpointError(f"malformed result JSON: {error}")
    try:
        names = list(document["head"]["vars"])
        bindings = document["results"]["bindings"]
    except (KeyError, TypeError):
        raise EndpointError("result JSON lacks head.vars/results.bindings")
    rows = []
    for binding in bindings:
        rows.append(tuple(
            _term_from_json(binding[name]) if name in binding else None
            for name in names))
    return ResultTable(names, rows)


def boolean_to_json(value: bool, indent: Optional[int] = None) -> str:
    """Serialize an ASK result to SPARQL 1.1 JSON."""
    return json.dumps({"head": {}, "boolean": bool(value)}, indent=indent)


def boolean_from_json(text: str) -> bool:
    """Parse an ASK result from SPARQL 1.1 JSON."""
    try:
        document = json.loads(text)
        return bool(document["boolean"])
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise EndpointError(f"malformed boolean result JSON: {error}")


# ---------------------------------------------------------------------------
# XML
# ---------------------------------------------------------------------------

_XML_HEADER = '<?xml version="1.0"?>\n'
_SPARQL_NS = "http://www.w3.org/2005/sparql-results#"


def _term_to_xml(name: str, term: Term) -> str:
    if isinstance(term, IRI):
        body = f"<uri>{xml_escape(term.value)}</uri>"
    elif isinstance(term, BNode):
        body = f"<bnode>{xml_escape(term.label)}</bnode>"
    elif isinstance(term, Literal):
        attributes = ""
        if term.language is not None:
            attributes = f' xml:lang="{xml_escape(term.language)}"'
        elif term.datatype.value != XSD_STRING:
            attributes = f' datatype="{xml_escape(term.datatype.value)}"'
        body = f"<literal{attributes}>{xml_escape(term.lexical)}</literal>"
    else:
        raise EndpointError(f"cannot serialize term {term!r}")
    return f'      <binding name="{xml_escape(name)}">{body}</binding>'


def results_to_xml(table: ResultTable) -> str:
    """Serialize a SELECT result to the SPARQL XML results format."""
    lines = [_XML_HEADER + f'<sparql xmlns="{_SPARQL_NS}">', "  <head>"]
    lines += [f'    <variable name="{xml_escape(name)}"/>'
              for name in table.vars]
    lines.append("  </head>")
    lines.append("  <results>")
    for row in table.rows:
        lines.append("    <result>")
        for name, value in zip(table.vars, row):
            if value is not None:
                lines.append(_term_to_xml(name, value))
        lines.append("    </result>")
    lines.append("  </results>")
    lines.append("</sparql>")
    return "\n".join(lines)


def boolean_to_xml(value: bool) -> str:
    """Serialize an ASK result to the SPARQL XML results format."""
    text = "true" if value else "false"
    return (_XML_HEADER + f'<sparql xmlns="{_SPARQL_NS}">\n'
            "  <head/>\n"
            f"  <boolean>{text}</boolean>\n"
            "</sparql>")


# ---------------------------------------------------------------------------
# CSV / TSV
# ---------------------------------------------------------------------------


def _term_to_csv(term: Optional[Term]) -> str:
    """CSV cells carry plain lexical forms (per the W3C CSV profile)."""
    if term is None:
        return ""
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, BNode):
        return f"_:{term.label}"
    return term.value  # IRI written bare


def results_to_csv(table: ResultTable) -> str:
    """Serialize a SELECT result to W3C SPARQL CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n")
    writer.writerow(table.vars)
    for row in table.rows:
        writer.writerow([_term_to_csv(value) for value in row])
    return buffer.getvalue()


def _term_to_tsv(term: Optional[Term]) -> str:
    """TSV cells carry full N-Triples term syntax (lossless)."""
    if term is None:
        return ""
    return term.n3()


def results_to_tsv(table: ResultTable) -> str:
    """Serialize a SELECT result to W3C SPARQL TSV."""
    lines = ["\t".join(f"?{name}" for name in table.vars)]
    for row in table.rows:
        lines.append("\t".join(_term_to_tsv(value) for value in row))
    return "\n".join(lines) + "\n"


#: Media type → serializer callables, the shape an HTTP layer would use.
SELECT_SERIALIZERS = {
    "application/sparql-results+json": results_to_json,
    "application/sparql-results+xml": results_to_xml,
    "text/csv": results_to_csv,
    "text/tab-separated-values": results_to_tsv,
}

ASK_SERIALIZERS = {
    "application/sparql-results+json": boolean_to_json,
    "application/sparql-results+xml": boolean_to_xml,
}
