"""Recursive-descent parser for the supported SPARQL 1.1 fragment.

Entry points:

* :func:`parse_query` — SELECT and ASK queries.
* :func:`parse_update` — INSERT DATA / DELETE DATA / CLEAR / CREATE /
  DROP / ``[WITH] DELETE/INSERT ... WHERE`` requests.

The parser lowers directly into :mod:`repro.sparql.algebra` nodes and
:mod:`repro.sparql.expressions` trees; there is no separate AST stage.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.rdf.namespace import DEFAULT_PREFIXES, RDF
from repro.rdf.ntriples import unescape_string
from repro.rdf.terms import (
    IRI,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from repro.sparql.algebra import (
    AskQuery,
    BGP,
    Empty,
    Extend,
    Filter,
    GraphNode,
    Join,
    LeftJoin,
    Minus,
    PathPatternNode,
    PatternNode,
    PatternTerm,
    ProjectionItem,
    Query,
    SelectQuery,
    SubSelectNode,
    TriplePatternNode,
    Union as UnionNode,
    ValuesNode,
    Var,
)
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    LinkPath,
    NegatedPropertySet,
    OneOrMorePath,
    Path,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
)
from repro.sparql.errors import QuerySyntaxError
from repro.sparql.expressions import (
    AGGREGATE_NAMES,
    Aggregate,
    ArithmeticExpression,
    BooleanExpression,
    ComparisonExpression,
    ExistsExpression,
    Expression,
    FunctionExpression,
    InExpression,
    NotExpression,
    TermExpression,
    UnaryMinusExpression,
    VariableExpression,
)
from repro.sparql.tokenizer import Token, tokenize

_XSD_CAST_IRIS = {
    "http://www.w3.org/2001/XMLSchema#integer": "XSD:INTEGER",
    "http://www.w3.org/2001/XMLSchema#decimal": "XSD:DECIMAL",
    "http://www.w3.org/2001/XMLSchema#double": "XSD:DOUBLE",
    "http://www.w3.org/2001/XMLSchema#float": "XSD:FLOAT",
    "http://www.w3.org/2001/XMLSchema#string": "XSD:STRING",
    "http://www.w3.org/2001/XMLSchema#boolean": "XSD:BOOLEAN",
}

_BUILTIN_KEYWORDS = frozenset({
    "BOUND", "COALESCE", "IF", "SAMETERM", "ISIRI", "ISURI", "ISBLANK",
    "ISLITERAL", "ISNUMERIC", "STRLEN", "SUBSTR", "UCASE", "LCASE",
    "STRSTARTS", "STRENDS", "CONTAINS", "STRBEFORE", "STRAFTER", "CONCAT",
    "LANGMATCHES", "LANG", "DATATYPE", "IRI", "URI", "BNODE", "STRDT",
    "STRLANG", "STR", "REGEX", "REPLACE", "ABS", "ROUND", "CEIL", "FLOOR",
    "YEAR", "MONTH", "DAY", "HOURS", "MINUTES", "SECONDS", "NOW",
})

_TERM_START_KINDS = frozenset({
    "VAR", "IRIREF", "PNAME", "BNODE", "STRING", "LONG_STRING",
    "INTEGER", "DECIMAL", "DOUBLE_NUM",
})


# ---------------------------------------------------------------------------
# Update operation descriptions (consumed by repro.sparql.endpoint)
# ---------------------------------------------------------------------------

Quad = Tuple[Optional[IRI], PatternTerm, PatternTerm, PatternTerm]


class UpdateOperation:
    """Base class for parsed update requests."""


class InsertDataOp(UpdateOperation):
    """INSERT DATA: ground quads to add."""
    def __init__(self, quads: Sequence[Quad]) -> None:
        self.quads = list(quads)


class DeleteDataOp(UpdateOperation):
    """DELETE DATA: ground quads to remove."""
    def __init__(self, quads: Sequence[Quad]) -> None:
        self.quads = list(quads)


class ClearOp(UpdateOperation):
    """CLEAR: empty a graph (or DEFAULT/NAMED/ALL)."""
    def __init__(self, target: Union[IRI, str], silent: bool = False) -> None:
        #: target is a graph IRI or one of "DEFAULT", "ALL", "NAMED"
        self.target = target
        self.silent = silent


class CreateOp(UpdateOperation):
    """CREATE GRAPH: declare a named graph."""
    def __init__(self, graph: IRI, silent: bool = False) -> None:
        self.graph = graph
        self.silent = silent


class DropOp(UpdateOperation):
    """DROP: remove a graph (or DEFAULT/NAMED/ALL)."""
    def __init__(self, target: Union[IRI, str], silent: bool = False) -> None:
        self.target = target
        self.silent = silent


class ModifyOp(UpdateOperation):
    """``[WITH <g>] [DELETE {...}] [INSERT {...}] WHERE {...}``."""

    def __init__(self,
                 delete_quads: Sequence[Quad],
                 insert_quads: Sequence[Quad],
                 pattern: PatternNode,
                 with_graph: Optional[IRI] = None) -> None:
        self.delete_quads = list(delete_quads)
        self.insert_quads = list(insert_quads)
        self.pattern = pattern
        self.with_graph = with_graph


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.position = 0
        self.prefixes: Dict[str, str] = {
            prefix: ns.base for prefix, ns in DEFAULT_PREFIXES.items()}
        self.base: Optional[str] = None
        self._bnode_vars: Dict[str, Var] = {}
        self._fresh = itertools.count(1)

    # -- token plumbing ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.position + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> QuerySyntaxError:
        token = token or self.peek()
        return QuerySyntaxError(f"{message}, got {token.text!r}", token.line)

    def expect_punct(self, char: str) -> Token:
        token = self.next()
        if not token.is_punct(char):
            raise self.error(f"expected {char!r}", token)
        return token

    def expect_keyword(self, *names: str) -> Token:
        token = self.next()
        if not token.is_keyword(*names):
            raise self.error(f"expected {'/'.join(names)}", token)
        return token

    def accept_punct(self, char: str) -> bool:
        if self.peek().is_punct(char):
            self.next()
            return True
        return False

    def accept_keyword(self, *names: str) -> bool:
        if self.peek().is_keyword(*names):
            self.next()
            return True
        return False

    # -- prologue -------------------------------------------------------------

    def parse_prologue(self) -> None:
        while True:
            token = self.peek()
            if token.is_keyword("PREFIX"):
                self.next()
                name_token = self.next()
                if name_token.kind != "PNAME" or not name_token.text.endswith(":"):
                    raise self.error("expected prefix name", name_token)
                iri_token = self.next()
                if iri_token.kind != "IRIREF":
                    raise self.error("expected IRI after PREFIX", iri_token)
                self.prefixes[name_token.text[:-1]] = iri_token.text[1:-1]
            elif token.is_keyword("BASE"):
                self.next()
                iri_token = self.next()
                if iri_token.kind != "IRIREF":
                    raise self.error("expected IRI after BASE", iri_token)
                self.base = iri_token.text[1:-1]
            else:
                return

    # -- terms -----------------------------------------------------------------

    def _expand_pname(self, text: str, token: Token) -> IRI:
        prefix, _, local = text.partition(":")
        namespace = self.prefixes.get(prefix)
        if namespace is None:
            raise QuerySyntaxError(
                f"undefined prefix {prefix!r}", token.line)
        return IRI(namespace + local)

    def parse_iri(self) -> IRI:
        token = self.next()
        if token.kind == "IRIREF":
            return IRI(token.text[1:-1])
        if token.kind == "PNAME":
            return self._expand_pname(token.text, token)
        raise self.error("expected an IRI", token)

    def _string_token_value(self, token: Token) -> str:
        if token.kind == "LONG_STRING":
            return unescape_string(token.text[3:-3], token.line)
        return unescape_string(token.text[1:-1], token.line)

    def parse_literal(self) -> Literal:
        token = self.next()
        if token.kind in ("STRING", "LONG_STRING"):
            lexical = self._string_token_value(token)
            nxt = self.peek()
            if nxt.kind == "LANGTAG":
                self.next()
                return Literal(lexical, language=nxt.text[1:])
            if nxt.kind == "HATHAT":
                self.next()
                datatype = self.parse_iri()
                return Literal(lexical, datatype=datatype)
            return Literal(lexical, datatype=XSD_STRING)
        if token.kind == "INTEGER":
            return Literal(token.text, datatype=XSD_INTEGER)
        if token.kind == "DECIMAL":
            return Literal(token.text, datatype=XSD_DECIMAL)
        if token.kind == "DOUBLE_NUM":
            return Literal(token.text, datatype=XSD_DOUBLE)
        if token.is_keyword("TRUE", "FALSE"):
            return Literal(token.upper.lower(), datatype=XSD_BOOLEAN)
        raise self.error("expected a literal", token)

    def fresh_var(self) -> Var:
        return Var(f"_:anon{next(self._fresh)}")

    def parse_pattern_term(self, allow_literal: bool = True) -> PatternTerm:
        """A var, IRI, literal or blank-node label in a pattern position."""
        token = self.peek()
        if token.kind == "VAR":
            self.next()
            return Var(token.text[1:])
        if token.kind in ("IRIREF", "PNAME"):
            return self.parse_iri()
        if token.kind == "BNODE":
            self.next()
            label = token.text[2:]
            if label not in self._bnode_vars:
                self._bnode_vars[label] = Var(f"_:{label}")
            return self._bnode_vars[label]
        if allow_literal and (token.kind in (
                "STRING", "LONG_STRING", "INTEGER", "DECIMAL", "DOUBLE_NUM")
                or token.is_keyword("TRUE", "FALSE")):
            return self.parse_literal()
        raise self.error("expected a term", token)

    # -- queries ----------------------------------------------------------------

    def parse_query(self) -> Query:
        self.parse_prologue()
        token = self.peek()
        if token.is_keyword("SELECT"):
            query = self.parse_select(top_level=True)
        elif token.is_keyword("ASK"):
            query = self.parse_ask()
        elif token.is_keyword("CONSTRUCT"):
            query = self.parse_construct()
        elif token.is_keyword("DESCRIBE"):
            query = self.parse_describe()
        else:
            raise self.error(
                "expected SELECT, ASK, CONSTRUCT or DESCRIBE", token)
        if not self.peek().kind == "EOF":
            raise self.error("trailing content after query")
        return query

    def parse_construct(self) -> "ConstructQuery":
        from repro.sparql.algebra import ConstructQuery
        self.expect_keyword("CONSTRUCT")
        template: Optional[List[TriplePatternNode]] = None
        if self.peek().is_punct("{"):
            template = self._parse_construct_template()
        from_graphs, from_named = self._parse_dataset_clauses()
        self.accept_keyword("WHERE")
        pattern = self.parse_group_graph_pattern()
        if template is None:
            # CONSTRUCT WHERE { bgp } short form: template is the pattern,
            # which must be a plain BGP
            if not isinstance(pattern, BGP) or any(
                    isinstance(p, PathPatternNode) for p in pattern.patterns):
                raise self.error(
                    "CONSTRUCT WHERE requires a plain basic graph pattern")
            template = [p for p in pattern.patterns]
        limit: Optional[int] = None
        offset = 0
        while True:
            if self.peek().is_keyword("LIMIT"):
                self.next()
                token = self.next()
                if token.kind != "INTEGER":
                    raise self.error("expected integer after LIMIT", token)
                limit = int(token.text)
            elif self.peek().is_keyword("OFFSET"):
                self.next()
                token = self.next()
                if token.kind != "INTEGER":
                    raise self.error("expected integer after OFFSET", token)
                offset = int(token.text)
            else:
                break
        return ConstructQuery(template, pattern, dict(self.prefixes),
                              from_graphs, limit, offset, from_named)

    def _parse_construct_template(self) -> List[TriplePatternNode]:
        self.expect_punct("{")
        patterns: List = []
        while not self.peek().is_punct("}"):
            block = self._parse_triples_block()
            for item in block:
                if isinstance(item, PathPatternNode):
                    raise self.error(
                        "property paths are not allowed in templates")
                patterns.append(item)
            self.accept_punct(".")
        self.next()  # consume }
        return patterns

    def parse_describe(self) -> "DescribeQuery":
        from repro.sparql.algebra import DescribeQuery
        self.expect_keyword("DESCRIBE")
        star = False
        resources: List[IRI] = []
        variables: List[str] = []
        if self.peek().is_op("*"):
            self.next()
            star = True
        else:
            while True:
                token = self.peek()
                if token.kind == "VAR":
                    self.next()
                    variables.append(token.text[1:])
                elif token.kind in ("IRIREF", "PNAME"):
                    resources.append(self.parse_iri())
                else:
                    break
            if not resources and not variables:
                raise self.error("DESCRIBE needs resources, variables or *")
        from_graphs, from_named = self._parse_dataset_clauses()
        pattern: Optional[PatternNode] = None
        if self.peek().is_keyword("WHERE") or self.peek().is_punct("{"):
            self.accept_keyword("WHERE")
            pattern = self.parse_group_graph_pattern()
        return DescribeQuery(resources, variables, pattern, star,
                             dict(self.prefixes), from_graphs, from_named)

    def _parse_dataset_clauses(self) -> Tuple[List[IRI], List[IRI]]:
        from_graphs: List[IRI] = []
        from_named: List[IRI] = []
        while self.peek().is_keyword("FROM"):
            self.next()
            if self.accept_keyword("NAMED"):
                from_named.append(self.parse_iri())
            else:
                from_graphs.append(self.parse_iri())
        return from_graphs, from_named

    def parse_ask(self) -> AskQuery:
        self.expect_keyword("ASK")
        from_graphs, from_named = self._parse_dataset_clauses()
        self.accept_keyword("WHERE")
        pattern = self.parse_group_graph_pattern()
        return AskQuery(pattern, dict(self.prefixes),
                        from_graphs, from_named)

    def parse_select(self, top_level: bool = False) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = False
        reduced = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        elif self.accept_keyword("REDUCED"):
            reduced = True
        projection = self._parse_projection()
        from_graphs, from_named = self._parse_dataset_clauses()
        self.accept_keyword("WHERE")
        pattern = self.parse_group_graph_pattern()
        (group_by, group_aliases, having, order_by, limit,
         offset) = self._parse_solution_modifiers()
        return SelectQuery(
            projection=projection,
            pattern=pattern,
            distinct=distinct,
            reduced=reduced,
            group_by=group_by,
            group_aliases=group_aliases,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            prefixes=dict(self.prefixes),
            from_graphs=from_graphs,
            from_named=from_named,
        )

    def _parse_projection(self) -> Optional[List[ProjectionItem]]:
        if self.peek().is_op("*"):
            self.next()
            return None
        items: List[ProjectionItem] = []
        while True:
            token = self.peek()
            if token.kind == "VAR":
                self.next()
                items.append(ProjectionItem(variable=token.text[1:]))
            elif token.is_punct("("):
                self.next()
                expression = self.parse_expression()
                self.expect_keyword("AS")
                var_token = self.next()
                if var_token.kind != "VAR":
                    raise self.error("expected variable after AS", var_token)
                self.expect_punct(")")
                items.append(ProjectionItem(
                    expression=expression, alias=var_token.text[1:]))
            else:
                break
        if not items:
            raise self.error("empty SELECT clause")
        return items

    def _parse_solution_modifiers(self):
        group_by: List[Expression] = []
        group_aliases: Dict[int, str] = {}
        having: List[Expression] = []
        order_by: List[Tuple[Expression, bool]] = []
        limit: Optional[int] = None
        offset = 0
        if self.peek().is_keyword("GROUP"):
            self.next()
            self.expect_keyword("BY")
            while True:
                token = self.peek()
                if token.kind == "VAR":
                    self.next()
                    group_by.append(VariableExpression(token.text[1:]))
                elif token.is_punct("("):
                    self.next()
                    expression = self.parse_expression()
                    if self.accept_keyword("AS"):
                        var_token = self.next()
                        if var_token.kind != "VAR":
                            raise self.error(
                                "expected variable after AS", var_token)
                        group_aliases[len(group_by)] = var_token.text[1:]
                    self.expect_punct(")")
                    group_by.append(expression)
                elif token.kind == "KEYWORD" and token.upper in _BUILTIN_KEYWORDS:
                    group_by.append(self._parse_builtin_call())
                else:
                    break
            if not group_by:
                raise self.error("empty GROUP BY")
        if self.peek().is_keyword("HAVING"):
            self.next()
            while self.peek().is_punct("(") or (
                    self.peek().kind == "KEYWORD"
                    and self.peek().upper in _BUILTIN_KEYWORDS | AGGREGATE_NAMES):
                having.append(self._parse_constraint())
            if not having:
                raise self.error("empty HAVING")
        if self.peek().is_keyword("ORDER"):
            self.next()
            self.expect_keyword("BY")
            while True:
                token = self.peek()
                ascending = True
                if token.is_keyword("ASC", "DESC"):
                    self.next()
                    ascending = token.upper == "ASC"
                    self.expect_punct("(")
                    expression = self.parse_expression()
                    self.expect_punct(")")
                    order_by.append((expression, ascending))
                    continue
                if token.kind == "VAR":
                    self.next()
                    order_by.append(
                        (VariableExpression(token.text[1:]), True))
                    continue
                if token.is_punct("("):
                    self.next()
                    expression = self.parse_expression()
                    self.expect_punct(")")
                    order_by.append((expression, True))
                    continue
                if token.kind == "KEYWORD" and token.upper in _BUILTIN_KEYWORDS:
                    order_by.append((self._parse_builtin_call(), True))
                    continue
                break
            if not order_by:
                raise self.error("empty ORDER BY")
        while True:
            if self.peek().is_keyword("LIMIT"):
                self.next()
                token = self.next()
                if token.kind != "INTEGER":
                    raise self.error("expected integer after LIMIT", token)
                limit = int(token.text)
            elif self.peek().is_keyword("OFFSET"):
                self.next()
                token = self.next()
                if token.kind != "INTEGER":
                    raise self.error("expected integer after OFFSET", token)
                offset = int(token.text)
            else:
                break
        return group_by, group_aliases, having, order_by, limit, offset

    # -- group graph patterns -----------------------------------------------------

    def parse_group_graph_pattern(self) -> PatternNode:
        self.expect_punct("{")
        if self.peek().is_keyword("SELECT"):
            subquery = self.parse_select()
            self.expect_punct("}")
            return SubSelectNode(subquery)
        current: Optional[PatternNode] = None
        filters: List[Expression] = []

        def join_with(new: PatternNode) -> None:
            nonlocal current
            if current is None:
                current = new
            elif isinstance(current, BGP) and isinstance(new, BGP):
                current = BGP(current.patterns + new.patterns)
            else:
                current = Join(current, new)

        while True:
            token = self.peek()
            if token.is_punct("}"):
                self.next()
                break
            if token.kind == "EOF":
                raise self.error("unterminated group graph pattern")
            if token.is_keyword("OPTIONAL"):
                self.next()
                right = self.parse_group_graph_pattern()
                condition: Optional[Expression] = None
                if isinstance(right, Filter):
                    condition = right.condition
                    right = right.child
                current = LeftJoin(current or Empty(), right, condition)
            elif token.is_keyword("MINUS"):
                self.next()
                right = self.parse_group_graph_pattern()
                current = Minus(current or Empty(), right)
            elif token.is_keyword("FILTER"):
                self.next()
                filters.append(self._parse_constraint())
            elif token.is_keyword("BIND"):
                self.next()
                self.expect_punct("(")
                expression = self.parse_expression()
                self.expect_keyword("AS")
                var_token = self.next()
                if var_token.kind != "VAR":
                    raise self.error("expected variable after AS", var_token)
                self.expect_punct(")")
                current = Extend(
                    current or Empty(), var_token.text[1:], expression)
            elif token.is_keyword("VALUES"):
                self.next()
                join_with(self._parse_values())
            elif token.is_keyword("GRAPH"):
                self.next()
                name_token = self.peek()
                name: Union[IRI, Var]
                if name_token.kind == "VAR":
                    self.next()
                    name = Var(name_token.text[1:])
                else:
                    name = self.parse_iri()
                child = self.parse_group_graph_pattern()
                join_with(GraphNode(name, child))
            elif token.is_punct("{"):
                sub = self.parse_group_graph_pattern()
                while self.peek().is_keyword("UNION"):
                    self.next()
                    other = self.parse_group_graph_pattern()
                    sub = UnionNode(sub, other)
                join_with(sub)
            elif (token.kind in _TERM_START_KINDS
                  or token.is_punct("[")
                  or token.is_keyword("TRUE", "FALSE")):
                patterns = self._parse_triples_block()
                join_with(BGP(patterns))
            else:
                raise self.error("unexpected token in group graph pattern")
            self.accept_punct(".")
        result: PatternNode = current if current is not None else Empty()
        for condition in filters:
            result = Filter(condition, result)
        return result

    def _parse_values(self) -> ValuesNode:
        token = self.peek()
        variables: List[str] = []
        if token.kind == "VAR":
            self.next()
            variables = [token.text[1:]]
            self.expect_punct("{")
            rows: List[List[Optional[Term]]] = []
            while not self.peek().is_punct("}"):
                if self.peek().is_keyword("UNDEF"):
                    self.next()
                    rows.append([None])
                else:
                    rows.append([self._parse_values_term()])
            self.next()  # consume }
            return ValuesNode(variables, rows)
        self.expect_punct("(")
        while self.peek().kind == "VAR":
            variables.append(self.next().text[1:])
        self.expect_punct(")")
        self.expect_punct("{")
        rows = []
        while self.peek().is_punct("("):
            self.next()
            row: List[Optional[Term]] = []
            while not self.peek().is_punct(")"):
                if self.peek().is_keyword("UNDEF"):
                    self.next()
                    row.append(None)
                else:
                    row.append(self._parse_values_term())
            self.next()  # consume )
            if len(row) != len(variables):
                raise self.error("VALUES row arity mismatch")
            rows.append(row)
        self.expect_punct("}")
        return ValuesNode(variables, rows)

    def _parse_values_term(self) -> Term:
        token = self.peek()
        if token.kind in ("IRIREF", "PNAME"):
            return self.parse_iri()
        return self.parse_literal()

    # -- triples block ---------------------------------------------------------

    def _parse_triples_block(self) -> List:
        patterns: List = []
        while True:
            subject = self._parse_node_with_properties(patterns,
                                                       as_subject=True)
            if not (self.peek().is_punct(";") or self._at_verb()):
                # subject came from a [...] that already carried its
                # predicate-object list
                pass
            if self._at_verb():
                self._parse_predicate_object_list(subject, patterns)
            token = self.peek()
            if token.is_punct("."):
                self.next()
                nxt = self.peek()
                if (nxt.kind in _TERM_START_KINDS or nxt.is_punct("[")
                        or nxt.is_keyword("TRUE", "FALSE")):
                    continue
                return patterns
            return patterns

    def _at_verb(self) -> bool:
        token = self.peek()
        return (token.kind in ("VAR", "IRIREF", "PNAME")
                or token.is_keyword("A")
                or token.is_op("^", "!")
                or token.is_punct("("))

    def _parse_verb(self) -> Union[PatternTerm, Path]:
        """A predicate: a variable, a plain IRI, or a property path."""
        token = self.peek()
        if token.kind == "VAR":
            self.next()
            return Var(token.text[1:])
        path = self._parse_path()
        if isinstance(path, LinkPath):
            return path.iri
        return path

    # -- property paths --------------------------------------------------------

    def _parse_path(self) -> Path:
        """PathAlternative per the SPARQL 1.1 grammar (section 9)."""
        first = self._parse_path_sequence()
        if not self.peek().is_op("|"):
            return first
        choices = [first]
        while self.peek().is_op("|"):
            self.next()
            choices.append(self._parse_path_sequence())
        return AlternativePath(choices)

    def _parse_path_sequence(self) -> Path:
        first = self._parse_path_elt_or_inverse()
        if not self.peek().is_op("/"):
            return first
        steps = [first]
        while self.peek().is_op("/"):
            self.next()
            steps.append(self._parse_path_elt_or_inverse())
        return SequencePath(steps)

    def _parse_path_elt_or_inverse(self) -> Path:
        if self.peek().is_op("^"):
            self.next()
            return InversePath(self._parse_path_elt())
        return self._parse_path_elt()

    def _parse_path_elt(self) -> Path:
        primary = self._parse_path_primary()
        token = self.peek()
        if token.is_op("?"):
            self.next()
            return ZeroOrOnePath(primary)
        if token.is_op("*"):
            self.next()
            return ZeroOrMorePath(primary)
        if token.is_op("+"):
            self.next()
            return OneOrMorePath(primary)
        return primary

    def _parse_path_primary(self) -> Path:
        token = self.peek()
        if token.is_keyword("A"):
            self.next()
            return LinkPath(RDF.type)
        if token.is_op("!"):
            self.next()
            return self._parse_negated_property_set()
        if token.is_punct("("):
            self.next()
            path = self._parse_path()
            self.expect_punct(")")
            return path
        return LinkPath(self.parse_iri())

    def _parse_negated_property_set(self) -> NegatedPropertySet:
        forward: List[IRI] = []
        inverse: List[IRI] = []

        def one_member() -> None:
            if self.peek().is_op("^"):
                self.next()
                if self.accept_keyword("A"):
                    inverse.append(RDF.type)
                else:
                    inverse.append(self.parse_iri())
            elif self.accept_keyword("A"):
                forward.append(RDF.type)
            else:
                forward.append(self.parse_iri())

        if self.accept_punct("("):
            one_member()
            while self.peek().is_op("|"):
                self.next()
                one_member()
            self.expect_punct(")")
        else:
            one_member()
        return NegatedPropertySet(forward, inverse)

    def _emit_triple(self, subject: PatternTerm,
                     verb: Union[PatternTerm, Path], obj: PatternTerm,
                     patterns: List) -> None:
        """Append pattern nodes for one (subject, verb, object) statement.

        Plain predicates stay triple patterns; paths are rewritten where
        the rewrite is an equivalence (inverse flip, sequence chaining
        through fresh variables) so only closures, alternatives and
        negated sets reach the algebra as path nodes.
        """
        if isinstance(verb, Path):
            self._emit_path(subject, verb, obj, patterns)
        else:
            patterns.append(TriplePatternNode(subject, verb, obj))

    def _emit_path(self, subject: PatternTerm, path: Path,
                   obj: PatternTerm, patterns: List) -> None:
        if isinstance(path, LinkPath):
            patterns.append(TriplePatternNode(subject, path.iri, obj))
            return
        if isinstance(path, InversePath):
            self._emit_path(obj, path.child, subject, patterns)
            return
        if isinstance(path, SequencePath):
            current = subject
            for step in path.steps[:-1]:
                middle = self.fresh_var()
                self._emit_path(current, step, middle, patterns)
                current = middle
            self._emit_path(current, path.steps[-1], obj, patterns)
            return
        patterns.append(PathPatternNode(subject, path, obj))

    def _parse_node_with_properties(self, patterns: List,
                                    as_subject: bool = False) -> PatternTerm:
        """Parse a subject/object node; expands ``[ ... ]`` in place."""
        token = self.peek()
        if token.is_punct("["):
            self.next()
            node = self.fresh_var()
            if not self.peek().is_punct("]"):
                self._parse_predicate_object_list(node, patterns)
            self.expect_punct("]")
            return node
        return self.parse_pattern_term(allow_literal=not as_subject)

    def _parse_predicate_object_list(self, subject: PatternTerm,
                                     patterns: List) -> None:
        while True:
            verb = self._parse_verb()
            while True:
                obj = self._parse_node_with_properties(patterns)
                self._emit_triple(subject, verb, obj, patterns)
                if self.accept_punct(","):
                    continue
                break
            if self.accept_punct(";"):
                if self._at_verb():
                    continue
            return

    # -- expressions -------------------------------------------------------------

    def _parse_constraint(self) -> Expression:
        token = self.peek()
        if token.is_punct("("):
            self.next()
            expression = self.parse_expression()
            self.expect_punct(")")
            return expression
        if token.kind == "KEYWORD" and (
                token.upper in _BUILTIN_KEYWORDS
                or token.upper in AGGREGATE_NAMES
                or token.upper in ("EXISTS", "NOT EXISTS")):
            return self._parse_builtin_call()
        if token.kind in ("IRIREF", "PNAME"):
            return self._parse_iri_function()
        raise self.error("expected a constraint")

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.peek().is_op("||"):
            self.next()
            right = self._parse_and()
            left = BooleanExpression("||", left, right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while self.peek().is_op("&&"):
            self.next()
            right = self._parse_relational()
            left = BooleanExpression("&&", left, right)
        return left

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.is_op("=", "!=", "<", ">", "<=", ">="):
            self.next()
            right = self._parse_additive()
            return ComparisonExpression(token.text, left, right)
        if token.is_keyword("IN"):
            self.next()
            return InExpression(left, self._parse_expression_list())
        if token.is_keyword("NOT") and self.peek(1).is_keyword("IN"):
            self.next()
            self.next()
            return InExpression(left, self._parse_expression_list(),
                                negated=True)
        return left

    def _parse_expression_list(self) -> List[Expression]:
        self.expect_punct("(")
        items: List[Expression] = []
        if not self.peek().is_punct(")"):
            items.append(self.parse_expression())
            while self.accept_punct(","):
                items.append(self.parse_expression())
        self.expect_punct(")")
        return items

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.is_op("+", "-"):
                self.next()
                right = self._parse_multiplicative()
                left = ArithmeticExpression(token.text, left, right)
                continue
            # `?x -5` tokenizes the signed number as one literal token
            if token.kind in ("INTEGER", "DECIMAL", "DOUBLE_NUM") \
                    and token.text[0] in "+-":
                self.next()
                datatype = {"INTEGER": XSD_INTEGER, "DECIMAL": XSD_DECIMAL,
                            "DOUBLE_NUM": XSD_DOUBLE}[token.kind]
                literal = Literal(token.text[1:], datatype=datatype)
                op = token.text[0]
                left = ArithmeticExpression(op, left, TermExpression(literal))
                continue
            return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self.peek().is_op("*", "/"):
            token = self.next()
            right = self._parse_unary()
            left = ArithmeticExpression(token.text, left, right)
        return left

    def _parse_unary(self) -> Expression:
        token = self.peek()
        if token.is_op("!"):
            self.next()
            return NotExpression(self._parse_unary())
        if token.is_op("-"):
            self.next()
            return UnaryMinusExpression(self._parse_unary())
        if token.is_op("+"):
            self.next()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.peek()
        if token.is_punct("("):
            self.next()
            expression = self.parse_expression()
            self.expect_punct(")")
            return expression
        if token.kind == "VAR":
            self.next()
            return VariableExpression(token.text[1:])
        if token.kind == "KEYWORD":
            upper = token.upper
            if upper in ("TRUE", "FALSE"):
                self.next()
                return TermExpression(
                    Literal(upper.lower(), datatype=XSD_BOOLEAN))
            if upper in _BUILTIN_KEYWORDS or upper in AGGREGATE_NAMES \
                    or upper in ("EXISTS", "NOT", "NOT EXISTS"):
                return self._parse_builtin_call()
            raise self.error("unexpected keyword in expression")
        if token.kind in ("STRING", "LONG_STRING", "INTEGER", "DECIMAL",
                          "DOUBLE_NUM"):
            return TermExpression(self.parse_literal())
        if token.kind in ("IRIREF", "PNAME"):
            return self._parse_iri_function()
        raise self.error("unexpected token in expression")

    def _parse_iri_function(self) -> Expression:
        iri = self.parse_iri()
        if self.peek().is_punct("("):
            cast_name = _XSD_CAST_IRIS.get(iri.value)
            if cast_name is None:
                raise self.error(f"unknown function <{iri.value}>")
            args = self._parse_expression_list()
            return FunctionExpression(cast_name, args)
        return TermExpression(iri)

    def _parse_builtin_call(self) -> Expression:
        token = self.next()
        upper = token.upper
        if upper == "NOT":
            self.expect_keyword("EXISTS")
            pattern = self.parse_group_graph_pattern()
            return ExistsExpression(pattern, negated=True)
        if upper == "NOT EXISTS":
            pattern = self.parse_group_graph_pattern()
            return ExistsExpression(pattern, negated=True)
        if upper == "EXISTS":
            pattern = self.parse_group_graph_pattern()
            return ExistsExpression(pattern)
        if upper in AGGREGATE_NAMES:
            return self._parse_aggregate(upper)
        # regular builtin: NAME(args...)
        self.expect_punct("(")
        args: List[Expression] = []
        if not self.peek().is_punct(")"):
            args.append(self.parse_expression())
            while self.accept_punct(","):
                args.append(self.parse_expression())
        self.expect_punct(")")
        return FunctionExpression(upper, args)

    def _parse_aggregate(self, name: str) -> Aggregate:
        self.expect_punct("(")
        distinct = self.accept_keyword("DISTINCT")
        if name == "COUNT" and self.peek().is_op("*"):
            self.next()
            self.expect_punct(")")
            return Aggregate("COUNT", None, distinct=distinct)
        expression = self.parse_expression()
        separator = " "
        if name == "GROUP_CONCAT" and self.accept_punct(";"):
            self.expect_keyword("SEPARATOR")
            token = self.next()
            if not token.is_op("="):
                raise self.error("expected '=' after SEPARATOR", token)
            sep_token = self.next()
            if sep_token.kind not in ("STRING", "LONG_STRING"):
                raise self.error("expected string separator", sep_token)
            separator = self._string_token_value(sep_token)
        self.expect_punct(")")
        return Aggregate(name, expression, distinct=distinct,
                         separator=separator)

    # -- updates -----------------------------------------------------------------

    def parse_update(self) -> List[UpdateOperation]:
        self.parse_prologue()
        operations: List[UpdateOperation] = []
        while self.peek().kind != "EOF":
            operations.append(self._parse_update_operation())
            self.accept_punct(";")
            self.parse_prologue()  # prefixes may appear between operations
        if not operations:
            raise self.error("empty update request")
        return operations

    def _parse_update_operation(self) -> UpdateOperation:
        token = self.peek()
        if token.is_keyword("INSERT"):
            self.next()
            if self.accept_keyword("DATA"):
                return InsertDataOp(self._parse_quad_data())
            insert_quads = self._parse_quad_pattern()
            self.expect_keyword("WHERE")
            pattern = self.parse_group_graph_pattern()
            return ModifyOp([], insert_quads, pattern)
        if token.is_keyword("DELETE"):
            self.next()
            if self.accept_keyword("DATA"):
                return DeleteDataOp(self._parse_quad_data())
            if self.peek().is_keyword("WHERE"):
                self.next()
                pattern_quads = self._parse_quad_pattern()
                bgp = BGP([TriplePatternNode(s, p, o)
                           for _, s, p, o in pattern_quads])
                return ModifyOp(pattern_quads, [], bgp)
            delete_quads = self._parse_quad_pattern()
            insert_quads: List[Quad] = []
            if self.accept_keyword("INSERT"):
                insert_quads = self._parse_quad_pattern()
            self.expect_keyword("WHERE")
            pattern = self.parse_group_graph_pattern()
            return ModifyOp(delete_quads, insert_quads, pattern)
        if token.is_keyword("WITH"):
            self.next()
            graph = self.parse_iri()
            delete_quads = []
            insert_quads = []
            if self.accept_keyword("DELETE"):
                delete_quads = self._parse_quad_pattern()
            if self.accept_keyword("INSERT"):
                insert_quads = self._parse_quad_pattern()
            self.expect_keyword("WHERE")
            pattern = self.parse_group_graph_pattern()
            return ModifyOp(delete_quads, insert_quads, pattern,
                            with_graph=graph)
        if token.is_keyword("CLEAR"):
            self.next()
            silent = self.accept_keyword("SILENT")
            return ClearOp(self._parse_graph_ref(), silent=silent)
        if token.is_keyword("CREATE"):
            self.next()
            silent = self.accept_keyword("SILENT")
            self.expect_keyword("GRAPH")
            return CreateOp(self.parse_iri(), silent=silent)
        if token.is_keyword("DROP"):
            self.next()
            silent = self.accept_keyword("SILENT")
            return DropOp(self._parse_graph_ref(), silent=silent)
        raise self.error("expected an update operation")

    def _parse_graph_ref(self) -> Union[IRI, str]:
        token = self.peek()
        if token.is_keyword("GRAPH"):
            self.next()
            return self.parse_iri()
        if token.is_keyword("DEFAULT"):
            self.next()
            return "DEFAULT"
        if token.is_keyword("NAMED"):
            self.next()
            return "NAMED"
        if token.is_keyword("ALL"):
            self.next()
            return "ALL"
        raise self.error("expected GRAPH/DEFAULT/NAMED/ALL")

    def _parse_quad_data(self) -> List[Quad]:
        """Ground quads for INSERT DATA / DELETE DATA."""
        quads = self._parse_quad_pattern()
        for graph, s, p, o in quads:
            if any(isinstance(term, Var) for term in (s, p, o)):
                raise self.error("variables are not allowed in DATA blocks")
        return quads

    def _parse_quad_pattern(self) -> List[Quad]:
        self.expect_punct("{")
        quads: List[Quad] = []

        def extend(graph: Optional[IRI], patterns: List) -> None:
            for p in patterns:
                if isinstance(p, PathPatternNode):
                    raise self.error(
                        "property paths are not allowed in templates")
                quads.append((graph, p.subject, p.predicate, p.object))

        while not self.peek().is_punct("}"):
            if self.peek().is_keyword("GRAPH"):
                self.next()
                graph = self.parse_iri()
                self.expect_punct("{")
                while not self.peek().is_punct("}"):
                    extend(graph, self._parse_triples_block())
                    self.accept_punct(".")
                self.next()  # consume }
                self.accept_punct(".")
            else:
                extend(None, self._parse_triples_block())
                self.accept_punct(".")
        self.next()  # consume }
        return quads


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def parse_query(text: str) -> Query:
    """Parse a SELECT or ASK query into algebra."""
    return _Parser(text).parse_query()


def parse_update(text: str) -> List[UpdateOperation]:
    """Parse an update request into a list of operations."""
    return _Parser(text).parse_update()
