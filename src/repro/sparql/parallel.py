"""Morsel-driven parallel execution of BGP plans over shared memory.

A single SPARQL query in this engine runs on one core: the evaluator's
batch pipeline is vectorized but sequential, and the GIL prevents
thread-level CPU parallelism.  This module adds the standard
analytical-engine answer — **morsel-driven parallelism** (Leis et al.,
HyPer) — on top of the snapshot/columnar machinery the previous layers
already provide:

* the first join step of a parallel-safe :class:`PhysicalPlan` is a
  contiguous range of one sorted :class:`~repro.rdf.columnar.
  TripleColumns` order (located with the existing ``_route`` /
  ``_range`` staged binary searches); that range is split into
  **morsels** of ~``morsel_rows`` rows;
* each morsel is shipped to a persistent ``ProcessPoolExecutor``
  worker, which executes the *same* join pipeline
  (:meth:`PatternEvaluator._step_triple`, unchanged) against columns
  **re-mapped zero-copy from shared memory** — the parent exports each
  graph generation once per epoch (see :mod:`repro.rdf.shm` and the
  refcounted registry in :mod:`repro.rdf.concurrency`), and the term
  dictionary prefix ships once per epoch the same way;
* workers return **id-level** results (solution rows or per-group
  COUNT/SUM/AVG/MIN/MAX partials) plus the per-step ``(rows, width)``
  charge log;
  the parent replays the charges against the query's single governor
  budget (global across workers), merges in morsel submission order,
  decodes ids back into terms, and applies the ordinary SELECT tail —
  so DISTINCT / ORDER BY / LIMIT / OFFSET semantics are exactly the
  serial ones;
* deadline, budget and cancellation verdicts trip a one-byte shared
  **control flag** that workers poll at morsel boundaries; a worker
  death surfaces as a typed :class:`QueryExecutionError` and the pool
  is rebuilt lazily for the next query.

Worker-side code (the ``_worker*`` functions and ``_Worker*`` classes
below) obeys a shared-nothing contract enforced by the
``parallel-safety`` lint rule: it touches only the SHM-mapped columns,
the shipped dictionary and the shipped pattern list — never the live
endpoint, graphs, or module-level caches of the parent process.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, \
    wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf import shm
from repro.rdf.columnar import IdPattern, TripleColumns, concat_arrays
from repro.rdf.concurrency import SHM_SEGMENTS
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import DatasetSnapshot, GraphSnapshot
from repro.rdf.terms import Literal, Term
from repro.sparql.algebra import BGP, SelectQuery, TriplePatternNode, Var
from repro.sparql.bindings import BindingTable
from repro.sparql.errors import QueryExecutionError
from repro.sparql.evaluator import (
    DatasetContext,
    PatternEvaluator,
    SingleGraphSource,
    STREAMING_ENABLED,
    UnionGraphSource,
    would_stream,
)
from repro.sparql.expressions import (
    Aggregate,
    ExpressionError,
    VariableExpression,
    _numeric_literal,
    numeric_value,
    order_key,
)
from repro.sparql.optimizer import get_plan
from repro.testing import faults as _faults

__all__ = ["AUTO_THRESHOLD", "DEFAULT_WORKERS", "MORSEL_ROWS",
           "ParallelExecutor"]

#: Default morsel size (first-step scan rows per worker task).
MORSEL_ROWS = int(os.environ.get("REPRO_PARALLEL_MORSEL_ROWS", "16384"))

#: Auto-enable threshold: below this estimated first-step cardinality
#: a query stays serial (fan-out overhead would dominate).
AUTO_THRESHOLD = int(os.environ.get("REPRO_PARALLEL_THRESHOLD", "8192"))

#: Default worker-pool width when ``parallel=True`` picks for you.
DEFAULT_WORKERS = 4

#: Parent-side poll interval while waiting on morsel futures — this is
#: the granularity at which deadlines/cancellation are enforced over a
#: running parallel query.
_POLL_SECONDS = 0.02

#: Process-wide name sequence: segment names must be unique per pid.
_SEGMENT_SEQ = itertools.count(1)


def _segment_name(tag: str) -> str:
    return f"{shm.SEGMENT_PREFIX}{os.getpid()}_{tag}{next(_SEGMENT_SEQ)}"


def _effective_columns(graph: GraphSnapshot) -> TripleColumns:
    """The complete, immutable column view of one pinned graph.

    Published snapshots usually carry a compacted generation and no
    tombstones; a small uncompacted delta (or a column-less tiny graph)
    is folded into a fresh generation here so workers always see one
    sorted array set per graph.
    """
    columns = graph._columns
    if columns is None:
        return TripleColumns.build(graph.triples_ids())
    if graph._tombstones or graph._delta_size:
        return columns.merged(graph._spo, graph._tombstones)
    return columns


# ---------------------------------------------------------------------------
# worker side (shared-nothing: see the parallel-safety lint rule)
# ---------------------------------------------------------------------------

#: Per-worker attach caches: segment name -> mapped payload.  Pruned to
#: the current task's segments on every run, so stale epochs do not
#: accumulate in long-lived workers.
_WORKER_COLUMNS: Dict[str, Tuple[object, TripleColumns]] = {}
_WORKER_TERMS: Dict[str, TermDictionary] = {}

#: Hash-join builds keyed by (segment names, pattern, join spec): the
#: build side scans the *whole* mapped columns, so one build serves
#: every morsel of a step — and every later query against the same
#: epoch.  Entries die with their segments (pruned per task).
_WORKER_MEMOS: Dict[Tuple[Any, ...], Dict] = {}


class _WorkerDataset:
    """The one dataset attribute :class:`PatternEvaluator` needs."""

    __slots__ = ("dictionary",)

    def __init__(self, dictionary: TermDictionary) -> None:
        self.dictionary = dictionary


class _WorkerContext:
    """A minimal evaluation context for in-worker join steps: the
    rebuilt dictionary and no governor (budgets are parent-side)."""

    __slots__ = ("dataset", "governor")

    def __init__(self, dictionary: TermDictionary) -> None:
        self.dataset = _WorkerDataset(dictionary)
        self.governor = None


class _WorkerMorselSource:
    """This task's assigned first-step range: a contiguous slice of
    one graph's chosen sort order, served zero-copy."""

    __slots__ = ("_columns", "_order", "_lo", "_hi")

    def __init__(self, columns: TripleColumns, order: str,
                 lo: int, hi: int) -> None:
        self._columns = columns
        self._order = order
        self._lo = lo
        self._hi = hi

    def match_arrays(self, pattern: IdPattern):
        s, p, o = self._columns._orders[self._order]
        return s[self._lo:self._hi], p[self._lo:self._hi], \
            o[self._lo:self._hi]

    def match_ids(self, pattern: IdPattern):
        s, p, o = self.match_arrays(pattern)
        return zip(s.tolist(), p.tolist(), o.tolist())

    def estimate_ids(self, pattern: IdPattern) -> int:
        return self._hi - self._lo


class _WorkerUnionSource:
    """All mapped columns of the snapshot, in the parent's source
    order — what the later (probe/hash) join steps run against.

    ``cache_token`` identifies the immutable column set (its segment
    names), so join builds over it are cacheable across morsels."""

    __slots__ = ("_columns", "cache_token")

    def __init__(self, columns: Sequence[TripleColumns],
                 cache_token: Tuple[str, ...]) -> None:
        self._columns = [member for member in columns if member.size]
        self.cache_token = cache_token

    def match_arrays(self, pattern: IdPattern):
        parts = [member.arrays(pattern) for member in self._columns]
        parts = [part for part in parts if len(part[0])]
        if not parts:
            empty = np.empty(0, dtype=np.int32)
            return (empty, empty, empty)
        return concat_arrays(parts)

    def match_ids(self, pattern: IdPattern):
        for member in self._columns:
            yield from member.scan(pattern)

    def estimate_ids(self, pattern: IdPattern) -> int:
        return sum(member.count(pattern) for member in self._columns)


def _worker_prune(task: Dict[str, Any]) -> None:
    """Drop cache entries for segments this task no longer references
    (stale epochs); dropping the handle unmaps the views."""
    live = {manifest.segment for manifest in task["graphs"]}
    for name in list(_WORKER_COLUMNS):
        if name not in live:
            del _WORKER_COLUMNS[name]
    for name in list(_WORKER_TERMS):
        if name != task["terms"].segment:
            del _WORKER_TERMS[name]
    for key in list(_WORKER_MEMOS):
        if any(name not in live for name in key[0]):
            del _WORKER_MEMOS[key]


def _worker_columns(manifest: shm.ColumnsManifest) -> TripleColumns:
    cached = _WORKER_COLUMNS.get(manifest.segment)
    if cached is None:
        cached = shm.attach_columns(manifest)
        _WORKER_COLUMNS[manifest.segment] = cached
    return cached[1]


def _worker_dictionary(manifest: shm.TermsManifest) -> TermDictionary:
    cached = _WORKER_TERMS.get(manifest.segment)
    if cached is None:
        cached = TermDictionary.from_terms(shm.attach_terms(manifest))
        _WORKER_TERMS[manifest.segment] = cached
    return cached


class _WorkerEvaluator(PatternEvaluator):
    """The serial join pipeline with morsel-aware strategy choices.

    A morsel's binding table is a small slice of a large scan, so the
    parent's ``estimate <= 4 * rows`` hash-join heuristic would send
    every morsel down the per-key index-probe path — quadratic across
    the fan-out.  Workers instead always build the hash side against
    the full mapped columns and memoize the build in
    :data:`_WORKER_MEMOS`: the first morsel pays for the scan once per
    worker, every later morsel (and every later query against the
    same epoch) probes it for free.  The memo is read-only on the
    probe side (missing keys mean *no matches* under ``use_hash``), so
    sharing it across morsels cannot corrupt results.
    """

    def _prefer_hash(self, source, base, rows) -> bool:
        if isinstance(source, _WorkerUnionSource):
            return rows > 0
        return super()._prefer_hash(source, base, rows)

    def _hash_memo(self, source, base, match_ids, v_positions,
                   n_positions, d_checks, single) -> Dict:
        token = getattr(source, "cache_token", None)
        if token is None:
            return super()._hash_memo(source, base, match_ids,
                                      v_positions, n_positions,
                                      d_checks, single)
        key = (token, base, tuple(v_positions), tuple(n_positions),
               tuple(d_checks), single)
        memo = _WORKER_MEMOS.get(key)
        if memo is None:
            memo = super()._hash_memo(source, base, match_ids,
                                      v_positions, n_positions,
                                      d_checks, single)
            _WORKER_MEMOS[key] = memo
        return memo


_ABORTED: Dict[str, Any] = {"aborted": True, "names": (), "rows": [],
                            "partials": [], "charges": []}


def _worker_partials(spec: Dict[str, Any], table: BindingTable,
                     dictionary: TermDictionary) -> List[Tuple]:
    """Per-group aggregate partials over one morsel's id-level rows.

    Per aggregate item the partial state is chosen so the parent can
    merge *exactly* (see :meth:`ParallelExecutor._merge_aggregate`):

    * ``COUNT`` — the count of rows whose argument is bound;
    * ``SUM`` / ``AVG`` — ``(total, n, err)``: the Python-semantics
      running total (int stays int, Decimal stays Decimal — addition
      is associative for both, so partial sums merge losslessly), the
      contributing-value count, and a sticky error flag for values
      :func:`numeric_value` rejects (the serial path leaves the whole
      aggregate unbound in that case);
    * ``MIN`` / ``MAX`` — the id of the morsel's best term under
      :func:`order_key` (first-encountered among ties, like the serial
      stable sort); the parent re-compares one candidate per morsel.

    Only group keys and the handful of per-group extrema/total terms
    are ever decoded — the bulk of the morsel stays id-level.
    """
    if not table.rows:
        return []
    decode = dictionary.decode
    group_slots = [table.slots[name] for name in spec["group"]]
    items = spec["items"]
    item_slots = [table.slots[arg] if arg is not None else None
                  for _kind, arg in items]
    #: id → (numeric value | ExpressionError sentinel) and id → order
    #: key caches: each distinct term is decoded at most once per morsel
    numeric_cache: Dict[int, Any] = {}
    key_cache: Dict[int, Tuple] = {}
    groups: Dict[Tuple[Optional[int], ...], List[Any]] = {}
    for row in table.rows:
        key = tuple(row[slot] for slot in group_slots)
        states = groups.get(key)
        if states is None:
            states = []
            for kind, _arg in items:
                if kind == "COUNT":
                    states.append(0)
                elif kind in ("SUM", "AVG"):
                    states.append([0, 0, False])
                else:  # MIN / MAX
                    states.append(None)
            groups[key] = states
        for index, (kind, _arg) in enumerate(items):
            slot = item_slots[index]
            if kind == "COUNT":
                if slot is None or row[slot] is not None:
                    states[index] += 1
                continue
            value_id = row[slot]
            if value_id is None:
                continue  # unbound argument: the serial path skips it
            if kind in ("SUM", "AVG"):
                state = states[index]
                number = numeric_cache.get(value_id)
                if number is None:
                    try:
                        number = numeric_value(decode(value_id))
                    except ExpressionError:
                        number = ExpressionError
                    numeric_cache[value_id] = number
                if number is ExpressionError:
                    state[2] = True
                else:
                    state[0] = state[0] + number
                    state[1] += 1
            else:  # MIN / MAX
                best = states[index]
                if best is None:
                    states[index] = value_id
                    continue
                if best == value_id:
                    continue
                for vid in (best, value_id):
                    if vid not in key_cache:
                        key_cache[vid] = order_key(decode(vid))
                if kind == "MIN":
                    if key_cache[value_id] < key_cache[best]:
                        states[index] = value_id
                elif key_cache[value_id] > key_cache[best]:
                    states[index] = value_id
    return list(groups.items())


def _worker_run(task: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one morsel: the shipped join pipeline over the mapped
    columns, id-level in and id-level out (decode stays parent-side)."""
    fault = task.get("fault")
    if fault is not None:
        kind, seconds = fault
        if kind == "kill":
            os._exit(17)
        elif kind == "raise":
            raise RuntimeError("injected worker fault (parallel.worker.raise)")
        elif kind == "delay":
            time.sleep(seconds)
    control = task["control"]
    if shm.control_is_set(control):
        return _ABORTED
    _worker_prune(task)
    columns = [_worker_columns(manifest) for manifest in task["graphs"]]
    dictionary = _worker_dictionary(task["terms"])
    evaluator = _WorkerEvaluator(_WorkerContext(dictionary))
    graph_index, order, lo, hi = task["morsel"]
    first_source = _WorkerMorselSource(columns[graph_index], order, lo, hi)
    rest_source = _WorkerUnionSource(
        columns, tuple(manifest.segment for manifest in task["graphs"]))
    patterns = task["patterns"]
    table = BindingTable.unit()
    charges: List[Tuple[int, int]] = []
    for position, index in enumerate(task["order"]):
        if position and shm.control_is_set(control):
            return _ABORTED
        source = first_source if position == 0 else rest_source
        table = evaluator._step_triple(patterns[index], source, table)
        charges.append((len(table.rows), max(1, len(table.names))))
        if not table.rows:
            break
    if task["agg"] is not None:
        partials = _worker_partials(task["agg"], table, dictionary)
        return {"aborted": False, "names": tuple(table.names), "rows": None,
                "partials": partials, "charges": charges}
    return {"aborted": False, "names": tuple(table.names),
            "rows": table.rows, "partials": None, "charges": charges}


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class _Probe:
    """Outcome of the eligibility check: either a ``reason`` to stay
    serial, or everything the export/dispatch stage needs."""

    __slots__ = ("reason", "graphs", "plan", "base", "counts",
                 "est", "agg_spec")

    def __init__(self, reason: Optional[str] = None) -> None:
        self.reason = reason
        self.graphs: List[GraphSnapshot] = []
        self.plan = None
        self.base: IdPattern = (None, None, None)
        self.counts: List[int] = []
        self.est = 0
        #: ``None`` for the general path; for the in-worker aggregate
        #: path the ``(group keys, aggregate items)`` spec from
        #: :func:`_fast_aggregate_spec`.
        self.agg_spec: Optional[Tuple[List[Tuple[str, str]],
                                      List[Tuple[str, str, Optional[str]]]]] \
            = None


class _Job:
    """One exported, morselized parallel query (segments pinned)."""

    __slots__ = ("manifests", "terms", "patterns", "order", "tasks",
                 "agg_task", "agg_keys", "agg_items", "pinned", "skew")

    def __init__(self) -> None:
        self.manifests: List[shm.ColumnsManifest] = []
        self.terms: Optional[shm.TermsManifest] = None
        self.patterns: List[TriplePatternNode] = []
        self.order: List[int] = []
        self.tasks: List[Tuple[int, str, int, int]] = []
        #: worker-shippable form of the aggregate spec (or ``None``)
        self.agg_task: Optional[Dict[str, Any]] = None
        self.agg_keys: Optional[List[Tuple[str, str]]] = None
        self.agg_items: Optional[List[Tuple[str, str, Optional[str]]]] = None
        self.pinned: List[Tuple[object, ...]] = []
        self.skew = 1.0


#: Aggregates the workers can compute as mergeable per-group partials.
_PARTIAL_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def _fast_aggregate_spec(query: SelectQuery, available: frozenset
                         ) -> Optional[Tuple[
                             List[Tuple[str, str]],
                             List[Tuple[str, str, Optional[str]]]]]:
    """``(group keys, aggregate items)`` when the whole aggregation can
    run as in-worker per-group partials: no HAVING, variable-only GROUP
    BY keys (all bound by the BGP), and every projected expression a
    plain non-DISTINCT COUNT/SUM/AVG/MIN/MAX over a BGP variable (or
    ``COUNT(*)``).  Anything else returns ``None`` and takes the
    general path (parallel BGP, serial aggregation over the merged
    solutions).

    Group keys are ``(pattern var, output name)`` pairs; items are
    ``(output name, aggregate kind, argument var or None)``.
    """
    if query.having or query.projection is None:
        return None
    keys: List[Tuple[str, str]] = []
    for position, expression in enumerate(query.group_by):
        if not isinstance(expression, VariableExpression) \
                or expression.name not in available:
            return None
        alias = query.group_aliases.get(position)
        keys.append((expression.name, alias or expression.name))
    items: List[Tuple[str, str, Optional[str]]] = []
    for item in query.projection:
        if item.expression is None:
            continue
        aggregate = item.expression
        if not isinstance(aggregate, Aggregate) or aggregate.distinct \
                or aggregate.name not in _PARTIAL_AGGREGATES:
            return None
        argument = aggregate.expression
        if argument is None:
            if aggregate.name != "COUNT":
                return None
            items.append((item.name, "COUNT", None))
            continue
        if not isinstance(argument, VariableExpression) \
                or argument.name not in available:
            return None
        items.append((item.name, aggregate.name, argument.name))
    return keys, items


class ParallelExecutor:
    """Owns the worker pool, the exported-segment keys and the morsel
    dispatch loop for one endpoint.

    The executor is engaged from ``evaluate_select`` (via the
    ``parallel`` attribute of the :class:`DatasetContext`); it either
    returns a finished :class:`ResultTable` or ``None`` to fall back
    to the serial path — eligibility reasons land in
    :attr:`last_decline` and the ``telemetry`` counters.
    """

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 morsel_rows: int = MORSEL_ROWS,
                 threshold: int = AUTO_THRESHOLD) -> None:
        self.workers = max(1, int(workers))
        self.morsel_rows = max(1, int(morsel_rows))
        self.threshold = max(0, int(threshold))
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        #: logical prefix -> currently-live registry key, so superseded
        #: epochs are retired as soon as a newer one is exported
        self._current: Dict[Tuple[object, ...], Tuple[object, ...]] = {}
        self.telemetry: Dict[str, int] = {
            "queries": 0, "declined": 0, "morsels": 0,
            "worker_deaths": 0, "aborts": 0, "agg_pushdown": 0}
        self.last_decline: Optional[str] = None

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                context = multiprocessing.get_context("spawn")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context)
            return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool; the next query lazily builds a fresh
        one (this is the pool-recovery path after a worker death)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut down the workers and retire every exported segment.

        Idempotent; after it returns, no shared-memory segment exported
        by this executor remains (provided no query is still running)."""
        with self._lock:
            pool, self._pool = self._pool, None
            current, self._current = dict(self._current), {}
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for key in current.values():
            SHM_SEGMENTS.retire(key)

    # -- eligibility ---------------------------------------------------------

    def _probe(self, query: SelectQuery, context, source,
               evaluator: PatternEvaluator) -> _Probe:
        node = query.pattern
        if not isinstance(node, BGP) or not node.patterns:
            return _Probe("pattern is not a plain BGP")
        if any(not isinstance(pattern, TriplePatternNode)
               for pattern in node.patterns):
            return _Probe("BGP contains property paths")
        if not isinstance(context.dataset, DatasetSnapshot):
            return _Probe("not running against a pinned snapshot")
        if isinstance(source, SingleGraphSource):
            graphs = [source.graph]
        elif isinstance(source, UnionGraphSource):
            graphs = list(source.graphs)
            if len(graphs) > 1 and not source.disjoint:
                return _Probe("union source is not disjoint")
        else:
            return _Probe("unsupported source kind")
        if any(not isinstance(graph, GraphSnapshot) for graph in graphs):
            return _Probe("source graphs are not pinned snapshots")
        if evaluator._bgp_dead(node.patterns):
            return _Probe("dead constant (serial fast path)")
        plan = get_plan(node, frozenset(), source)
        if not plan.parallel_safe:
            return _Probe("plan is not parallel-safe")
        first = node.patterns[plan.order[0]]
        lookup = evaluator._dict.lookup
        base: List[Optional[int]] = []
        for position in first.positions():
            if isinstance(position, Var):
                base.append(None)
            else:
                base.append(lookup(position))
        base_pattern = (base[0], base[1], base[2])
        counts = [graph.count_ids(base_pattern) for graph in graphs]
        est = sum(counts)
        if est < self.threshold:
            return _Probe(f"estimated first-step scan of {est} rows is "
                          f"below the threshold ({self.threshold})")
        probe = _Probe()
        probe.graphs = graphs
        probe.plan = plan
        probe.base = base_pattern
        probe.counts = counts
        probe.est = est
        if query.is_aggregate_query:
            available = frozenset().union(
                *[pattern.variables() for pattern in node.patterns])
            probe.agg_spec = _fast_aggregate_spec(query, available)
        return probe

    # -- export / morselization ----------------------------------------------

    def _graph_key(self, graph: GraphSnapshot) -> Tuple[object, ...]:
        identifier = graph.identifier
        ident = identifier.value if identifier is not None else ""
        return ("columns", id(self), ident, graph.epoch)

    def _supersede(self, prefix: Tuple[object, ...],
                   key: Tuple[object, ...]) -> None:
        """Track the live key under ``prefix``; retire the one it
        replaced (unlinked once its last pinned query drains)."""
        with self._lock:
            old = self._current.get(prefix)
            self._current[prefix] = key
        if old is not None and old != key:
            SHM_SEGMENTS.retire(old)

    def _export_job(self, query: SelectQuery, context,
                    probe: _Probe) -> _Job:
        job = _Job()
        node = query.pattern
        job.patterns = list(node.patterns)
        job.order = list(probe.plan.order)
        views: List[TripleColumns] = []
        for graph in probe.graphs:
            key = self._graph_key(graph)

            def build(graph: GraphSnapshot = graph
                      ) -> Tuple[object, Sequence[object]]:
                columns = _effective_columns(graph)
                segment, manifest, view = shm.export_columns(
                    columns, _segment_name("col"))
                return (manifest, view), (segment,)

            manifest, view = SHM_SEGMENTS.pin_or_export(key, build)
            job.pinned.append(key)
            self._supersede(key[:3], key)
            job.manifests.append(manifest)
            views.append(view)
        dictionary = context.dataset.dictionary
        mark = context.dataset.dictionary_mark
        terms_key = ("terms", id(self), mark)

        def build_terms() -> Tuple[object, Sequence[object]]:
            segment, manifest = shm.export_terms(
                dictionary.terms_up_to(mark), _segment_name("dict"))
            return manifest, (segment,)

        job.terms = SHM_SEGMENTS.pin_or_export(terms_key, build_terms)
        job.pinned.append(terms_key)
        self._supersede(terms_key[:2], terms_key)

        sizes: List[int] = []
        for graph_index, view in enumerate(views):
            order, prefix = view._route(probe.base)
            lo, hi = view._range(order, prefix)
            start = lo
            while start < hi:
                stop = min(start + self.morsel_rows, hi)
                job.tasks.append((graph_index, order, start, stop))
                sizes.append(stop - start)
                start = stop
        if sizes:
            job.skew = max(sizes) / (sum(sizes) / len(sizes))
        if probe.agg_spec is not None:
            job.agg_keys, job.agg_items = probe.agg_spec
            job.agg_task = {
                "group": [variable for variable, _name in job.agg_keys],
                "items": [(kind, argument)
                          for _name, kind, argument in job.agg_items],
            }
        return job

    # -- dispatch ------------------------------------------------------------

    def _fault_directive(self) -> Optional[Tuple[str, float]]:
        """Consult the ``parallel.worker.*`` failpoints and turn one
        firing into a directive shipped inside a single morsel task
        (the worker executes the effect; the parent never sleeps)."""
        if not _faults.ACTIVE:
            return None
        for kind in ("kill", "raise", "delay"):
            point = _faults.FAILPOINTS.get(f"parallel.worker.{kind}")
            if point is not None and point._should_fire():
                return (kind, float(point.delay))
        return None

    def _run(self, job: _Job, gov) -> List[Dict[str, Any]]:
        pool = self._ensure_pool()
        control = shm.ControlFlag(_segment_name("ctl"))
        futures: List[Future] = []
        try:
            for morsel in job.tasks:
                task = {
                    "control": control.name,
                    "graphs": job.manifests,
                    "terms": job.terms,
                    "patterns": job.patterns,
                    "order": job.order,
                    "morsel": morsel,
                    "agg": job.agg_task,
                    "fault": self._fault_directive(),
                }
                futures.append(pool.submit(_worker_run, task))
            self.telemetry["morsels"] += len(futures)
            pending = set(futures)
            while pending:
                done, pending = wait(pending, timeout=_POLL_SECONDS,
                                     return_when=FIRST_COMPLETED)
                for future in done:
                    payload = future.result()
                    if gov is not None:
                        gov.charge_batches(payload["charges"])
                if gov is not None and pending:
                    gov.check()
            return [future.result() for future in futures]
        except BrokenProcessPool as error:
            control.set()
            self.telemetry["worker_deaths"] += 1
            self._discard_pool()
            raise QueryExecutionError(
                "parallel worker died mid-morsel; the worker pool will be "
                "rebuilt for the next query",
                telemetry=gov.telemetry() if gov is not None else {},
            ) from error
        except BaseException:
            control.set()
            self.telemetry["aborts"] += 1
            for future in futures:
                future.cancel()
            raise
        finally:
            control.destroy()

    # -- merge ---------------------------------------------------------------

    def _merge_solutions(self, payloads: List[Dict[str, Any]],
                         evaluator: PatternEvaluator) -> List[Dict[str, Term]]:
        """Concatenate worker rows in morsel submission order and
        decode — the exact multiset (and, over compacted generations,
        the exact order) the serial pipeline produces."""
        decode = evaluator._dict.decode
        solutions: List[Dict[str, Term]] = []
        for payload in payloads:
            rows = payload["rows"]
            if not rows:
                continue
            visible = [(slot, name)
                       for slot, name in enumerate(payload["names"])
                       if not name.startswith("#")]
            for row in rows:
                solutions.append({name: decode(row[slot])
                                  for slot, name in visible
                                  if row[slot] is not None})
        return solutions

    def _merge_aggregate(self, query: SelectQuery, job: _Job,
                         payloads: List[Dict[str, Any]],
                         evaluator: PatternEvaluator
                         ) -> List[Dict[str, Term]]:
        """Fold the workers' per-group aggregate partials exactly.

        Insertion order over submission-ordered payloads reproduces
        the serial grouping stage's first-occurrence group order; only
        group keys and per-morsel extremum candidates are ever decoded
        — the whole point of keeping aggregation id-level in the
        workers.  Each merge step replicates
        :meth:`~repro.sparql.expressions.Aggregate.apply`: COUNT adds
        counts, SUM/AVG add Python-semantics totals (exact for
        int/Decimal) with the empty-group and non-numeric cases
        producing the same bound/unbound outcomes, MIN/MAX re-compare
        one candidate id per morsel under :func:`order_key`.
        """
        from decimal import Decimal
        items = job.agg_items or []
        merged: Dict[Tuple[Optional[int], ...], List[Any]] = {}
        for payload in payloads:
            for key, states in payload["partials"]:
                into = merged.get(key)
                if into is None:
                    merged[key] = list(states)
                    continue
                for index, (_name, kind, _arg) in enumerate(items):
                    state = states[index]
                    if kind == "COUNT":
                        into[index] += state
                    elif kind in ("SUM", "AVG"):
                        into[index] = [into[index][0] + state[0],
                                       into[index][1] + state[1],
                                       into[index][2] or state[2]]
                    elif state is not None:
                        best = into[index]
                        if best is None:
                            into[index] = state
                        elif best != state:
                            decode = evaluator._dict.decode
                            left = order_key(decode(best))
                            right = order_key(decode(state))
                            if (kind == "MIN" and right < left) \
                                    or (kind == "MAX" and right > left):
                                into[index] = state
        if not query.group_by and not merged:
            # the implicit single group still yields one result row:
            # COUNT binds 0, SUM binds 0, AVG/MIN/MAX stay unbound
            merged[()] = [0 if kind == "COUNT"
                          else [0, 0, False] if kind in ("SUM", "AVG")
                          else None
                          for _name, kind, _arg in items]
        decode = evaluator._dict.decode
        results: List[Dict[str, Term]] = []
        for key, states in merged.items():
            binding: Dict[str, Term] = {}
            for cell, (_variable, out_name) in zip(key, job.agg_keys or []):
                if cell is not None:
                    binding[out_name] = decode(cell)
            for index, (name, kind, _arg) in enumerate(items):
                state = states[index]
                if kind == "COUNT":
                    binding[name] = Literal(state)
                    continue
                if kind in ("SUM", "AVG"):
                    total, count, err = state
                    if err:
                        continue  # serial path: projection stays unbound
                    if kind == "SUM":
                        binding[name] = Literal(0) if count == 0 \
                            else _numeric_literal(total)
                    elif count:
                        if isinstance(total, int):
                            binding[name] = _numeric_literal(
                                Decimal(total) / Decimal(count))
                        else:
                            binding[name] = _numeric_literal(total / count)
                    continue
                if state is not None:
                    binding[name] = decode(state)
            results.append(binding)
        return results

    # -- entry points --------------------------------------------------------

    def try_select(self, query: SelectQuery, context, source,
                   evaluator: PatternEvaluator, eval_context):
        """Run an eligible SELECT across the pool; ``None`` declines
        (the caller falls through to the serial path)."""
        from repro.sparql.evaluator import _aggregate_rows, \
            _apply_projection_expressions, _finalize_select
        probe = self._probe(query, context, source, evaluator)
        if probe.reason is not None:
            self.last_decline = probe.reason
            self.telemetry["declined"] += 1
            return None
        self.telemetry["queries"] += 1
        gov = getattr(context, "governor", None)
        job = self._export_job(query, context, probe)
        try:
            payloads = self._run(job, gov)
            if job.agg_task is not None:
                self.telemetry["agg_pushdown"] += 1
                result_bindings = self._merge_aggregate(
                    query, job, payloads, evaluator)
            else:
                solutions = self._merge_solutions(payloads, evaluator)
                if query.is_aggregate_query:
                    result_bindings = _aggregate_rows(
                        query, solutions, eval_context)
                else:
                    result_bindings = solutions
                    for row in result_bindings:
                        _apply_projection_expressions(
                            query, row, eval_context)
            return _finalize_select(query, result_bindings, eval_context)
        finally:
            for key in job.pinned:
                SHM_SEGMENTS.unpin(key)

    def describe(self, query, dataset) -> str:
        """The EXPLAIN ``parallel:`` line for ``query`` — either the
        planned fan-out (workers, morsels, estimated rows, skew) or
        the reason the query would stay serial."""
        if not isinstance(query, SelectQuery):
            return "parallel: off (only SELECT queries parallelize)"
        if dataset is None:
            return "parallel: off (no dataset)"
        snapshot = dataset if isinstance(dataset, DatasetSnapshot) \
            else dataset.snapshot()
        context = DatasetContext(snapshot).scoped(
            query.from_graphs, query.from_named)
        source = context.default_source()
        if STREAMING_ENABLED and would_stream(query, source):
            return "parallel: off (query streams)"
        evaluator = PatternEvaluator(context)
        probe = self._probe(query, context, source, evaluator)
        if probe.reason is not None:
            return f"parallel: off ({probe.reason})"
        sizes: List[int] = []
        for count in probe.counts:
            remaining = count
            while remaining > 0:
                sizes.append(min(remaining, self.morsel_rows))
                remaining -= self.morsel_rows
        skew = max(sizes) / (sum(sizes) / len(sizes)) if sizes else 1.0
        line = (f"parallel: workers={self.workers} morsels={len(sizes)} "
                f"est_rows={probe.est} skew={skew:.2f}")
        if probe.agg_spec is not None:
            keys, items = probe.agg_spec
            spec = ",".join(
                f"{kind}({argument if argument is not None else '*'})"
                for _name, kind, argument in items)
            if keys:
                spec += " by " + ",".join(var for var, _name in keys)
            line += f" agg={spec}"
        return line

    def __repr__(self) -> str:
        return (f"<ParallelExecutor workers={self.workers} "
                f"morsel_rows={self.morsel_rows} "
                f"queries={self.telemetry['queries']}>")
