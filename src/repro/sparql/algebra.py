"""Logical algebra for SPARQL queries.

The parser lowers query text into a tree of these nodes; the evaluator
interprets the tree against a graph source.  The node set covers the
SPARQL 1.1 algebra fragment used by QB2OLAP's generated queries plus
what the test suite exercises:

``BGP``, ``Join``, ``LeftJoin`` (OPTIONAL), ``Union``, ``Minus``,
``Filter``, ``Extend`` (BIND), ``ValuesNode``, ``GraphNode``,
``SubSelect``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.rdf.terms import IRI, Term
from repro.sparql.expressions import Aggregate, Expression
from repro.sparql.paths import Path

# ---------------------------------------------------------------------------
# Variables and triple patterns
# ---------------------------------------------------------------------------


class Var:
    """A SPARQL variable.  Not an RDF term — it only appears in patterns."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __repr__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Term, Var]


class TriplePatternNode:
    """One triple pattern: each position is a term or a variable."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: PatternTerm, predicate: PatternTerm,
                 obj: PatternTerm) -> None:
        self.subject = subject
        self.predicate = predicate
        self.object = obj

    def positions(self) -> Tuple[PatternTerm, PatternTerm, PatternTerm]:
        return (self.subject, self.predicate, self.object)

    def variables(self) -> set[str]:
        return {p.name for p in self.positions() if isinstance(p, Var)}

    def __repr__(self) -> str:
        return (f"TriplePatternNode({self.subject!r}, {self.predicate!r}, "
                f"{self.object!r})")


class PathPatternNode:
    """A triple pattern whose predicate position is a property path.

    Only non-decomposable paths reach the algebra (the parser rewrites
    sequences into plain conjunctions and bare links into
    :class:`TriplePatternNode`), so evaluation cost stays visible in the
    plan.
    """

    __slots__ = ("subject", "path", "object")

    def __init__(self, subject: PatternTerm, path: Path,
                 obj: PatternTerm) -> None:
        self.subject = subject
        self.path = path
        self.object = obj

    def endpoints(self) -> Tuple[PatternTerm, PatternTerm]:
        return (self.subject, self.object)

    def variables(self) -> set[str]:
        return {p.name for p in self.endpoints() if isinstance(p, Var)}

    def __repr__(self) -> str:
        return (f"PathPatternNode({self.subject!r}, "
                f"{self.path.to_sparql()}, {self.object!r})")


# ---------------------------------------------------------------------------
# Pattern operators
# ---------------------------------------------------------------------------


class PatternNode:
    """Base class for algebra operators."""

    def variables(self) -> set[str]:
        """All variables this pattern can bind."""
        raise NotImplementedError


class BGP(PatternNode):
    """A basic graph pattern: a conjunction of triple and path patterns."""

    def __init__(self, patterns: Sequence[Union[TriplePatternNode,
                                                PathPatternNode]]) -> None:
        self.patterns = list(patterns)

    def variables(self) -> set[str]:
        result: set[str] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result

    def __repr__(self) -> str:
        return f"BGP({len(self.patterns)} patterns)"


class Join(PatternNode):
    """Join: solutions compatible across both children."""
    def __init__(self, left: PatternNode, right: PatternNode) -> None:
        self.left = left
        self.right = right

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"Join({self.left!r}, {self.right!r})"


class LeftJoin(PatternNode):
    """OPTIONAL: keep left rows, extend with right when compatible."""

    def __init__(self, left: PatternNode, right: PatternNode,
                 condition: Optional[Expression] = None) -> None:
        self.left = left
        self.right = right
        self.condition = condition

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"LeftJoin({self.left!r}, {self.right!r})"


class Union(PatternNode):
    """UNION: solutions of either branch."""
    def __init__(self, left: PatternNode, right: PatternNode) -> None:
        self.left = left
        self.right = right

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"Union({self.left!r}, {self.right!r})"


class Minus(PatternNode):
    """MINUS: left solutions not excluded by compatible right ones."""
    def __init__(self, left: PatternNode, right: PatternNode) -> None:
        self.left = left
        self.right = right

    def variables(self) -> set[str]:
        return self.left.variables()

    def __repr__(self) -> str:
        return f"Minus({self.left!r}, {self.right!r})"


class Filter(PatternNode):
    """FILTER: keep child solutions satisfying the condition."""
    def __init__(self, condition: Expression, child: PatternNode) -> None:
        self.condition = condition
        self.child = child

    def variables(self) -> set[str]:
        return self.child.variables()

    def __repr__(self) -> str:
        return f"Filter({self.condition!r}, {self.child!r})"


class Extend(PatternNode):
    """BIND(expr AS ?var) over a child pattern."""

    def __init__(self, child: PatternNode, var: str,
                 expression: Expression) -> None:
        self.child = child
        self.var = var
        self.expression = expression

    def variables(self) -> set[str]:
        return self.child.variables() | {self.var}

    def __repr__(self) -> str:
        return f"Extend({self.child!r}, ?{self.var})"


class ValuesNode(PatternNode):
    """Inline data: VALUES (?a ?b) { (1 2) (3 4) }.

    ``rows`` entries use ``None`` for UNDEF.
    """

    def __init__(self, variables_: Sequence[str],
                 rows: Sequence[Sequence[Optional[Term]]]) -> None:
        self.vars = list(variables_)
        self.rows = [list(row) for row in rows]

    def variables(self) -> set[str]:
        return set(self.vars)

    def __repr__(self) -> str:
        return f"ValuesNode({self.vars!r}, {len(self.rows)} rows)"


class GraphNode(PatternNode):
    """GRAPH <iri> { ... } or GRAPH ?g { ... }."""

    def __init__(self, name: Union[IRI, Var], child: PatternNode) -> None:
        self.name = name
        self.child = child

    def variables(self) -> set[str]:
        result = set(self.child.variables())
        if isinstance(self.name, Var):
            result.add(self.name.name)
        return result

    def __repr__(self) -> str:
        return f"GraphNode({self.name!r}, {self.child!r})"


class Empty(PatternNode):
    """The empty group pattern ``{}`` — one empty solution."""

    def variables(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return "Empty()"


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


class ProjectionItem:
    """One SELECT item: a plain variable or ``(expr AS ?alias)``."""

    def __init__(self, variable: Optional[str] = None,
                 expression: Optional[Expression] = None,
                 alias: Optional[str] = None) -> None:
        if variable is None and (expression is None or alias is None):
            raise ValueError("projection needs a variable or expr AS alias")
        self.variable = variable
        self.expression = expression
        self.alias = alias

    @property
    def name(self) -> str:
        """The output column name."""
        return self.alias if self.alias is not None else self.variable  # type: ignore[return-value]

    def __repr__(self) -> str:
        if self.variable is not None:
            return f"?{self.variable}"
        return f"({self.expression!r} AS ?{self.alias})"


class SelectQuery:
    """A parsed SELECT query ready for evaluation."""

    def __init__(self,
                 projection: Optional[List[ProjectionItem]],
                 pattern: PatternNode,
                 distinct: bool = False,
                 reduced: bool = False,
                 group_by: Optional[List[Expression]] = None,
                 group_aliases: Optional[Dict[int, str]] = None,
                 having: Optional[List[Expression]] = None,
                 order_by: Optional[List[Tuple[Expression, bool]]] = None,
                 limit: Optional[int] = None,
                 offset: int = 0,
                 prefixes: Optional[Dict[str, str]] = None,
                 from_graphs: Optional[List[IRI]] = None,
                 from_named: Optional[List[IRI]] = None) -> None:
        #: ``None`` projection means ``SELECT *``.
        self.projection = projection
        self.pattern = pattern
        self.distinct = distinct
        self.reduced = reduced
        self.group_by = group_by or []
        #: maps index in group_by → alias var name (GROUP BY (expr AS ?v))
        self.group_aliases = group_aliases or {}
        self.having = having or []
        self.order_by = order_by or []
        self.limit = limit
        self.offset = offset
        self.prefixes = prefixes or {}
        self.from_graphs = from_graphs or []
        self.from_named = from_named or []

    @property
    def is_aggregate_query(self) -> bool:
        from repro.sparql.expressions import contains_aggregate
        if self.group_by:
            return True
        if self.projection:
            return any(
                item.expression is not None
                and contains_aggregate(item.expression)
                for item in self.projection)
        return False

    def output_names(self) -> List[str]:
        if self.projection is None:
            return sorted(self.pattern.variables())
        return [item.name for item in self.projection]

    def __repr__(self) -> str:
        return f"SelectQuery({self.output_names()})"


class AskQuery:
    """A parsed ASK query."""

    def __init__(self, pattern: PatternNode,
                 prefixes: Optional[Dict[str, str]] = None,
                 from_graphs: Optional[List[IRI]] = None,
                 from_named: Optional[List[IRI]] = None) -> None:
        self.pattern = pattern
        self.prefixes = prefixes or {}
        self.from_graphs = from_graphs or []
        self.from_named = from_named or []

    def __repr__(self) -> str:
        return "AskQuery()"


class ConstructQuery:
    """A parsed CONSTRUCT query: a triple template over a WHERE pattern.

    ``CONSTRUCT WHERE { bgp }`` short form is normalized at parse time
    by copying the BGP into the template.
    """

    def __init__(self, template: List[TriplePatternNode],
                 pattern: PatternNode,
                 prefixes: Optional[Dict[str, str]] = None,
                 from_graphs: Optional[List[IRI]] = None,
                 limit: Optional[int] = None,
                 offset: int = 0,
                 from_named: Optional[List[IRI]] = None) -> None:
        self.template = list(template)
        self.pattern = pattern
        self.prefixes = prefixes or {}
        self.from_graphs = from_graphs or []
        self.from_named = from_named or []
        self.limit = limit
        self.offset = offset

    def __repr__(self) -> str:
        return f"ConstructQuery({len(self.template)} template triples)"


class DescribeQuery:
    """A parsed DESCRIBE query.

    ``resources`` holds the explicitly named IRIs; ``variables`` the
    projected variables whose bindings (from ``pattern``) are described.
    ``star`` marks ``DESCRIBE *``.
    """

    def __init__(self,
                 resources: Optional[List[IRI]] = None,
                 variables: Optional[List[str]] = None,
                 pattern: Optional[PatternNode] = None,
                 star: bool = False,
                 prefixes: Optional[Dict[str, str]] = None,
                 from_graphs: Optional[List[IRI]] = None,
                 from_named: Optional[List[IRI]] = None) -> None:
        self.resources = resources or []
        self.variables = variables or []
        self.pattern = pattern
        self.star = star
        self.prefixes = prefixes or {}
        self.from_graphs = from_graphs or []
        self.from_named = from_named or []

    def __repr__(self) -> str:
        return (f"DescribeQuery({len(self.resources)} resources, "
                f"{len(self.variables)} variables)")


# NOTE: the algebra class ``Union`` shadows ``typing.Union`` at this
# point in the module, so the alias is written with PEP 604 syntax.
Query = SelectQuery | AskQuery | ConstructQuery | DescribeQuery


def collect_triple_patterns(node: PatternNode) -> List[TriplePatternNode]:
    """All plain triple patterns anywhere under ``node`` (for analysis)."""
    result: List[TriplePatternNode] = []
    stack: List[PatternNode] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, BGP):
            result.extend(p for p in current.patterns
                          if isinstance(p, TriplePatternNode))
        elif isinstance(current, (Join, LeftJoin, Union, Minus)):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, (Filter, Extend, GraphNode)):
            stack.append(current.child)
        elif isinstance(current, SubSelectNode):
            stack.append(current.query.pattern)
    return result


def collect_path_patterns(node: PatternNode) -> List[PathPatternNode]:
    """All path patterns anywhere under ``node`` (for analysis/tests)."""
    result: List[PathPatternNode] = []
    stack: List[PatternNode] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, BGP):
            result.extend(p for p in current.patterns
                          if isinstance(p, PathPatternNode))
        elif isinstance(current, (Join, LeftJoin, Union, Minus)):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, (Filter, Extend, GraphNode)):
            stack.append(current.child)
        elif isinstance(current, SubSelectNode):
            stack.append(current.query.pattern)
    return result


class SubSelectNode(PatternNode):
    """A nested SELECT used as a group graph pattern."""

    def __init__(self, query: SelectQuery) -> None:
        self.query = query

    def variables(self) -> set[str]:
        return set(self.query.output_names())

    def __repr__(self) -> str:
        return f"SubSelectNode({self.query!r})"
