"""A local SPARQL endpoint facade.

:class:`LocalEndpoint` plays the role of the Virtuoso 7 instance in the
paper's architecture (Fig. 1): the QB graph, the generated QB4OLAP
schema graph and the level-instance graph all live here, and every
module talks to the data exclusively through ``select`` / ``ask`` /
``update`` calls carrying SPARQL text.

The endpoint also reproduces two operational aspects the paper leans on:

* a **query log with timings** — the benchmarks read it to report how
  many SPARQL queries each enrichment phase issued;
* optional **result-size limits** (``EndpointLimits``) emulating the
  public-endpoint restrictions that motivate the Querying module's
  alternative translation.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.rdf.concurrency import CONCURRENCY
from repro.rdf.errors import TermError
from repro.rdf.graph import Dataset, DatasetSnapshot, Graph
from repro.rdf.terms import BNode, IRI, Literal, Term, Triple
from repro.sparql.algebra import (
    AskQuery,
    ConstructQuery,
    DescribeQuery,
    SelectQuery,
    Var,
)
from repro.sparql.errors import (
    EndpointError,
    EndpointOverloaded,
    QueryCancelled,
    QueryExecutionError,
    QueryTimeout,
    ResourceExhausted,
    SPARQLError,
    UpdateError,
)
from repro.sparql.governor import (
    GOVERNOR,
    GovernorContext,
    QueryGovernor,
    QueryLimits,
)
from repro.testing import faults as _faults
from repro.sparql.evaluator import (
    STREAM_TELEMETRY,
    DatasetContext,
    PatternEvaluator,
    evaluate_ask,
    evaluate_construct,
    evaluate_describe,
    evaluate_select,
)
from repro.sparql.parser import (
    ClearOp,
    CreateOp,
    DeleteDataOp,
    DropOp,
    InsertDataOp,
    ModifyOp,
    Quad,
    UpdateOperation,
    parse_query,
    parse_update,
)
from repro.sparql.results import ResultTable


@dataclass
class EndpointLimits:
    """Operational limits emulating public SPARQL endpoints.

    ``max_result_rows``: result sets longer than this raise
    :class:`EndpointError` (as Virtuoso's default 2^16 row cap and many
    public endpoints do).  ``None`` disables the check.

    ``forbid_having``: reject queries containing ``HAVING`` — several
    public endpoints of the era had missing or broken ``HAVING``
    support, which is one of the "typical limitations" the Querying
    module's alternative translation works around.
    """

    max_result_rows: Optional[int] = None
    forbid_having: bool = False


@dataclass
class QueryLogEntry:
    """One executed request, for statistics and benchmark reporting."""

    kind: str  # "select" | "ask" | "update"
    text: str
    seconds: float
    rows: int = 0


@dataclass
class EndpointStatistics:
    selects: int = 0
    asks: int = 0
    updates: int = 0
    triples_inserted: int = 0
    triples_deleted: int = 0
    total_seconds: float = 0.0
    parse_cache_hits: int = 0
    parse_cache_misses: int = 0
    #: SELECT evaluations served by the streaming LIMIT pipeline
    #: (nested sub-SELECTs count separately), and the batches /
    #: solution rows it pulled — early termination shows up here as
    #: row counts far below the materialized result sizes
    streamed_selects: int = 0
    streamed_batches: int = 0
    streamed_rows: int = 0
    #: the dataset snapshot epoch the most recent read query was
    #: pinned to (sum of member-graph epochs; ``None`` before the
    #: first query) — the QL execution report copies it out
    last_snapshot_epoch: Optional[int] = None
    #: governor counters (this endpoint only; the process-wide view is
    #: :data:`repro.sparql.governor.GOVERNOR`): requests admitted by
    #: the slot controller, the subset that waited in the bounded
    #: queue, requests shed with ``EndpointOverloaded``, governed
    #: verdicts (deadline / budget / cancellation), partial results
    #: served under ``allow_partial``, and raw engine exceptions
    #: mapped into ``QueryExecutionError``
    governor_admitted: int = 0
    governor_queued: int = 0
    governor_shed: int = 0
    governor_timeouts: int = 0
    governor_budget_kills: int = 0
    governor_cancelled: int = 0
    governor_truncated_serves: int = 0
    governor_internal_errors: int = 0

    def reset(self) -> None:
        self.selects = 0
        self.asks = 0
        self.updates = 0
        self.triples_inserted = 0
        self.triples_deleted = 0
        self.total_seconds = 0.0
        self.parse_cache_hits = 0
        self.parse_cache_misses = 0
        self.streamed_selects = 0
        self.streamed_batches = 0
        self.streamed_rows = 0
        self.last_snapshot_epoch = None
        self.governor_admitted = 0
        self.governor_queued = 0
        self.governor_shed = 0
        self.governor_timeouts = 0
        self.governor_budget_kills = 0
        self.governor_cancelled = 0
        self.governor_truncated_serves = 0
        self.governor_internal_errors = 0


class LocalEndpoint:
    """An in-process SPARQL 1.1 endpoint over a named-graph dataset.

    The read path (:meth:`select` / :meth:`ask` / :meth:`construct` /
    :meth:`describe` / :meth:`query`) is **thread-safe and
    snapshot-isolated**: each request pins a
    :class:`~repro.rdf.graph.DatasetSnapshot` at its current epoch and
    evaluates entirely against that frozen view, so parallel SELECTs
    never block each other and a concurrent :meth:`update` /
    :meth:`insert_triples` can never tear a streamed result — the next
    query simply pins the next epoch.  The pinned epoch is recorded on
    the returned :class:`ResultTable` (``snapshot_epoch``) and in
    :attr:`EndpointStatistics.last_snapshot_epoch`; process-wide
    reader/writer counters live in :data:`repro.rdf.concurrency.CONCURRENCY`
    and are rendered by :meth:`explain`.
    """

    def __init__(self, dataset: Optional[Dataset] = None,
                 limits: Optional[EndpointLimits] = None,
                 default_as_union: bool = True,
                 keep_query_log: bool = False,
                 governor: Optional[QueryGovernor] = None,
                 parallel: Union[bool, int, None] = None,
                 parallel_threshold: Optional[int] = None) -> None:
        self.dataset = dataset or Dataset()
        self.limits = limits or EndpointLimits()
        #: optional resource governance: default per-query limits plus
        #: admission control (see :mod:`repro.sparql.governor`); with
        #: ``None`` the read path runs exactly as before, and per-call
        #: ``limits=`` arguments still govern individual queries
        self.governor = governor
        #: optional morsel-driven parallel execution: ``parallel=N``
        #: builds an N-worker pool, ``parallel=True`` picks the
        #: default width; eligible SELECTs above the auto-enable
        #: threshold fan out (see :mod:`repro.sparql.parallel`), and
        #: everything else runs the unchanged serial path.  Call
        #: :meth:`close` (or use the endpoint as a context manager)
        #: to release the pool and its shared-memory segments.
        self._parallel: Optional["ParallelExecutor"] = None
        if parallel:
            from repro.sparql.parallel import (AUTO_THRESHOLD,
                                               DEFAULT_WORKERS,
                                               ParallelExecutor)
            workers = DEFAULT_WORKERS if parallel is True else int(parallel)
            threshold = AUTO_THRESHOLD if parallel_threshold is None \
                else int(parallel_threshold)
            self._parallel = ParallelExecutor(workers=workers,
                                              threshold=threshold)
        self.default_as_union = default_as_union
        self.keep_query_log = keep_query_log
        self.query_log: List[QueryLogEntry] = []
        self.statistics = EndpointStatistics()
        self._fresh = itertools.count(1)
        #: per-query-text LRU of parsed queries; repeated query texts
        #: (the common OLAP workload) skip the parser entirely, and the
        #: parsed tree's BGP nodes keep their cached plan signatures.
        self._parse_cache: "OrderedDict[str, object]" = OrderedDict()
        self._parse_cache_size = 256
        #: guards the parse cache's LRU reordering and the statistics
        #: counters (both shared mutable state under parallel queries);
        #: never held while a query evaluates.
        self._stats_lock = threading.Lock()
        #: per-thread flag: query() dispatch suppresses the inner
        #: parse-count its re-read would cause (thread-local, since
        #: parallel requests must not suppress each other's counts)
        self._tls = threading.local()

    def _parsed(self, query_text: str):
        """Parse ``query_text`` through the endpoint's LRU parse cache.

        Hit/miss statistics count once per request: :meth:`query`'s
        dispatch suppresses the inner re-read it causes.  Parsing a
        miss happens outside the lock; two threads racing on the same
        new text both parse, and the second insert harmlessly wins.
        """
        count = not getattr(self._tls, "suppress_parse_count", False)
        with self._stats_lock:
            cached = self._parse_cache.get(query_text)
            if cached is not None:
                self._parse_cache.move_to_end(query_text)
                if count:
                    self.statistics.parse_cache_hits += 1
                return cached
        if _faults.ACTIVE:
            _faults.fire("endpoint.parse")
        query = parse_query(query_text)
        with self._stats_lock:
            if count:
                self.statistics.parse_cache_misses += 1
            self._parse_cache[query_text] = query
            while len(self._parse_cache) > self._parse_cache_size:
                self._parse_cache.popitem(last=False)
        return query

    def _pin(self) -> DatasetSnapshot:
        """Pin the dataset snapshot one read request evaluates against."""
        snapshot = self.dataset.snapshot()
        with self._stats_lock:
            self.statistics.last_snapshot_epoch = snapshot.epoch
        return snapshot

    # -- governance --------------------------------------------------------------

    def _governed(self, limits: Optional[QueryLimits]) -> Optional[GovernorContext]:
        """Build the per-request :class:`GovernorContext`, or ``None``.

        Per-call ``limits`` merge field-by-field over the endpoint
        governor's defaults; a request with no effective limit at all
        runs the exact pre-governor fast path (no context object, no
        batch-boundary checks).
        """
        if self.governor is not None:
            effective = self.governor.effective(limits)
        else:
            effective = limits
        if effective is None or effective.unlimited:
            return None
        return GovernorContext(effective)

    @contextmanager
    def _admitted(self, query_text: str):
        """Take an admission slot for one read request (if the endpoint
        has an :class:`AdmissionController`); sheds with
        :class:`EndpointOverloaded` when slots and queue are full."""
        admission = self.governor.admission if self.governor else None
        if admission is None:
            yield
            return
        try:
            slot = admission.admit()
        except EndpointOverloaded as error:
            if error.query is None:
                error.query = query_text
            GOVERNOR.record("shed")
            with self._stats_lock:
                self.statistics.governor_shed += 1
            raise
        GOVERNOR.record("admitted")
        if slot.waited:
            GOVERNOR.record("queued")
        with self._stats_lock:
            self.statistics.governor_admitted += 1
            if slot.waited:
                self.statistics.governor_queued += 1
        try:
            yield
        finally:
            slot.release()

    @contextmanager
    def _mapped_errors(self, query_text: str,
                       gov: Optional[GovernorContext] = None):
        """Map everything escaping one read evaluation into the typed
        taxonomy.

        Governed verdicts pass through (with the query text attached
        and their counters bumped); any *raw* engine exception — a
        ``KeyError`` from a malformed plan, a ``RecursionError`` from a
        pathological expression — is wrapped into
        :class:`QueryExecutionError` so callers always catch
        :class:`SPARQLError` subclasses, never bare internals.
        """
        try:
            yield
        except EndpointError as error:
            if error.query is None:
                error.query = query_text
            counter = None
            if isinstance(error, QueryTimeout):
                counter = ("timeouts", "governor_timeouts")
            elif isinstance(error, ResourceExhausted):
                counter = ("budget_kills", "governor_budget_kills")
            elif isinstance(error, QueryCancelled):
                counter = ("cancelled", "governor_cancelled")
            if counter is not None:
                GOVERNOR.record(counter[0])
                with self._stats_lock:
                    setattr(self.statistics, counter[1],
                            getattr(self.statistics, counter[1]) + 1)
            raise
        except SPARQLError:
            raise  # parse/expression errors are already typed
        # This handler IS the sanctioned taxonomy boundary: the one
        # place untyped engine failures become QueryExecutionError.
        except Exception as error:  # repro: allow[error-taxonomy]
            GOVERNOR.record("mapped_internal_errors")
            with self._stats_lock:
                self.statistics.governor_internal_errors += 1
            raise QueryExecutionError(
                f"internal error evaluating query: "
                f"{type(error).__name__}: {error}",
                query=query_text,
                telemetry=gov.telemetry() if gov is not None else {},
            ) from error

    def _served_truncated(self, gov: Optional[GovernorContext],
                          table: ResultTable) -> None:
        """Count a partial serve and flag the table if the governor
        truncated this streamable query under ``allow_partial``."""
        if gov is not None and gov.truncated:
            table.truncated = True
            GOVERNOR.record("truncated_serves")
            with self._stats_lock:
                self.statistics.governor_truncated_serves += 1

    # -- read path -------------------------------------------------------------

    def select(self, query_text: str,
               limits: Optional[QueryLimits] = None) -> ResultTable:
        """Run a SELECT query and return its result table.

        The query is pinned to one dataset snapshot for its whole
        evaluation (every streamed batch included), runs without any
        lock, and the table it returns carries the pinned epoch as
        ``table.snapshot_epoch``.

        ``limits`` govern this call (merged over the endpoint
        governor's defaults when one is configured): deadline, row and
        memory budgets raise the typed taxonomy of
        :mod:`repro.sparql.errors` — or, with ``allow_partial`` on a
        streamable query, return the rows gathered so far flagged
        ``table.truncated``.
        """
        import re as _re
        if self.limits.forbid_having and _re.search(
                r"\bHAVING\b", query_text, _re.IGNORECASE):
            raise EndpointError(
                "this endpoint does not support HAVING clauses")
        started = time.perf_counter()
        with self._mapped_errors(query_text):
            query = self._parsed(query_text)
        if not isinstance(query, SelectQuery):
            raise EndpointError("select() requires a SELECT query")
        with self._admitted(query_text):
            gov = self._governed(limits)
            snapshot = self._pin()
            context = DatasetContext(snapshot, self.default_as_union,
                                     governor=gov, parallel=self._parallel)
            stream_before = STREAM_TELEMETRY.snapshot()
            CONCURRENCY.reader_enter()
            try:
                with self._mapped_errors(query_text, gov):
                    table = evaluate_select(query, context)
            finally:
                CONCURRENCY.reader_exit()
        self._served_truncated(gov, table)
        table.snapshot_epoch = snapshot.epoch
        elapsed = time.perf_counter() - started
        stream_after = STREAM_TELEMETRY.snapshot()
        with self._stats_lock:
            self.statistics.selects += 1
            self.statistics.total_seconds += elapsed
            self.statistics.streamed_selects += (
                stream_after["queries"] - stream_before["queries"])
            self.statistics.streamed_batches += (
                stream_after["batches"] - stream_before["batches"])
            self.statistics.streamed_rows += (
                stream_after["rows"] - stream_before["rows"])
        self._log("select", query_text, elapsed, len(table))
        if (self.limits.max_result_rows is not None
                and len(table) > self.limits.max_result_rows):
            raise EndpointError(
                f"result size {len(table)} exceeds endpoint limit "
                f"{self.limits.max_result_rows}")
        return table

    def ask(self, query_text: str,
            limits: Optional[QueryLimits] = None) -> bool:
        """Run an ASK query (snapshot-pinned like :meth:`select`)."""
        started = time.perf_counter()
        with self._mapped_errors(query_text):
            query = self._parsed(query_text)
        if not isinstance(query, AskQuery):
            raise EndpointError("ask() requires an ASK query")
        with self._admitted(query_text):
            gov = self._governed(limits)
            context = DatasetContext(self._pin(), self.default_as_union,
                                     governor=gov)
            CONCURRENCY.reader_enter()
            try:
                with self._mapped_errors(query_text, gov):
                    result = evaluate_ask(query, context)
            finally:
                CONCURRENCY.reader_exit()
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self.statistics.asks += 1
            self.statistics.total_seconds += elapsed
        self._log("ask", query_text, elapsed, int(result))
        return result

    def construct(self, query_text: str,
                  limits: Optional[QueryLimits] = None) -> Graph:
        """Run a CONSTRUCT query and return the built graph."""
        started = time.perf_counter()
        with self._mapped_errors(query_text):
            query = self._parsed(query_text)
        if not isinstance(query, ConstructQuery):
            raise EndpointError("construct() requires a CONSTRUCT query")
        with self._admitted(query_text):
            gov = self._governed(limits)
            context = DatasetContext(self._pin(), self.default_as_union,
                                     governor=gov)
            CONCURRENCY.reader_enter()
            try:
                with self._mapped_errors(query_text, gov):
                    graph = evaluate_construct(query, context)
            finally:
                CONCURRENCY.reader_exit()
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self.statistics.selects += 1
            self.statistics.total_seconds += elapsed
        self._log("construct", query_text, elapsed, len(graph))
        return graph

    def describe(self, query_text: str,
                 limits: Optional[QueryLimits] = None) -> Graph:
        """Run a DESCRIBE query and return the description graph."""
        started = time.perf_counter()
        with self._mapped_errors(query_text):
            query = self._parsed(query_text)
        if not isinstance(query, DescribeQuery):
            raise EndpointError("describe() requires a DESCRIBE query")
        with self._admitted(query_text):
            gov = self._governed(limits)
            context = DatasetContext(self._pin(), self.default_as_union,
                                     governor=gov)
            CONCURRENCY.reader_enter()
            try:
                with self._mapped_errors(query_text, gov):
                    graph = evaluate_describe(query, context)
            finally:
                CONCURRENCY.reader_exit()
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self.statistics.selects += 1
            self.statistics.total_seconds += elapsed
        self._log("describe", query_text, elapsed, len(graph))
        return graph

    def query(self, query_text: str,
              limits: Optional[QueryLimits] = None):
        """Run any read query; dispatches on the parsed query form.

        Returns a :class:`ResultTable` for SELECT, ``bool`` for ASK and
        a :class:`Graph` for CONSTRUCT/DESCRIBE — mirroring what a
        protocol client gets back from a real endpoint.  Safe to call
        from many threads at once: each dispatch suppresses only its
        own thread's duplicate parse count.  ``limits`` pass through to
        the dispatched method.
        """
        with self._mapped_errors(query_text):
            query = self._parsed(query_text)
        self._tls.suppress_parse_count = True
        try:
            if isinstance(query, SelectQuery):
                return self.select(query_text, limits=limits)
            if isinstance(query, AskQuery):
                return self.ask(query_text, limits=limits)
            if isinstance(query, ConstructQuery):
                return self.construct(query_text, limits=limits)
            return self.describe(query_text, limits=limits)
        finally:
            self._tls.suppress_parse_count = False

    # -- write path --------------------------------------------------------------

    def update(self, update_text: str) -> int:
        """Run an update request; returns net triples touched."""
        started = time.perf_counter()
        operations = parse_update(update_text)
        touched = 0
        for operation in operations:
            touched += self._apply(operation)
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self.statistics.updates += 1
            self.statistics.total_seconds += elapsed
        self._log("update", update_text, elapsed, touched)
        return touched

    def insert_triples(self, triples: Iterable[Triple],
                       graph: Optional[Union[IRI, str]] = None) -> int:
        """Directly load triples (bulk path used by data generators)."""
        target = self.dataset.graph(graph) if graph is not None \
            else self.dataset.default
        before = len(target)
        target.add_all(triples)  # one atomic batch w.r.t. snapshots
        added = len(target) - before
        with self._stats_lock:
            self.statistics.triples_inserted += added
        return added

    # -- update operations ---------------------------------------------------------

    def _apply(self, operation: UpdateOperation) -> int:
        if isinstance(operation, InsertDataOp):
            return self._insert_quads(operation.quads, {})
        if isinstance(operation, DeleteDataOp):
            return self._delete_quads(operation.quads, {})
        if isinstance(operation, ClearOp) or isinstance(operation, DropOp):
            return self._clear(operation.target)
        if isinstance(operation, CreateOp):
            self.dataset.graph(operation.graph)
            return 0
        if isinstance(operation, ModifyOp):
            return self._modify(operation)
        raise UpdateError(f"unsupported update operation {operation!r}")

    def _clear(self, target: Union[IRI, str]) -> int:
        if isinstance(target, IRI):
            graph = self.dataset.graph(target)
            removed = len(graph)
            graph.clear()
        elif target == "DEFAULT":
            removed = len(self.dataset.default)
            self.dataset.default.clear()
        elif target == "NAMED":
            removed = sum(len(g) for g in self.dataset.graphs())
            for graph in list(self.dataset.graphs()):
                graph.clear()
        else:  # ALL
            removed = len(self.dataset)
            self.dataset.default.clear()
            for graph in list(self.dataset.graphs()):
                graph.clear()
        with self._stats_lock:
            self.statistics.triples_deleted += removed
        return removed

    def _modify(self, operation: ModifyOp) -> int:
        context = DatasetContext(self.dataset, self.default_as_union)
        evaluator = PatternEvaluator(context)
        if operation.with_graph is not None:
            source = context.named_source(operation.with_graph)
        else:
            source = context.default_source()
        solutions = evaluator.solutions(operation.pattern, source)
        touched = 0
        for solution in solutions:
            touched += self._delete_quads(
                operation.delete_quads, solution,
                default_graph=operation.with_graph)
        for solution in solutions:
            touched += self._insert_quads(
                operation.insert_quads, solution,
                default_graph=operation.with_graph)
        return touched

    def _instantiate(self, quad: Quad, binding: Dict[str, Term],
                     bnode_map: Dict[str, BNode]) -> Optional[Tuple]:
        graph_iri, s, p, o = quad
        terms: List[Term] = []
        for position in (s, p, o):
            if isinstance(position, Var):
                if position.name.startswith("_:"):
                    label = position.name[2:]
                    if label not in bnode_map:
                        bnode_map[label] = BNode()
                    terms.append(bnode_map[label])
                    continue
                value = binding.get(position.name)
                if value is None:
                    return None  # unbound var: skip this instantiation
                terms.append(value)
            else:
                terms.append(position)
        return graph_iri, terms[0], terms[1], terms[2]

    def _insert_quads(self, quads: List[Quad], binding: Dict[str, Term],
                      default_graph: Optional[IRI] = None) -> int:
        added = 0
        bnode_map: Dict[str, BNode] = {}
        for quad in quads:
            concrete = self._instantiate(quad, binding, bnode_map)
            if concrete is None:
                continue
            graph_iri, s, p, o = concrete
            target_iri = graph_iri or default_graph
            target = self.dataset.graph(target_iri) if target_iri is not None \
                else self.dataset.default
            before = len(target)
            try:
                target.add(s, p, o)
            except (TermError, TypeError, ValueError) as error:
                raise UpdateError(f"cannot insert quad: {error}") from error
            added += len(target) - before
        with self._stats_lock:
            self.statistics.triples_inserted += added
        return added

    def _delete_quads(self, quads: List[Quad], binding: Dict[str, Term],
                      default_graph: Optional[IRI] = None) -> int:
        removed = 0
        bnode_map: Dict[str, BNode] = {}
        for quad in quads:
            concrete = self._instantiate(quad, binding, bnode_map)
            if concrete is None:
                continue
            graph_iri, s, p, o = concrete
            target_iri = graph_iri or default_graph
            if target_iri is not None:
                removed += self.dataset.graph(target_iri).remove((s, p, o))
            else:
                removed += self.dataset.default.remove((s, p, o))
                for graph in self.dataset.graphs():
                    removed += graph.remove((s, p, o))
        with self._stats_lock:
            self.statistics.triples_deleted += removed
        return removed

    # -- persistence -------------------------------------------------------------

    def dump_trig(self) -> str:
        """Snapshot the whole endpoint (all named graphs) as TriG."""
        from repro.rdf.trig import serialize_trig
        return serialize_trig(self.dataset)

    def load_trig(self, text: str) -> int:
        """Restore/merge a TriG snapshot into this endpoint's dataset.

        Returns the number of triples added.
        """
        from repro.rdf.trig import parse_trig
        before = len(self.dataset)
        parse_trig(text, self.dataset)
        added = len(self.dataset) - before
        with self._stats_lock:
            self.statistics.triples_inserted += added
        return added

    # -- introspection ---------------------------------------------------------

    def explain(self, query_text: str, analyze: bool = False) -> str:
        """Render the evaluation plan for ``query_text`` with estimates,
        the shared plan cache's hit/miss statistics and the concurrency
        counters (active readers, snapshot pins, writer waits).

        ``analyze=True`` executes the query's pattern and annotates
        every join step with its actual row count, so mis-estimates of
        the cost-based planner are visible next to its predictions.
        Planning and analysis run against a pinned snapshot, exactly
        like the query itself would.
        """
        from repro.sparql.explain import explain
        return explain(query_text, self.dataset.snapshot(),
                       cache_stats=True, analyze=analyze,
                       parallel=self._parallel)

    @property
    def parallel_executor(self):
        """The endpoint's :class:`~repro.sparql.parallel.
        ParallelExecutor`, or ``None`` when parallel execution is off
        (telemetry and tuning access for tests and tooling)."""
        return self._parallel

    def close(self) -> None:
        """Release the parallel worker pool and every shared-memory
        segment this endpoint exported.  Idempotent; a no-op for
        endpoints without ``parallel=``."""
        if self._parallel is not None:
            self._parallel.close()

    def __enter__(self) -> "LocalEndpoint":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def graph(self, identifier: Optional[Union[IRI, str]] = None) -> Graph:
        """Direct access to a stored graph (tests and tooling)."""
        return self.dataset.graph(identifier)

    def graph_sizes(self) -> Dict[str, int]:
        sizes = {"default": len(self.dataset.default)}
        for graph in self.dataset.graphs():
            if graph.identifier is not None:
                sizes[graph.identifier.value] = len(graph)
        return sizes

    def _log(self, kind: str, text: str, seconds: float, rows: int) -> None:
        if self.keep_query_log:
            self.query_log.append(QueryLogEntry(kind, text, seconds, rows))

    def reset_statistics(self) -> None:
        self.statistics.reset()
        self.query_log.clear()

    def __repr__(self) -> str:
        return (f"<LocalEndpoint {len(self.dataset)} triples, "
                f"{self.statistics.selects} selects>")
