"""Static verifier for the :class:`PhysicalPlan` IR.

The optimizer's plan objects are a small intermediate representation
(ordered :class:`PlanStep`\\ s with strategies, chained estimates,
stream flags and selectivity bands) that the evaluator *trusts*: a
malformed plan does not crash — it silently joins in a wrong order,
streams a non-streamable step, or reuses a cached plan for constants
it was never costed for.  This module checks the IR's well-formedness
conditions mechanically, in the spirit of QB4OLAP's well-formedness
rules over cube schemas, applied to our own plan algebra:

* **shape** — ``order`` is a duplicate-free permutation of the pattern
  indices and ``steps`` mirrors it one-to-one;
* **def-before-use** — a ``probe``/``hash`` step must share at least
  one variable with the bindings produced by earlier steps (its join
  key must be *defined* before use), a ``scan`` step must share none
  (it is the explicit Cartesian choice), and a ``path`` step must sit
  on a path pattern;
* **estimate chaining** — ``est_in`` of step *k* equals ``est_out`` of
  step *k−1* (``1.0`` at the head), every estimate is finite and
  non-negative;
* **strategy↔estimate** — a ``hash`` step implies the planner's own
  build-side conditions (``est_in ≥ 64`` and
  ``est_scan ≤ 4·est_in``);
* **stream flags** — only the leading step may be stream-unsafe, and
  only when it is a path closure; ``plan.streamable`` must agree with
  the flags;
* **band vector / brackets** — ``bands`` is a tuple of non-negative
  ints, each ``bracket`` is ``None`` or an ordered numeric pair;
* **totals** — ``est_rows`` matches the final ``est_out`` and ``cost``
  is a finite non-negative number.

Violations raise :class:`PlanVerificationError` naming the offending
step.  The verifier runs in two places: offline in CI over a generated
plan corpus (``tools/analysis/plan_verifier.py``), and at plan-cache
insert time when the ``REPRO_VERIFY_PLANS`` environment variable is
set (the debug hook in :func:`repro.sparql.optimizer.get_plan`).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

from repro.sparql.algebra import PathPatternNode, Var
from repro.sparql.errors import SPARQLError

#: Relative tolerance for float comparisons between chained estimates.
REL_TOL = 1e-6

#: The planner's hash-build thresholds (mirrors ``_build_steps``).
HASH_MIN_ROWS = 64.0
HASH_SCAN_FACTOR = 4.0

VALID_STRATEGIES = ("hash", "probe", "scan", "path")


class PlanVerificationError(SPARQLError):
    """A physical plan violated an IR well-formedness condition.

    ``step`` is the 0-based position of the offending step in the plan
    (``None`` for plan-level violations such as a malformed band
    vector); ``check`` names the violated condition machine-readably.
    """

    def __init__(self, message: str, *, step: Optional[int] = None,
                 check: str = "plan") -> None:
        super().__init__(message)
        self.step = step
        self.check = check


def _close(left: float, right: float) -> bool:
    return math.isclose(left, right, rel_tol=REL_TOL, abs_tol=1e-9)


def _finite(value: object) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def verify_plan(plan, patterns: Optional[Sequence] = None,
                bound_names: frozenset = frozenset()) -> None:
    """Raise :class:`PlanVerificationError` on the first violation.

    ``patterns`` enables the pattern-aware checks (def-before-use,
    strategy↔variable consistency); without it only the intrinsic IR
    invariants are checked.  ``bound_names`` are the variables already
    bound by the surrounding pipeline when the plan was built.
    """
    violations = collect_violations(plan, patterns, bound_names)
    if violations:
        first = violations[0]
        raise first


def collect_violations(plan, patterns: Optional[Sequence] = None,
                       bound_names: frozenset = frozenset()
                       ) -> List[PlanVerificationError]:
    """All violations of ``plan``, in check order (empty when valid)."""
    out: List[PlanVerificationError] = []

    def flag(message: str, step: Optional[int] = None,
             check: str = "plan") -> None:
        prefix = f"step {step}: " if step is not None else ""
        out.append(PlanVerificationError(
            f"invalid PhysicalPlan: {prefix}{message}",
            step=step, check=check))

    order = list(plan.order)
    steps = list(plan.steps)

    # -- shape ---------------------------------------------------------------
    if len(order) != len(steps):
        flag(f"order has {len(order)} entries but {len(steps)} steps",
             check="shape")
    if len(set(order)) != len(order):
        flag(f"order {order} repeats a pattern index", check="shape")
    if patterns is not None and sorted(order) != list(range(len(patterns))):
        flag(f"order {order} is not a permutation of the "
             f"{len(patterns)} pattern indices", check="shape")
    for position, step in enumerate(steps):
        if position < len(order) and step.index != order[position]:
            flag(f"step.index {step.index} disagrees with order entry "
                 f"{order[position]}", step=position, check="shape")
        if step.strategy not in VALID_STRATEGIES:
            flag(f"unknown strategy {step.strategy!r}", step=position,
                 check="strategy")

    # -- estimate chaining ---------------------------------------------------
    expected_in = 1.0
    for position, step in enumerate(steps):
        for field in ("est_in", "est_out", "est_scan", "est_avg"):
            value = getattr(step, field)
            if not _finite(value) or value < 0:
                flag(f"{field} is {value!r}, expected a finite "
                     f"non-negative number", step=position,
                     check="estimates")
        if _finite(step.est_in) and not _close(step.est_in, expected_in):
            flag(f"est_in {step.est_in!r} breaks the chain (previous "
                 f"est_out was {expected_in!r})", step=position,
                 check="estimates")
        expected_in = step.est_out

    # -- strategy <-> estimate invariants ------------------------------------
    for position, step in enumerate(steps):
        if step.strategy == "hash" and _finite(step.est_in) \
                and _finite(step.est_scan):
            if step.est_in < HASH_MIN_ROWS * (1 - REL_TOL):
                flag(f"hash build with est_in {step.est_in!r} below the "
                     f"planner threshold {HASH_MIN_ROWS}", step=position,
                     check="strategy-estimates")
            if step.est_scan > HASH_SCAN_FACTOR * step.est_in \
                    * (1 + REL_TOL):
                flag(f"hash build scans {step.est_scan!r} which exceeds "
                     f"{HASH_SCAN_FACTOR}x the input rows "
                     f"{step.est_in!r}", step=position,
                     check="strategy-estimates")

    # -- def-before-use / strategy-vs-pattern --------------------------------
    if patterns is not None and sorted(order) == list(range(len(patterns))):
        bound: Set[str] = set(bound_names)
        for position, step in enumerate(steps):
            pattern = patterns[step.index]
            names = set(pattern.variables())
            is_path = isinstance(pattern, PathPatternNode)
            if is_path and step.strategy != "path":
                flag(f"path pattern executed with strategy "
                     f"{step.strategy!r}", step=position,
                     check="def-before-use")
            if not is_path:
                shared = names & bound
                if step.strategy in ("probe", "hash") and not shared:
                    flag(f"{step.strategy} step uses no variable "
                         f"defined by earlier steps (undefined join "
                         f"key; bound here: {sorted(bound) or '{}'})",
                         step=position, check="def-before-use")
                if step.strategy == "scan" and shared:
                    flag(f"scan step silently re-joins already-bound "
                         f"variable(s) {sorted(shared)}",
                         step=position, check="def-before-use")
                if step.strategy == "path":
                    flag("triple pattern executed with strategy "
                         "'path'", step=position, check="def-before-use")
            bound |= names

    # -- stream flags --------------------------------------------------------
    for position, step in enumerate(steps):
        if position > 0 and not step.stream_safe:
            flag("only the leading step may be stream-unsafe",
                 step=position, check="stream-flags")
        if position == 0 and not step.stream_safe \
                and step.strategy != "path":
            flag(f"leading {step.strategy} step marked stream-unsafe "
                 f"(only path closures are)", step=position,
                 check="stream-flags")
    streamable = bool(steps) and bool(steps[0].stream_safe)
    if bool(plan.streamable) != streamable:
        flag(f"plan.streamable is {plan.streamable!r} but the step "
             f"flags imply {streamable!r}", check="stream-flags")

    # -- band vector / brackets ----------------------------------------------
    if not isinstance(plan.bands, tuple):
        flag(f"bands is {type(plan.bands).__name__}, expected a tuple",
             check="bands")
    else:
        for slot, band in enumerate(plan.bands):
            if not isinstance(band, int) or isinstance(band, bool) \
                    or band < 0:
                flag(f"band[{slot}] is {band!r}, expected a "
                     f"non-negative int", check="bands")
    for position, step in enumerate(steps):
        bracket = step.bracket
        if bracket is None:
            continue
        if (not isinstance(bracket, tuple) or len(bracket) != 2
                or not all(_finite(bound) for bound in bracket)
                or bracket[0] > bracket[1]):
            flag(f"bracket {bracket!r} is not an ordered numeric "
                 f"(low, high) pair", step=position, check="bands")

    # -- totals --------------------------------------------------------------
    if not _finite(plan.est_rows) or plan.est_rows < 0:
        flag(f"est_rows is {plan.est_rows!r}", check="totals")
    elif steps and _finite(steps[-1].est_out) \
            and not _close(plan.est_rows, steps[-1].est_out):
        flag(f"est_rows {plan.est_rows!r} disagrees with the final "
             f"step's est_out {steps[-1].est_out!r}", check="totals")
    if not _finite(plan.cost) or plan.cost < 0:
        flag(f"cost is {plan.cost!r}", check="totals")
    if plan.fallback is not None and not isinstance(plan.fallback, str):
        flag(f"fallback is {plan.fallback!r}, expected None or str",
             check="totals")

    return out


__all__ = ["PlanVerificationError", "verify_plan", "collect_violations",
           "REL_TOL", "HASH_MIN_ROWS", "HASH_SCAN_FACTOR"]
