"""Query-plan explanation.

Renders a parsed query's algebra tree as an indented text plan.  When a
dataset is supplied, each BGP is shown as the **physical plan** the
cost-based optimizer would execute: join steps in order, each with its
chosen strategy (``hash`` / ``probe`` / ``scan`` / ``path``) and the
cardinality estimate that justified it, plus the plan's total cost
(Σ of estimated intermediate rows).  Steps whose constants were costed
from the value-aware statistics (MCV lists / equi-depth histograms,
see :mod:`repro.rdf.stats`) are labelled with the estimator and the
constant-independent figure it overrode — ``(est. 480 [mcv], avg 65,
bracket [64, 512))`` — and a BGP planned under non-trivial selectivity
bands shows the band vector on its header.  With ``analyze=True`` the
query's pattern is actually executed and every step line gains the
*actual* row count and strategy, so remaining estimate errors are
directly visible next to what the average-only model would have
guessed.  A plan ordered by the greedy fallback (BGPs above the DP
pattern limit, or statistics-less sources) says so on its header
instead of falling back silently.  This is the debugging surface the
paper's users get from ``EXPLAIN`` on a production endpoint (Virtuoso
prints a similar operator tree).

>>> from repro.rdf.graph import Dataset
>>> from repro.sparql.explain import explain
>>> print(explain("SELECT ?s WHERE { ?s ?p ?o }", Dataset()))
SELECT [?s]
`-- BGP (1 patterns) [cost 0]
    `-- [0] ?s ?p ?o  (est. 0) [scan]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.rdf.concurrency import CONCURRENCY
from repro.rdf.graph import Dataset, DatasetSnapshot
from repro.sparql.algebra import (
    AskQuery,
    BGP,
    ConstructQuery,
    DescribeQuery,
    Empty,
    Extend,
    Filter,
    GraphNode,
    Join,
    LeftJoin,
    Minus,
    PathPatternNode,
    PatternNode,
    Query,
    SelectQuery,
    SubSelectNode,
    TriplePatternNode,
    Union as UnionNode,
    ValuesNode,
    Var,
)
from repro.sparql.evaluator import (
    DatasetContext,
    GraphSource,
    PatternEvaluator,
    StepTrace,
    would_stream,
)
from repro.sparql.optimizer import PLAN_CACHE, estimate_pattern, get_plan
from repro.sparql.parser import parse_query


def _term_text(position) -> str:
    if isinstance(position, Var):
        return f"?{position.name}"
    return position.n3()


def _pattern_text(pattern: Union[TriplePatternNode, PathPatternNode]) -> str:
    if isinstance(pattern, PathPatternNode):
        return (f"{_term_text(pattern.subject)} "
                f"{pattern.path.to_sparql()} "
                f"{_term_text(pattern.object)}")
    return " ".join(_term_text(p) for p in pattern.positions())


def _step_estimate(step) -> str:
    """The ``est.`` clause of one step line.

    Average-estimated steps keep the classic ``est. N``; steps whose
    constants were costed by a value-aware estimator name it and show
    the average-only figure it overrode, so the skew the v1 model
    could not see is visible at a glance.
    """
    if step.est_source == "avg":
        return f"est. {step.est_out:.0f}"
    return (f"est. {step.est_out:.0f} [{step.est_source}], "
            f"avg {step.est_avg:.0f}")


#: per BGP identity: step position -> (executed PlanStep, Σ rows_in,
#: Σ rows_out, strategy actually used)
_TraceIndex = Dict[int, Dict[int, list]]


def _index_traces(traces: List[StepTrace]) -> _TraceIndex:
    """Group actual step executions by BGP, summing row counts per
    position (a BGP under ``GRAPH ?g`` or OPTIONAL may run several
    times).  The executed :class:`PlanStep` is kept so the printer
    renders the plan the evaluator *ran* — which may differ from an
    unseeded replan when the BGP executed under bound variables."""
    index: _TraceIndex = {}
    for record in traces:
        per_node = index.setdefault(id(record.node), {})
        entry = per_node.get(record.position)
        if entry is None:
            per_node[record.position] = [record.step, record.rows_in,
                                         record.rows_out, record.strategy]
        else:
            entry[1] += record.rows_in
            entry[2] += record.rows_out
    return index


class _PlanPrinter:
    def __init__(self, source: Optional[GraphSource],
                 traces: Optional[_TraceIndex] = None) -> None:
        self.source = source
        self.traces = traces
        self.lines: List[str] = []

    def emit(self, text: str, depth: int) -> None:
        indent = "    " * (depth - 1) + "`-- " if depth else ""
        self.lines.append(indent + text)

    def _emit_bgp(self, node: BGP, depth: int) -> None:
        if self.source is None or not node.patterns:
            self.emit(f"BGP ({len(node.patterns)} patterns)", depth)
            for position, pattern in enumerate(node.patterns):
                self.emit(f"[{position}] {_pattern_text(pattern)}"
                          + ("  (path)" if isinstance(pattern,
                                                      PathPatternNode)
                             else ""), depth + 1)
            return
        node_traces = None
        if self.traces is not None:
            node_traces = self.traces.get(id(node))
        if node_traces:
            # render the plan the evaluator actually executed: its
            # step order (planned under the real bound variables) can
            # differ from an unseeded replan.  Plan-level annotations
            # (bands, greedy fallback) hold for any plan of this BGP,
            # so the unseeded plan supplies them for the header too.
            plan = get_plan(node, frozenset(), self.source)
            header = f"BGP ({len(node.patterns)} patterns) [analyzed"
            if plan.bands:
                header += f", bands {plan.bands}"
            header += "]"
            if plan.fallback:
                header += f"  !{plan.fallback}"
            self.emit(header, depth)
            executed = set()
            for position in sorted(node_traces):
                step, _rows_in, rows_out, strategy = node_traces[position]
                executed.add(step.index)
                pattern = node.patterns[step.index]
                text = _pattern_text(pattern)
                if isinstance(pattern, PathPatternNode):
                    text += "  (path)"
                self.emit(f"[{position}] {text}  "
                          f"({_step_estimate(step)}, "
                          f"actual {rows_out}) [{strategy}]", depth + 1)
            for index, pattern in enumerate(node.patterns):
                if index not in executed:
                    self.emit(f"[-] {_pattern_text(pattern)}  "
                              f"(not executed)", depth + 1)
            return
        plan = get_plan(node, frozenset(), self.source)
        header = f"BGP ({len(node.patterns)} patterns) [cost {plan.cost:.0f}"
        if plan.bands:
            header += f", bands {plan.bands}"
        header += "]"
        if plan.fallback:
            header += f"  !{plan.fallback}"
        self.emit(header, depth)
        for position, step in enumerate(plan.steps):
            pattern = node.patterns[step.index]
            text = _pattern_text(pattern)
            if isinstance(pattern, PathPatternNode):
                text += "  (path)"
            detail = _step_estimate(step)
            if step.bracket is not None:
                low, high = step.bracket
                detail += f", bracket [{low:.0f}, {high:.0f})"
            self.emit(f"[{position}] {text}  "
                      f"({detail}) [{step.strategy}]",
                      depth + 1)

    def walk(self, node: PatternNode, depth: int) -> None:
        if isinstance(node, BGP):
            self._emit_bgp(node, depth)
        elif isinstance(node, Join):
            self.emit("Join", depth)
            self.walk(node.left, depth + 1)
            self.walk(node.right, depth + 1)
        elif isinstance(node, LeftJoin):
            suffix = " (with condition)" if node.condition is not None else ""
            if self.source is not None:
                # cost the optional side under the required side's
                # bound variables — the shape it actually executes in
                left_rows, _ = estimate_pattern(node.left, self.source)
                per_row, opt_cost = estimate_pattern(
                    node.right, self.source,
                    frozenset(node.left.variables()))
                suffix += (f" [est. {max(left_rows, left_rows * per_row):.0f}"
                           f" rows, optional side cost "
                           f"{opt_cost * max(1.0, left_rows):.0f}]")
            self.emit(f"LeftJoin / OPTIONAL{suffix}", depth)
            self.walk(node.left, depth + 1)
            self.walk(node.right, depth + 1)
        elif isinstance(node, UnionNode):
            self.emit("Union", depth)
            self.walk(node.left, depth + 1)
            self.walk(node.right, depth + 1)
        elif isinstance(node, Minus):
            self.emit("Minus", depth)
            self.walk(node.left, depth + 1)
            self.walk(node.right, depth + 1)
        elif isinstance(node, Filter):
            self.emit(f"Filter {node.condition!r}", depth)
            self.walk(node.child, depth + 1)
        elif isinstance(node, Extend):
            self.emit(f"Extend ?{node.var}", depth)
            self.walk(node.child, depth + 1)
        elif isinstance(node, ValuesNode):
            self.emit(f"Values {node.vars} ({len(node.rows)} rows)", depth)
        elif isinstance(node, GraphNode):
            name = (f"?{node.name.name}" if isinstance(node.name, Var)
                    else node.name.n3())
            self.emit(f"Graph {name}", depth)
            self.walk(node.child, depth + 1)
        elif isinstance(node, SubSelectNode):
            self.emit("SubSelect", depth)
            self._describe_select(node.query, depth + 1)
        elif isinstance(node, Empty):
            self.emit("Empty", depth)
        else:
            self.emit(f"<{type(node).__name__}>", depth)

    def _describe_select(self, query: SelectQuery, depth: int) -> None:
        names = ", ".join(f"?{n}" for n in query.output_names())
        modifiers = []
        if query.distinct:
            modifiers.append("DISTINCT")
        elif query.reduced:
            modifiers.append("REDUCED")
        if query.group_by:
            modifiers.append(f"GROUP BY ({len(query.group_by)})")
        if query.having:
            modifiers.append("HAVING")
        if query.order_by:
            modifiers.append(f"ORDER BY ({len(query.order_by)})")
        if query.limit is not None:
            modifiers.append(f"LIMIT {query.limit}")
        if query.offset:
            modifiers.append(f"OFFSET {query.offset}")
        if would_stream(query, self.source):
            modifiers.append("streams")
        suffix = ("  [" + ", ".join(modifiers) + "]") if modifiers else ""
        self.emit(f"SELECT [{names}]{suffix}"
                  if depth else f"SELECT [{names}]{suffix}", depth)
        self.walk(query.pattern, depth + 1)


def plan_cache_statistics() -> dict:
    """Hit/miss/size counters of the shared BGP plan cache.

    ``hits_exact`` counts lookups that found a plan built from the very
    same constants (same query re-run); ``hits_parameterized`` counts
    plans reused across *different* constants — the per-member-IRI
    sharing that keeps cube materialization from re-planning.
    """
    return PLAN_CACHE.statistics()


def _cache_stats_lines() -> List[str]:
    from repro.sparql.governor import GOVERNOR
    stats = PLAN_CACHE.statistics()
    concurrency = CONCURRENCY.snapshot()
    governor = GOVERNOR.snapshot()
    return [
        f"plan cache: entries={stats['entries']} hits={stats['hits']} "
        f"(exact={stats['hits_exact']}, "
        f"parameterized={stats['hits_parameterized']}) "
        f"misses={stats['misses']} evictions={stats['evictions']} "
        f"bracket_replans={stats['bracket_replans']}",
        f"concurrency: active_readers={concurrency['active_readers']} "
        f"peak={concurrency['peak_readers']} "
        f"snapshot_pins={concurrency['snapshot_pins']} "
        f"(builds={concurrency['snapshot_builds']}, "
        f"reuses={concurrency['snapshot_reuses']}, "
        f"stale={concurrency['stale_serves']}) "
        f"cow_copies={concurrency['cow_copies']} "
        f"writer_waits={concurrency['writer_waits']}",
        f"governor: admitted={governor['admitted']} "
        f"queued={governor['queued']} shed={governor['shed']} "
        f"timeouts={governor['timeouts']} "
        f"cancelled={governor['cancelled']} "
        f"budget_kills={governor['budget_kills']} "
        f"truncated={governor['truncated_serves']} "
        f"internal={governor['mapped_internal_errors']}",
    ]


def _collect_traces(query: Query, context: DatasetContext
                    ) -> Optional[_TraceIndex]:
    """Execute the query's pattern with step tracing (EXPLAIN analyze)."""
    pattern = getattr(query, "pattern", None)
    if pattern is None:
        return None
    source = context.default_source()
    evaluator = PatternEvaluator(context)
    evaluator.trace = []
    evaluator.solve(pattern, source)
    return _index_traces(evaluator.trace)


def explain_query(query: Query,
                  dataset: Optional[Union[Dataset, DatasetSnapshot]] = None,
                  cache_stats: bool = False, analyze: bool = False,
                  parallel=None) -> str:
    """Render a parsed query's physical plan.

    Estimates appear when a dataset (or a pinned
    :class:`~repro.rdf.graph.DatasetSnapshot`) is supplied;
    ``analyze=True`` additionally *executes* the query's pattern and
    annotates each join step with its actual row count and strategy;
    ``cache_stats=True`` appends the shared plan cache's hit/miss
    counters and the snapshot-concurrency counters; ``parallel=`` (a
    :class:`~repro.sparql.parallel.ParallelExecutor`) appends the
    ``parallel:`` line — the planned worker/morsel fan-out, or why
    the query would stay serial.
    """
    source: Optional[GraphSource] = None
    traces: Optional[_TraceIndex] = None
    if dataset is not None:
        context = DatasetContext(dataset)
        source = context.default_source()
        if analyze:
            traces = _collect_traces(query, context)
    printer = _PlanPrinter(source, traces)
    if isinstance(query, SelectQuery):
        printer._describe_select(query, 0)
    elif isinstance(query, AskQuery):
        printer.emit("ASK", 0)
        printer.walk(query.pattern, 1)
    elif isinstance(query, ConstructQuery):
        printer.emit(
            f"CONSTRUCT ({len(query.template)} template triples)", 0)
        printer.walk(query.pattern, 1)
    elif isinstance(query, DescribeQuery):
        targets = ([iri.n3() for iri in query.resources]
                   + [f"?{name}" for name in query.variables])
        printer.emit(f"DESCRIBE [{', '.join(targets) or '*'}]", 0)
        if query.pattern is not None:
            printer.walk(query.pattern, 1)
    else:
        raise TypeError(f"cannot explain {type(query).__name__}")
    lines = printer.lines
    if parallel is not None:
        lines = lines + [parallel.describe(query, dataset)]
    if cache_stats:
        lines = lines + _cache_stats_lines()
    return "\n".join(lines)


def explain(query_text: str,
            dataset: Optional[Union[Dataset, DatasetSnapshot]] = None,
            cache_stats: bool = False, analyze: bool = False,
            parallel=None) -> str:
    """Parse ``query_text`` and render its plan."""
    return explain_query(parse_query(query_text), dataset,
                         cache_stats=cache_stats, analyze=analyze,
                         parallel=parallel)
