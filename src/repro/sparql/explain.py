"""Query-plan explanation.

Renders a parsed query's algebra tree as an indented text plan, with
cardinality estimates and the static greedy join order the optimizer
would choose for each BGP.  This is the debugging surface the paper's
users get from ``EXPLAIN`` on a production endpoint (Virtuoso prints a
similar operator tree), and the repo's benchmarks use it to document
*why* the two QL translations behave differently.

>>> from repro.rdf.graph import Dataset
>>> from repro.sparql.explain import explain
>>> print(explain("SELECT ?s WHERE { ?s ?p ?o }", Dataset()))
SELECT [?s]
`-- BGP (1 patterns)
    `-- [0] ?s ?p ?o  (est. 0)
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.rdf.graph import Dataset
from repro.sparql.algebra import (
    AskQuery,
    BGP,
    ConstructQuery,
    DescribeQuery,
    Empty,
    Extend,
    Filter,
    GraphNode,
    Join,
    LeftJoin,
    Minus,
    PathPatternNode,
    PatternNode,
    Query,
    SelectQuery,
    SubSelectNode,
    TriplePatternNode,
    Union as UnionNode,
    ValuesNode,
    Var,
)
from repro.sparql.evaluator import DatasetContext, GraphSource
from repro.sparql.optimizer import PLAN_CACHE, static_order
from repro.sparql.parser import parse_query


def _term_text(position) -> str:
    if isinstance(position, Var):
        return f"?{position.name}"
    return position.n3()


def _pattern_line(pattern: Union[TriplePatternNode, PathPatternNode],
                  source: Optional[GraphSource]) -> str:
    if isinstance(pattern, PathPatternNode):
        text = (f"{_term_text(pattern.subject)} "
                f"{pattern.path.to_sparql()} "
                f"{_term_text(pattern.object)}")
        return f"{text}  (path)"
    text = " ".join(_term_text(p) for p in pattern.positions())
    if source is None:
        return text
    concrete = tuple(
        None if isinstance(p, Var) else p for p in pattern.positions())
    return f"{text}  (est. {source.estimate(concrete)})"


class _PlanPrinter:
    def __init__(self, source: Optional[GraphSource]) -> None:
        self.source = source
        self.lines: List[str] = []

    def emit(self, text: str, depth: int) -> None:
        indent = "    " * (depth - 1) + "`-- " if depth else ""
        self.lines.append(indent + text)

    def walk(self, node: PatternNode, depth: int) -> None:
        if isinstance(node, BGP):
            self.emit(f"BGP ({len(node.patterns)} patterns)", depth)
            ordered = node.patterns
            if self.source is not None:
                ordered = static_order(node.patterns, self.source)
            for position, pattern in enumerate(ordered):
                self.emit(f"[{position}] "
                          f"{_pattern_line(pattern, self.source)}", depth + 1)
        elif isinstance(node, Join):
            self.emit("Join", depth)
            self.walk(node.left, depth + 1)
            self.walk(node.right, depth + 1)
        elif isinstance(node, LeftJoin):
            suffix = " (with condition)" if node.condition is not None else ""
            self.emit(f"LeftJoin / OPTIONAL{suffix}", depth)
            self.walk(node.left, depth + 1)
            self.walk(node.right, depth + 1)
        elif isinstance(node, UnionNode):
            self.emit("Union", depth)
            self.walk(node.left, depth + 1)
            self.walk(node.right, depth + 1)
        elif isinstance(node, Minus):
            self.emit("Minus", depth)
            self.walk(node.left, depth + 1)
            self.walk(node.right, depth + 1)
        elif isinstance(node, Filter):
            self.emit(f"Filter {node.condition!r}", depth)
            self.walk(node.child, depth + 1)
        elif isinstance(node, Extend):
            self.emit(f"Extend ?{node.var}", depth)
            self.walk(node.child, depth + 1)
        elif isinstance(node, ValuesNode):
            self.emit(f"Values {node.vars} ({len(node.rows)} rows)", depth)
        elif isinstance(node, GraphNode):
            name = (f"?{node.name.name}" if isinstance(node.name, Var)
                    else node.name.n3())
            self.emit(f"Graph {name}", depth)
            self.walk(node.child, depth + 1)
        elif isinstance(node, SubSelectNode):
            self.emit("SubSelect", depth)
            self._describe_select(node.query, depth + 1)
        elif isinstance(node, Empty):
            self.emit("Empty", depth)
        else:
            self.emit(f"<{type(node).__name__}>", depth)

    def _describe_select(self, query: SelectQuery, depth: int) -> None:
        names = ", ".join(f"?{n}" for n in query.output_names())
        modifiers = []
        if query.distinct:
            modifiers.append("DISTINCT")
        if query.group_by:
            modifiers.append(f"GROUP BY ({len(query.group_by)})")
        if query.having:
            modifiers.append("HAVING")
        if query.order_by:
            modifiers.append(f"ORDER BY ({len(query.order_by)})")
        if query.limit is not None:
            modifiers.append(f"LIMIT {query.limit}")
        suffix = ("  [" + ", ".join(modifiers) + "]") if modifiers else ""
        self.emit(f"SELECT [{names}]{suffix}"
                  if depth else f"SELECT [{names}]{suffix}", depth)
        self.walk(query.pattern, depth + 1)


def plan_cache_statistics() -> dict:
    """Hit/miss/size counters of the shared BGP plan cache."""
    return PLAN_CACHE.statistics()


def _cache_stats_lines() -> List[str]:
    stats = PLAN_CACHE.statistics()
    return [
        f"plan cache: entries={stats['entries']} hits={stats['hits']} "
        f"misses={stats['misses']} evictions={stats['evictions']}"
    ]


def explain_query(query: Query, dataset: Optional[Dataset] = None,
                  cache_stats: bool = False) -> str:
    """Render a parsed query's plan; includes estimates when a dataset
    is supplied and plan-cache statistics when ``cache_stats`` is set."""
    source: Optional[GraphSource] = None
    if dataset is not None:
        source = DatasetContext(dataset).default_source()
    printer = _PlanPrinter(source)
    if isinstance(query, SelectQuery):
        printer._describe_select(query, 0)
    elif isinstance(query, AskQuery):
        printer.emit("ASK", 0)
        printer.walk(query.pattern, 1)
    elif isinstance(query, ConstructQuery):
        printer.emit(
            f"CONSTRUCT ({len(query.template)} template triples)", 0)
        printer.walk(query.pattern, 1)
    elif isinstance(query, DescribeQuery):
        targets = ([iri.n3() for iri in query.resources]
                   + [f"?{name}" for name in query.variables])
        printer.emit(f"DESCRIBE [{', '.join(targets) or '*'}]", 0)
        if query.pattern is not None:
            printer.walk(query.pattern, 1)
    else:
        raise TypeError(f"cannot explain {type(query).__name__}")
    lines = printer.lines
    if cache_stats:
        lines = lines + _cache_stats_lines()
    return "\n".join(lines)


def explain(query_text: str, dataset: Optional[Dataset] = None,
            cache_stats: bool = False) -> str:
    """Parse ``query_text`` and render its plan."""
    return explain_query(parse_query(query_text), dataset,
                         cache_stats=cache_stats)
