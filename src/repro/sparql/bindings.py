"""Columnar solution tables for the batch SPARQL pipeline.

A :class:`BindingTable` is the unit of data flow inside the evaluator:
a shared variable→slot map (the schema) plus a list of row tuples whose
cells are **interned term ids** (see :mod:`repro.rdf.dictionary`) or
``None`` for unbound.  Keeping solutions columnar and integer-typed is
what lets basic graph patterns execute as batch joins — hash joins and
memoized index probes on machine integers — instead of materializing a
Python dict per solution per operator.

Column names beginning with ``#`` are internal bookkeeping (e.g. the
left-row provenance marker OPTIONAL evaluation threads through its
right side) and are never decoded into user-visible bindings.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

IdRow = Tuple[Optional[int], ...]

__all__ = ["BindingTable"]


class BindingTable:
    """An ordered bag of solution rows over a fixed variable schema."""

    __slots__ = ("names", "slots", "rows")

    def __init__(self, names: Sequence[str] = (),
                 rows: Optional[List[IdRow]] = None) -> None:
        self.names: Tuple[str, ...] = tuple(names)
        self.slots: Dict[str, int] = {
            name: index for index, name in enumerate(self.names)}
        self.rows: List[IdRow] = rows if rows is not None else []

    @classmethod
    def unit(cls) -> "BindingTable":
        """The join identity: no columns, one empty row."""
        return cls((), [()])

    @classmethod
    def empty(cls, names: Sequence[str] = ()) -> "BindingTable":
        """No rows at all (the annihilator)."""
        return cls(names, [])

    def visible_names(self) -> List[str]:
        """Schema minus internal ``#``-prefixed bookkeeping columns."""
        return [name for name in self.names if not name.startswith("#")]

    def visible_slots(self) -> List[Tuple[int, str]]:
        """``(slot, name)`` pairs of the user-visible columns — the
        shape the decode paths (batch and streaming) iterate per row."""
        return visible_slots(self.names)

    def extended(self, extra_names: Sequence[str]) -> "BindingTable":
        """Schema-widened copy: new columns filled with ``None``."""
        if not extra_names:
            return self
        pad: IdRow = (None,) * len(extra_names)
        return BindingTable(self.names + tuple(extra_names),
                            [row + pad for row in self.rows])

    def project_onto(self, names: Sequence[str]) -> List[IdRow]:
        """Rows re-ordered/padded onto a target schema."""
        return list(self.iter_onto(names))

    def iter_onto(self, names: Sequence[str]) -> Iterator[IdRow]:
        """Lazily project rows onto a target schema.

        The generator form of :meth:`project_onto` for incremental
        consumers (the streaming dedup operator) that may stop before
        draining the batch.
        """
        slots = self.slots
        picks = [slots.get(name) for name in names]
        for row in self.rows:
            yield tuple(
                None if pick is None else row[pick] for pick in picks)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __repr__(self) -> str:
        return f"<BindingTable {list(self.names)} ({len(self.rows)} rows)>"


def visible_slots(names: Sequence[str]) -> List[Tuple[int, str]]:
    """``(slot, name)`` pairs of the non-``#`` columns of a schema.

    The single definition of "user-visible" every decode path shares.
    """
    return [(slot, name) for slot, name in enumerate(names)
            if not name.startswith("#")]


def concat(tables: Iterable[BindingTable]) -> BindingTable:
    """Append tables, unioning schemas (missing cells become ``None``)."""
    tables = [table for table in tables]
    if not tables:
        return BindingTable.empty()
    names: List[str] = []
    seen = set()
    for table in tables:
        for name in table.names:
            if name not in seen:
                seen.add(name)
                names.append(name)
    rows: List[IdRow] = []
    for table in tables:
        if table.names == tuple(names):
            rows.extend(table.rows)
        else:
            rows.extend(table.project_onto(names))
    return BindingTable(names, rows)
