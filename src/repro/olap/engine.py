"""The native OLAP engine over the star schema.

Evaluates the same canonical pipelines QL produces — roll-ups, slices
and dices — directly with numpy group-bys.  Two roles:

* the **baseline** of experiment E9 (traditional-DW approach: pay ETL
  once, then answer queries from arrays);
* the **correctness oracle**: for every QL query, the SPARQL path and
  this engine must produce identical cells
  (:mod:`repro.olap.compare`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rdf.terms import IRI, Literal, Term
from repro.ql.ast import (
    AttributePath,
    BooleanCondition,
    Comparison,
    DiceCondition,
    MeasureRef,
    NotCondition,
)
from repro.ql.simplifier import SimplifiedProgram
from repro.olap.errors import DiceTypeError, OLAPEngineError, UnknownAxisError
from repro.olap.star import StarSchema


@dataclass
class NativeResult:
    """Cells produced by the native engine."""

    #: dimension IRI → level the axis sits at
    axis_levels: Dict[IRI, IRI]
    #: rows: coordinate tuple (terms, dimension order) → measure values
    cells: Dict[Tuple[Term, ...], Dict[IRI, float]]
    dimension_order: List[IRI]
    seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.cells)

    def value(self, measure: IRI, *coordinate: Term) -> Optional[float]:
        cell = self.cells.get(tuple(coordinate))
        return None if cell is None else cell.get(measure)

    def as_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for key, measures in self.cells.items():
            row: Dict[str, object] = {}
            for iri, member in zip(self.dimension_order, key):
                row[iri.value] = getattr(member, "value", str(member))
            for measure, value in measures.items():
                row[measure.value] = value
            rows.append(row)
        return rows


class NativeOLAPEngine:
    """Array-based evaluation of canonical QL pipelines."""

    def __init__(self, star: StarSchema) -> None:
        self.star = star

    def evaluate(self, program: SimplifiedProgram) -> NativeResult:
        """Evaluate a simplified QL program over the star schema."""
        if program.state is None:
            raise OLAPEngineError("program lacks a checked cube state")
        started = time.perf_counter()
        state = program.state
        facts = self.star.facts
        n = facts.size

        kept_dimensions = sorted(state.levels, key=lambda iri: iri.value)
        axis_levels = {iri: state.levels[iri] for iri in kept_dimensions}

        # coordinate codes at the target levels
        coordinate_codes: List[np.ndarray] = []
        keep_mask = np.ones(n, dtype=bool)
        for dimension_iri in kept_dimensions:
            table = self.star.dimension(dimension_iri)
            bottom_codes = facts.coordinates[dimension_iri]
            level = axis_levels[dimension_iri]
            ancestor = table.map_to_level(level)
            codes = np.full(n, -1, dtype=np.int64)
            valid = bottom_codes >= 0
            codes[valid] = ancestor[bottom_codes[valid]]
            keep_mask &= codes >= 0  # SPARQL joins drop unmapped members
            coordinate_codes.append(codes)

        # a fact missing any queried measure (NaN sentinel) is a row the
        # SPARQL BGP's measure patterns would never join — drop it from
        # every aggregate, exactly as the join does
        for measure_iri in state.measures:
            keep_mask &= ~np.isnan(facts.measures[measure_iri])

        # pre-aggregation dice: attribute-only conditions filter facts
        for condition in program.dices:
            if condition.measure_refs():
                continue
            mask = self._attribute_mask(
                condition, kept_dimensions, axis_levels, coordinate_codes, n)
            keep_mask &= mask

        rows = np.flatnonzero(keep_mask)
        if coordinate_codes:
            stacked = np.stack(
                [codes[rows] for codes in coordinate_codes], axis=1)
            unique_keys, inverse = np.unique(
                stacked, axis=0, return_inverse=True)
        else:
            unique_keys = np.zeros((1, 0), dtype=np.int64)
            inverse = np.zeros(len(rows), dtype=np.int64)
        group_count = unique_keys.shape[0]

        aggregated: Dict[IRI, Tuple[np.ndarray, np.ndarray]] = {}
        for measure_iri in state.measures:
            keyword = self.star.measure_aggregates.get(measure_iri, "SUM")
            values = facts.measures[measure_iri][rows]
            aggregated[measure_iri] = _aggregate(
                keyword, values, inverse, group_count)

        # post-aggregation dice: measure-bearing conditions filter cells
        cell_mask = np.ones(group_count, dtype=bool)
        for condition in program.dices:
            if not condition.measure_refs():
                continue
            cell_mask &= self._cell_mask(
                condition, kept_dimensions, axis_levels,
                unique_keys, aggregated, group_count)

        cells: Dict[Tuple[Term, ...], Dict[IRI, float]] = {}
        member_lists = [
            self.star.dimension(iri).members_at(axis_levels[iri])
            for iri in kept_dimensions]
        for group in np.flatnonzero(cell_mask):
            key = tuple(
                member_lists[axis][int(unique_keys[group, axis])]
                for axis in range(len(kept_dimensions)))
            # a measure whose aggregate has no defined value for this
            # group (empty AVG/MIN/MAX) stays out of the cell — the
            # SPARQL path leaves that projection unbound
            cells[key] = {
                measure: float(values[group])
                for measure, (values, valid) in aggregated.items()
                if valid[group]}
        elapsed = time.perf_counter() - started
        return NativeResult(axis_levels=axis_levels, cells=cells,
                            dimension_order=kept_dimensions, seconds=elapsed)

    # -- dice helpers -----------------------------------------------------------

    def _attribute_mask(self, condition: DiceCondition,
                        kept: List[IRI], axis_levels: Dict[IRI, IRI],
                        coordinate_codes: List[np.ndarray],
                        n: int) -> np.ndarray:
        if isinstance(condition, Comparison):
            assert isinstance(condition.operand, AttributePath)
            path = condition.operand
            axis = _require_axis(kept, path.dimension)
            table = self.star.dimension(path.dimension)
            members = table.members_at(axis_levels[path.dimension])
            values = table.attribute_values(
                axis_levels[path.dimension], path.attribute)
            member_ok = np.zeros(len(members), dtype=bool)
            for code, member in enumerate(members):
                value = values.get(member)
                member_ok[code] = _compare_terms(value, condition.op,
                                                 condition.value)
            codes = coordinate_codes[axis]
            mask = np.zeros(n, dtype=bool)
            valid = codes >= 0
            mask[valid] = member_ok[codes[valid]]
            return mask
        if isinstance(condition, BooleanCondition):
            masks = [self._attribute_mask(operand, kept, axis_levels,
                                          coordinate_codes, n)
                     for operand in condition.operands]
            combined = masks[0]
            for mask in masks[1:]:
                combined = combined & mask if condition.op == "AND" \
                    else combined | mask
            return combined
        if isinstance(condition, NotCondition):
            return ~self._attribute_mask(condition.operand, kept,
                                         axis_levels, coordinate_codes, n)
        raise OLAPEngineError(f"unknown condition {condition!r}")

    def _cell_mask(self, condition: DiceCondition, kept: List[IRI],
                   axis_levels: Dict[IRI, IRI], unique_keys: np.ndarray,
                   aggregated: Dict[IRI, Tuple[np.ndarray, np.ndarray]],
                   group_count: int) -> np.ndarray:
        if isinstance(condition, Comparison):
            if isinstance(condition.operand, MeasureRef):
                values, valid = aggregated[condition.operand.measure]
                target = _dice_target(condition.value)
                # a dice over an unbound aggregate is an errored FILTER
                # on the SPARQL side: the group drops
                return valid & _numeric_compare(values, condition.op, target)
            path = condition.operand
            axis = _require_axis(kept, path.dimension)
            table = self.star.dimension(path.dimension)
            members = table.members_at(axis_levels[path.dimension])
            attr_values = table.attribute_values(
                axis_levels[path.dimension], path.attribute)
            member_ok = np.zeros(len(members), dtype=bool)
            for code, member in enumerate(members):
                member_ok[code] = _compare_terms(
                    attr_values.get(member), condition.op, condition.value)
            return member_ok[unique_keys[:, axis]]
        if isinstance(condition, BooleanCondition):
            masks = [self._cell_mask(operand, kept, axis_levels,
                                     unique_keys, aggregated, group_count)
                     for operand in condition.operands]
            combined = masks[0]
            for mask in masks[1:]:
                combined = combined & mask if condition.op == "AND" \
                    else combined | mask
            return combined
        if isinstance(condition, NotCondition):
            return ~self._cell_mask(condition.operand, kept, axis_levels,
                                    unique_keys, aggregated, group_count)
        raise OLAPEngineError(f"unknown condition {condition!r}")


def _require_axis(kept: List[IRI], dimension: IRI) -> int:
    """Position of ``dimension`` among the kept axes, or a typed error."""
    try:
        return kept.index(dimension)
    except ValueError:
        raise UnknownAxisError(
            f"dice references dimension {dimension.value}, which is not "
            f"an axis of the cube at this point of the pipeline "
            f"(sliced away or never part of the cube)") from None


def _dice_target(value: Term) -> float:
    """The numeric RHS of a measure dice, or a typed error.

    Measure aggregates are numbers; comparing them against an IRI or a
    non-numeric lexical form is a query bug the engine must report, not
    silently coerce to ``0.0``.
    """
    if not isinstance(value, Literal):
        raise DiceTypeError(
            f"measure dice compares against non-literal {value!r}")
    try:
        return float(value.value)
    except (TypeError, ValueError):
        raise DiceTypeError(
            f"measure dice compares against non-numeric literal "
            f"{value.value!r}") from None


def _aggregate(keyword: str, values: np.ndarray, inverse: np.ndarray,
               groups: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group aggregate plus a per-group *defined* mask.

    Mirrors SPARQL aggregate semantics over a group with no usable
    values: ``SUM`` and ``COUNT`` are still bound (0), while
    ``AVG``/``MIN``/``MAX`` are unbound — reported here as
    ``valid=False`` (never ``0.0`` or ±inf) so the caller drops the
    cell value the way the SPARQL projection leaves it unbound.
    """
    present = ~np.isnan(values)
    counts = np.zeros(groups)
    np.add.at(counts, inverse[present], 1.0)
    defined = counts > 0
    always = np.ones(groups, dtype=bool)
    if keyword == "SUM":
        out = np.zeros(groups)
        np.add.at(out, inverse[present], values[present])
        return out, always
    if keyword == "COUNT":
        return counts, always
    if keyword == "AVG":
        sums = np.zeros(groups)
        np.add.at(sums, inverse[present], values[present])
        out = np.full(groups, np.nan)
        np.divide(sums, counts, out=out, where=defined)
        return out, defined
    if keyword == "MIN":
        out = np.full(groups, np.inf)
        np.minimum.at(out, inverse[present], values[present])
        out[~defined] = np.nan
        return out, defined
    if keyword == "MAX":
        out = np.full(groups, -np.inf)
        np.maximum.at(out, inverse[present], values[present])
        out[~defined] = np.nan
        return out, defined
    raise OLAPEngineError(f"unknown aggregate {keyword!r}")


def _numeric_compare(values: np.ndarray, op: str, target: float
                     ) -> np.ndarray:
    if op == "=":
        return values == target
    if op == "!=":
        return values != target
    if op == "<":
        return values < target
    if op == "<=":
        return values <= target
    if op == ">":
        return values > target
    if op == ">=":
        return values >= target
    raise OLAPEngineError(f"unknown operator {op!r}")


def _compare_terms(value: Optional[Term], op: str, target) -> bool:
    """Python-side comparison for attribute dices (mirrors SPARQL)."""
    if value is None:
        return False
    if isinstance(value, Literal) and isinstance(target, Literal):
        left = value.value
        right = target.value
        try:
            if op == "=":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError:
            return False
    if op == "=":
        return value == target
    if op == "!=":
        return value != target
    return False
