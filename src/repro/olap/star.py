"""In-memory star schema: dimension tables and the fact table.

This is the storage layer of the *traditional DW* baseline (paper
§I, first approach / ref. [2] Kämpgen & Harth): observations are
extracted from RDF once, dictionary-encoded into dense integer codes,
and measures land in numpy arrays.  OLAP then runs as array group-bys
instead of SPARQL joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf.terms import IRI, Literal, Term


@dataclass
class DimensionTable:
    """One dimension: bottom members plus per-level roll-up maps."""

    dimension: IRI
    bottom_level: IRI
    #: bottom member code → term (position = code)
    bottom_members: List[Term] = field(default_factory=list)
    #: level → members of that level (position = code)
    level_members: Dict[IRI, List[Term]] = field(default_factory=dict)
    #: level → int array mapping bottom code → level member code (-1 = none)
    ancestor_maps: Dict[IRI, np.ndarray] = field(default_factory=dict)
    #: level → attribute property → {member term: literal value}
    attributes: Dict[IRI, Dict[IRI, Dict[Term, Term]]] = \
        field(default_factory=dict)

    def __post_init__(self) -> None:
        self._bottom_index = {member: code for code, member
                              in enumerate(self.bottom_members)}
        self.level_members.setdefault(self.bottom_level, self.bottom_members)
        if self.bottom_level not in self.ancestor_maps:
            self.ancestor_maps[self.bottom_level] = np.arange(
                len(self.bottom_members), dtype=np.int64)

    def bottom_code(self, member: Term) -> Optional[int]:
        return self._bottom_index.get(member)

    def members_at(self, level: IRI) -> List[Term]:
        return self.level_members[level]

    def map_to_level(self, level: IRI) -> np.ndarray:
        """bottom code → member code at ``level`` (-1 when unmapped)."""
        return self.ancestor_maps[level]

    def attribute_values(self, level: IRI, attribute: IRI
                         ) -> Dict[Term, Term]:
        return self.attributes.get(level, {}).get(attribute, {})

    @property
    def cardinality(self) -> int:
        return len(self.bottom_members)


@dataclass
class FactTable:
    """The encoded fact table.

    A fact that lacks a value for a dimension carries code ``-1``; a
    fact that lacks a (numeric) value for a measure carries ``NaN``.
    Both sentinels mean *the SPARQL path's joins would drop this row*
    for any query touching that column, and the native engine mirrors
    that (:meth:`repro.olap.engine.NativeOLAPEngine.evaluate`).
    """

    #: dimension IRI → int64 code array (length = #facts; -1 = missing)
    coordinates: Dict[IRI, np.ndarray] = field(default_factory=dict)
    #: measure IRI → float64 value array (NaN = missing / non-numeric)
    measures: Dict[IRI, np.ndarray] = field(default_factory=dict)

    @property
    def size(self) -> int:
        for array in self.coordinates.values():
            return int(array.shape[0])
        for array in self.measures.values():
            return int(array.shape[0])
        return 0

    def columns(self, epoch: int = 0) -> "FactColumns":
        """Compress this table into a :class:`FactColumns` snapshot."""
        return FactColumns.from_facts(self, epoch=epoch)


def _code_dtype(max_code: int) -> np.dtype:
    """Smallest signed dtype holding ``max_code`` (and the -1 sentinel).

    Guarded narrowing in the :mod:`repro.rdf.columnar` idiom: the
    candidate dtype is accepted only after ``np.iinfo`` proves the
    ceiling fits, so a dimension beyond 2^31 members degrades to int64
    instead of truncating silently.
    """
    for candidate in (np.int8, np.int16, np.int32):
        if max_code <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    return np.dtype(np.int64)


@dataclass(frozen=True)
class FactColumns:
    """One immutable, compressed columnar generation of the fact table.

    The shareable star snapshot: dimension coordinates are narrowed to
    the smallest signed dtype that holds the dimension's code ceiling
    (most real dimensions fit int8/int16 — a 4-8x space saving over
    the working int64 arrays), measures stay float64, and the whole
    layout is stamped with the snapshot epoch it was extracted from so
    parallel workers can tell generations apart.  Exported zero-copy
    through :func:`repro.rdf.shm.export_arrays` / the
    ``SHM_SEGMENTS`` registry by :mod:`repro.olap.parallel`.
    """

    #: dimension IRI → narrowed code array (-1 = missing)
    coordinates: Dict[IRI, np.ndarray]
    #: measure IRI → float64 value array (NaN = missing)
    measures: Dict[IRI, np.ndarray]
    #: snapshot epoch the star schema was extracted at
    epoch: int
    #: fact count (authoritative even when there are no columns)
    rows: int

    @classmethod
    def from_facts(cls, facts: FactTable, epoch: int = 0) -> "FactColumns":
        coordinates: Dict[IRI, np.ndarray] = {}
        for iri, codes in facts.coordinates.items():
            ceiling = int(codes.max()) if codes.shape[0] else 0
            narrowed = np.ascontiguousarray(codes,
                                            dtype=_code_dtype(ceiling))
            narrowed.flags.writeable = False
            coordinates[iri] = narrowed
        measures: Dict[IRI, np.ndarray] = {}
        for iri, values in facts.measures.items():
            column = np.ascontiguousarray(values, dtype=np.float64)
            column.flags.writeable = False
            measures[iri] = column
        return cls(coordinates=coordinates, measures=measures,
                   epoch=epoch, rows=facts.size)

    @property
    def nbytes(self) -> int:
        """Total payload size (what a shared-memory export will cost)."""
        return sum(a.nbytes for a in self.coordinates.values()) \
            + sum(a.nbytes for a in self.measures.values())

    def widened(self) -> FactTable:
        """Back to the working-width :class:`FactTable` layout."""
        return FactTable(
            coordinates={iri: codes.astype(np.int64)
                         for iri, codes in self.coordinates.items()},
            measures={iri: values.astype(np.float64)
                      for iri, values in self.measures.items()})


@dataclass
class StarSchema:
    """The complete materialized DW."""

    dataset: IRI
    dimensions: Dict[IRI, DimensionTable] = field(default_factory=dict)
    facts: FactTable = field(default_factory=FactTable)
    #: measure IRI → aggregate keyword ("SUM", "AVG", ...)
    measure_aggregates: Dict[IRI, str] = field(default_factory=dict)
    #: mutation epoch of the source dataset at extraction time — the
    #: generation stamp carried by :class:`FactColumns` exports
    epoch: int = 0

    def fact_columns(self) -> FactColumns:
        """The compressed, shareable snapshot of the fact table."""
        return self.facts.columns(epoch=self.epoch)

    def dimension(self, iri: IRI) -> DimensionTable:
        table = self.dimensions.get(iri)
        if table is None:
            raise KeyError(f"unknown dimension {iri}")
        return table

    def summary(self) -> str:
        lines = [f"Star schema for {self.dataset.value}",
                 f"  facts: {self.facts.size}"]
        for iri, table in sorted(self.dimensions.items(),
                                 key=lambda kv: kv[0].value):
            levels = ", ".join(
                f"{level.local_name()}({len(members)})"
                for level, members in sorted(
                    table.level_members.items(), key=lambda kv: kv[0].value))
            lines.append(f"  {iri.local_name()}: {levels}")
        return "\n".join(lines)
