"""In-memory star schema: dimension tables and the fact table.

This is the storage layer of the *traditional DW* baseline (paper
§I, first approach / ref. [2] Kämpgen & Harth): observations are
extracted from RDF once, dictionary-encoded into dense integer codes,
and measures land in numpy arrays.  OLAP then runs as array group-bys
instead of SPARQL joins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf.terms import IRI, Literal, Term


@dataclass
class DimensionTable:
    """One dimension: bottom members plus per-level roll-up maps."""

    dimension: IRI
    bottom_level: IRI
    #: bottom member code → term (position = code)
    bottom_members: List[Term] = field(default_factory=list)
    #: level → members of that level (position = code)
    level_members: Dict[IRI, List[Term]] = field(default_factory=dict)
    #: level → int array mapping bottom code → level member code (-1 = none)
    ancestor_maps: Dict[IRI, np.ndarray] = field(default_factory=dict)
    #: level → attribute property → {member term: literal value}
    attributes: Dict[IRI, Dict[IRI, Dict[Term, Term]]] = \
        field(default_factory=dict)

    def __post_init__(self) -> None:
        self._bottom_index = {member: code for code, member
                              in enumerate(self.bottom_members)}
        self.level_members.setdefault(self.bottom_level, self.bottom_members)
        if self.bottom_level not in self.ancestor_maps:
            self.ancestor_maps[self.bottom_level] = np.arange(
                len(self.bottom_members), dtype=np.int64)

    def bottom_code(self, member: Term) -> Optional[int]:
        return self._bottom_index.get(member)

    def members_at(self, level: IRI) -> List[Term]:
        return self.level_members[level]

    def map_to_level(self, level: IRI) -> np.ndarray:
        """bottom code → member code at ``level`` (-1 when unmapped)."""
        return self.ancestor_maps[level]

    def attribute_values(self, level: IRI, attribute: IRI
                         ) -> Dict[Term, Term]:
        return self.attributes.get(level, {}).get(attribute, {})

    @property
    def cardinality(self) -> int:
        return len(self.bottom_members)


@dataclass
class FactTable:
    """The encoded fact table."""

    #: dimension IRI → int64 code array (length = #facts; -1 = missing)
    coordinates: Dict[IRI, np.ndarray] = field(default_factory=dict)
    #: measure IRI → float64 value array
    measures: Dict[IRI, np.ndarray] = field(default_factory=dict)

    @property
    def size(self) -> int:
        for array in self.coordinates.values():
            return int(array.shape[0])
        for array in self.measures.values():
            return int(array.shape[0])
        return 0


@dataclass
class StarSchema:
    """The complete materialized DW."""

    dataset: IRI
    dimensions: Dict[IRI, DimensionTable] = field(default_factory=dict)
    facts: FactTable = field(default_factory=FactTable)
    #: measure IRI → aggregate keyword ("SUM", "AVG", ...)
    measure_aggregates: Dict[IRI, str] = field(default_factory=dict)

    def dimension(self, iri: IRI) -> DimensionTable:
        table = self.dimensions.get(iri)
        if table is None:
            raise KeyError(f"unknown dimension {iri}")
        return table

    def summary(self) -> str:
        lines = [f"Star schema for {self.dataset.value}",
                 f"  facts: {self.facts.size}"]
        for iri, table in sorted(self.dimensions.items(),
                                 key=lambda kv: kv[0].value):
            levels = ", ".join(
                f"{level.local_name()}({len(members)})"
                for level, members in sorted(
                    table.level_members.items(), key=lambda kv: kv[0].value))
            lines.append(f"  {iri.local_name()}: {levels}")
        return "\n".join(lines)
