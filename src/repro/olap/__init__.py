"""Native OLAP baseline: ETL a QB4OLAP cube into an in-memory star
schema and answer the same pipelines with numpy group-bys.

Implements the paper's "first approach" (extract Web MD data into a
traditional DW, ref. [2]) as both the E9 comparison baseline and the
correctness oracle for the QL → SPARQL path.
"""

from repro.olap.compare import ComparisonOutcome, compare_results
from repro.olap.engine import NativeOLAPEngine, NativeResult
from repro.olap.etl import ETLReport, extract_star_schema
from repro.olap.star import DimensionTable, FactTable, StarSchema

__all__ = [
    "ComparisonOutcome",
    "DimensionTable",
    "ETLReport",
    "FactTable",
    "NativeOLAPEngine",
    "NativeResult",
    "StarSchema",
    "compare_results",
    "extract_star_schema",
]
