"""Parallel evaluation of QL pipelines over a shared fact snapshot.

The morsel-driven idea of :mod:`repro.sparql.parallel`, carried up to
the star schema: the parent exports one compressed
:class:`~repro.olap.star.FactColumns` generation into shared memory
(through the same refcounted :data:`~repro.rdf.concurrency.
SHM_SEGMENTS` registry the SPARQL executor uses, so lifetime rules are
identical), and worker processes map the narrowed dimension-code and
measure columns **zero-copy** to compute per-group SUM/COUNT/MIN/MAX
partials over contiguous fact-row morsels.  The parent merges the
partials — SUM adds sums, COUNT adds counts, MIN/MAX take the extremum
of extrema, AVG divides merged sums by merged counts — applies
post-aggregation (measure) dices, and produces the same
:class:`~repro.olap.engine.NativeResult` the serial engine does.

What travels in each task is deliberately small: the shm manifest, a
row range, the kept axes' roll-up maps, and attribute dice conditions
pre-compiled into per-level ``member_ok`` boolean arrays (one entry
per member, not per fact).  The heavy per-fact columns never cross the
process boundary.

Worker-side code (``_worker_*``) obeys the same shared-nothing
contract as the SPARQL workers, enforced by the ``parallel-safety``
lint rule: it touches only the mapped arrays and the shipped task —
never the live star schema, endpoint, or parent-side registries.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf import shm
from repro.rdf.concurrency import SHM_SEGMENTS
from repro.rdf.terms import IRI, Term
from repro.ql.ast import (
    AttributePath,
    BooleanCondition,
    Comparison,
    DiceCondition,
    NotCondition,
)
from repro.ql.simplifier import SimplifiedProgram
from repro.olap.engine import (
    NativeOLAPEngine,
    NativeResult,
    OLAPEngineError,
    _compare_terms,
    _require_axis,
)
from repro.olap.star import FactColumns, StarSchema

__all__ = ["FACT_MORSEL_ROWS", "ParallelStarAggregator"]

#: Default fact rows per worker task.
FACT_MORSEL_ROWS = int(os.environ.get("REPRO_OLAP_MORSEL_ROWS", "16384"))

#: Process-wide name sequence: segment names must be unique per pid.
_SEGMENT_SEQ = itertools.count(1)


def _segment_name() -> str:
    return f"{shm.SEGMENT_PREFIX}{os.getpid()}_facts{next(_SEGMENT_SEQ)}"


# ---------------------------------------------------------------------------
# worker side (shared-nothing: see the parallel-safety lint rule)
# ---------------------------------------------------------------------------

#: Per-worker attach cache: segment name -> (handle, mapped views).
#: Pruned to the current task's segment each run so stale fact
#: generations do not pin dead segments in long-lived workers.
_WORKER_FACTS: Dict[str, Tuple[object, Dict[str, np.ndarray]]] = {}


def _worker_facts(manifest: shm.ArraysManifest) -> Dict[str, np.ndarray]:
    for name in list(_WORKER_FACTS):
        if name != manifest.segment:
            del _WORKER_FACTS[name]
    cached = _WORKER_FACTS.get(manifest.segment)
    if cached is None:
        cached = shm.attach_arrays(manifest)
        _WORKER_FACTS[manifest.segment] = cached
    return cached[1]


def _worker_dice_mask(spec: Dict[str, Any],
                      level_codes: Sequence[np.ndarray],
                      n: int) -> np.ndarray:
    """Evaluate one pre-compiled attribute dice spec over a morsel."""
    op = spec["op"]
    if op == "cmp":
        codes = level_codes[spec["axis"]]
        mask = np.zeros(n, dtype=bool)
        valid = codes >= 0
        mask[valid] = spec["ok"][codes[valid]]
        return mask
    if op in ("AND", "OR"):
        masks = [_worker_dice_mask(operand, level_codes, n)
                 for operand in spec["operands"]]
        combined = masks[0]
        for mask in masks[1:]:
            combined = combined & mask if op == "AND" else combined | mask
        return combined
    if op == "NOT":
        return ~_worker_dice_mask(spec["operand"], level_codes, n)
    raise ValueError(f"unknown dice spec op {op!r}")


def _worker_star_run(task: Dict[str, Any]) -> Dict[str, Any]:
    """One fact morsel: roll codes up, filter, group, return partials.

    Returns per-group ``(keys, sums, counts, mins, maxs)`` arrays —
    one sum/count/min/max column per queried measure, so the parent
    can finish any of SUM/COUNT/AVG/MIN/MAX from the same payload.
    """
    views = _worker_facts(task["manifest"])
    lo, hi = task["range"]
    n = hi - lo

    level_codes: List[np.ndarray] = []
    keep = np.ones(n, dtype=bool)
    for coord_key, ancestor in task["axes"]:
        bottom = views[coord_key][lo:hi].astype(np.int64, copy=False)
        codes = np.full(n, -1, dtype=np.int64)
        valid = bottom >= 0
        codes[valid] = ancestor[bottom[valid]]
        keep &= codes >= 0
        level_codes.append(codes)

    measure_slices = [views[key][lo:hi] for key in task["measures"]]
    for values in measure_slices:
        keep &= ~np.isnan(values)

    for spec in task["dices"]:
        keep &= _worker_dice_mask(spec, level_codes, n)

    rows = np.flatnonzero(keep)
    axes = len(level_codes)
    if not len(rows):
        return {"keys": np.empty((0, axes), dtype=np.int64),
                "sums": [], "counts": [], "mins": [], "maxs": []}
    if axes:
        stacked = np.stack([codes[rows] for codes in level_codes], axis=1)
        keys, inverse = np.unique(stacked, axis=0, return_inverse=True)
    else:
        keys = np.zeros((1, 0), dtype=np.int64)
        inverse = np.zeros(len(rows), dtype=np.int64)
    groups = keys.shape[0]

    sums: List[np.ndarray] = []
    counts: List[np.ndarray] = []
    mins: List[np.ndarray] = []
    maxs: List[np.ndarray] = []
    for values in measure_slices:
        kept_values = values[rows]
        total = np.zeros(groups)
        count = np.zeros(groups)
        np.add.at(total, inverse, kept_values)
        np.add.at(count, inverse, 1.0)
        low = np.full(groups, np.inf)
        high = np.full(groups, -np.inf)
        np.minimum.at(low, inverse, kept_values)
        np.maximum.at(high, inverse, kept_values)
        sums.append(total)
        counts.append(count)
        mins.append(low)
        maxs.append(high)
    return {"keys": keys, "sums": sums, "counts": counts,
            "mins": mins, "maxs": maxs}


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class ParallelStarAggregator:
    """Evaluates simplified QL programs across a worker pool, reading
    facts from one pinned shared-memory :class:`FactColumns` snapshot.

    Semantics match :class:`~repro.olap.engine.NativeOLAPEngine`
    exactly (same keep/drop rules, same typed errors, same
    empty-group cell handling); only the fact scan is fanned out.
    The serial engine is also kept around for post-aggregation dice
    evaluation, which runs over per-group arrays and needs no facts.
    """

    def __init__(self, star: StarSchema, workers: int = 4,
                 morsel_rows: int = FACT_MORSEL_ROWS) -> None:
        self.star = star
        self.workers = max(1, int(workers))
        self.morsel_rows = max(1, int(morsel_rows))
        self._engine = NativeOLAPEngine(star)
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._columns: Optional[FactColumns] = None
        self._pinned: Optional[Tuple[object, ...]] = None
        self.telemetry: Dict[str, int] = {"queries": 0, "morsels": 0}

    # -- lifecycle -----------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                context = multiprocessing.get_context("spawn")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context)
            return self._pool

    def _pin_export(self) -> Tuple[Tuple[object, ...], shm.ArraysManifest]:
        """Pin (exporting on first sight) the fact snapshot; one
        segment per aggregator per star epoch, refcounted by the
        registry.  Every pin is matched by an ``unpin`` when the query
        finishes; :meth:`close` retires the key afterwards."""
        key = ("facts", id(self), self.star.epoch)

        def build() -> Tuple[object, Sequence[object]]:
            columns = self.star.fact_columns()
            arrays: Dict[str, np.ndarray] = {}
            for iri, codes in sorted(columns.coordinates.items(),
                                     key=lambda kv: kv[0].value):
                arrays[f"c:{iri.value}"] = codes
            for iri, values in sorted(columns.measures.items(),
                                      key=lambda kv: kv[0].value):
                arrays[f"m:{iri.value}"] = values
            segment, manifest = shm.export_arrays(
                arrays, _segment_name(), epoch=columns.epoch)
            return (manifest, columns), (segment,)

        manifest, columns = SHM_SEGMENTS.pin_or_export(key, build)
        with self._lock:
            self._columns = columns
            self._pinned = key
        return key, manifest

    def close(self) -> None:
        """Shut the pool down and retire the fact segment.  Idempotent;
        afterwards no segment exported by this aggregator remains
        (provided no query is still running)."""
        with self._lock:
            pool, self._pool = self._pool, None
            pinned, self._pinned = self._pinned, None
            self._columns = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        if pinned is not None:
            SHM_SEGMENTS.retire(pinned)

    # -- query compilation ---------------------------------------------------

    def _dice_spec(self, condition: DiceCondition, kept: List[IRI],
                   axis_levels: Dict[IRI, IRI]) -> Dict[str, Any]:
        """Compile an attribute dice into per-member boolean arrays —
        the worker never sees terms, only ``member_ok[code]``."""
        if isinstance(condition, Comparison):
            assert isinstance(condition.operand, AttributePath)
            path = condition.operand
            axis = _require_axis(kept, path.dimension)
            table = self.star.dimension(path.dimension)
            level = axis_levels[path.dimension]
            members = table.members_at(level)
            values = table.attribute_values(level, path.attribute)
            member_ok = np.zeros(len(members), dtype=bool)
            for code, member in enumerate(members):
                member_ok[code] = _compare_terms(
                    values.get(member), condition.op, condition.value)
            return {"op": "cmp", "axis": axis, "ok": member_ok}
        if isinstance(condition, BooleanCondition):
            return {"op": condition.op,
                    "operands": [self._dice_spec(operand, kept, axis_levels)
                                 for operand in condition.operands]}
        if isinstance(condition, NotCondition):
            return {"op": "NOT",
                    "operand": self._dice_spec(condition.operand, kept,
                                               axis_levels)}
        raise OLAPEngineError(f"unknown condition {condition!r}")

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, program: SimplifiedProgram) -> NativeResult:
        """Evaluate ``program`` across the pool; cell-identical to the
        serial engine (float associativity aside)."""
        if program.state is None:
            raise OLAPEngineError("program lacks a checked cube state")
        started = time.perf_counter()
        state = program.state
        key, manifest = self._pin_export()
        try:
            return self._evaluate_pinned(program, state, manifest, started)
        finally:
            SHM_SEGMENTS.unpin(key)

    def _evaluate_pinned(self, program: SimplifiedProgram, state,
                         manifest: shm.ArraysManifest,
                         started: float) -> NativeResult:
        columns = self._columns
        if columns is None:
            raise OLAPEngineError("fact snapshot vanished mid-query "
                                  "(close() raced evaluate())")
        n = columns.rows

        kept = sorted(state.levels, key=lambda iri: iri.value)
        axis_levels = {iri: state.levels[iri] for iri in kept}
        axes = [(f"c:{iri.value}",
                 self.star.dimension(iri).map_to_level(axis_levels[iri]))
                for iri in kept]
        measures = sorted(state.measures, key=lambda iri: iri.value)
        measure_keys = [f"m:{iri.value}" for iri in measures]
        dices = [self._dice_spec(condition, kept, axis_levels)
                 for condition in program.dices
                 if not condition.measure_refs()]

        tasks: List[Dict[str, Any]] = []
        start = 0
        while start < n:
            stop = min(start + self.morsel_rows, n)
            tasks.append({"manifest": manifest, "range": (start, stop),
                          "axes": axes, "measures": measure_keys,
                          "dices": dices})
            start = stop
        self.telemetry["queries"] += 1
        self.telemetry["morsels"] += len(tasks)

        pool = self._ensure_pool()
        try:
            payloads = list(pool.map(_worker_star_run, tasks))
        except BrokenProcessPool:
            with self._lock:
                pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            raise OLAPEngineError(
                "parallel OLAP worker died mid-morsel; the pool will be "
                "rebuilt for the next query") from None

        unique_keys, aggregated = self._merge(payloads, measures, len(kept))
        group_count = unique_keys.shape[0]

        cell_mask = np.ones(group_count, dtype=bool)
        for condition in program.dices:
            if not condition.measure_refs():
                continue
            cell_mask &= self._engine._cell_mask(
                condition, kept, axis_levels, unique_keys, aggregated,
                group_count)

        cells: Dict[Tuple[Term, ...], Dict[IRI, float]] = {}
        member_lists = [
            self.star.dimension(iri).members_at(axis_levels[iri])
            for iri in kept]
        for group in np.flatnonzero(cell_mask):
            key = tuple(
                member_lists[axis][int(unique_keys[group, axis])]
                for axis in range(len(kept)))
            cells[key] = {
                measure: float(values[group])
                for measure, (values, valid) in aggregated.items()
                if valid[group]}
        elapsed = time.perf_counter() - started
        return NativeResult(axis_levels=axis_levels, cells=cells,
                            dimension_order=kept, seconds=elapsed)

    def _merge(self, payloads: List[Dict[str, Any]], measures: List[IRI],
               axes: int) -> Tuple[np.ndarray,
                                   Dict[IRI, Tuple[np.ndarray, np.ndarray]]]:
        """Fold morsel partials into final per-group aggregates."""
        key_parts = [p["keys"] for p in payloads if p["keys"].shape[0]]
        if not key_parts:
            if axes == 0:
                # a scalar query (no GROUP BY) over zero kept facts
                # still has ONE group in SPARQL: SUM/COUNT bound at 0,
                # AVG/MIN/MAX unbound — mirror the serial engine
                aggregated: Dict[IRI, Tuple[np.ndarray, np.ndarray]] = {}
                for measure in measures:
                    keyword = self.star.measure_aggregates.get(measure,
                                                               "SUM")
                    bound = keyword in ("SUM", "COUNT")
                    aggregated[measure] = (
                        np.zeros(1) if bound else np.full(1, np.nan),
                        np.full(1, bound))
                return np.zeros((1, 0), dtype=np.int64), aggregated
            empty = np.empty((0, axes), dtype=np.int64)
            nothing = np.empty(0)
            return empty, {measure: (nothing, np.empty(0, dtype=bool))
                           for measure in measures}
        all_keys = np.concatenate(key_parts, axis=0)
        unique_keys, inverse = np.unique(all_keys, axis=0,
                                         return_inverse=True)
        groups = unique_keys.shape[0]
        offsets: List[np.ndarray] = []
        cursor = 0
        for part in key_parts:
            offsets.append(inverse[cursor:cursor + part.shape[0]])
            cursor += part.shape[0]

        aggregated: Dict[IRI, Tuple[np.ndarray, np.ndarray]] = {}
        for index, measure in enumerate(measures):
            sums = np.zeros(groups)
            counts = np.zeros(groups)
            mins = np.full(groups, np.inf)
            maxs = np.full(groups, -np.inf)
            part = 0
            for payload in payloads:
                if not payload["keys"].shape[0]:
                    continue
                target = offsets[part]
                part += 1
                np.add.at(sums, target, payload["sums"][index])
                np.add.at(counts, target, payload["counts"][index])
                np.minimum.at(mins, target, payload["mins"][index])
                np.maximum.at(maxs, target, payload["maxs"][index])
            defined = counts > 0
            keyword = self.star.measure_aggregates.get(measure, "SUM")
            always = np.ones(groups, dtype=bool)
            if keyword == "SUM":
                aggregated[measure] = (sums, always)
            elif keyword == "COUNT":
                aggregated[measure] = (counts, always)
            elif keyword == "AVG":
                out = np.full(groups, np.nan)
                np.divide(sums, counts, out=out, where=defined)
                aggregated[measure] = (out, defined)
            elif keyword == "MIN":
                mins[~defined] = np.nan
                aggregated[measure] = (mins, defined)
            elif keyword == "MAX":
                maxs[~defined] = np.nan
                aggregated[measure] = (maxs, defined)
            else:
                raise OLAPEngineError(f"unknown aggregate {keyword!r}")
        return unique_keys, aggregated

    def describe(self, program: SimplifiedProgram) -> str:
        """The EXPLAIN-style fan-out line for ``program``."""
        n = self.star.facts.size
        morsels = (n + self.morsel_rows - 1) // self.morsel_rows
        measures = sorted(
            (program.state.measures if program.state else []),
            key=lambda iri: iri.value)
        spec = ",".join(
            f"{self.star.measure_aggregates.get(iri, 'SUM')}"
            f"({iri.local_name()})" for iri in measures)
        return (f"parallel-olap: workers={self.workers} morsels={morsels} "
                f"facts={n} epoch={self.star.epoch} agg={spec}")

    def __repr__(self) -> str:
        return (f"<ParallelStarAggregator workers={self.workers} "
                f"morsel_rows={self.morsel_rows} "
                f"queries={self.telemetry['queries']}>")
