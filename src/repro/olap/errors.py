"""Typed error taxonomy for the native OLAP engine.

The native engine sits on the same serving path as the SPARQL
endpoint (E9 comparisons, the :mod:`repro.olap.compare` oracle, and —
through the QL executor — user-facing query evaluation), so its
failures follow the same contract established by the governor layer:
every error a caller can see is an :class:`~repro.sparql.errors.
EndpointError` subclass with a stable machine-readable ``code``.

Two raise sites used to leak raw ``ValueError``:

* a QL dice referencing a dimension that the pipeline sliced away
  (``kept.index(...)`` on a missing axis);
* a measure dice whose right-hand side is not a numeric literal
  (``float()`` over an arbitrary lexical form).

Both now surface as the typed classes below; the ``error-taxonomy``
lint rule scopes :mod:`repro.olap.engine` to keep it that way.
"""

from __future__ import annotations

from repro.sparql.errors import EndpointError

__all__ = ["OLAPEngineError", "UnknownAxisError", "DiceTypeError"]


class OLAPEngineError(EndpointError):
    """Base class for native-engine evaluation failures."""

    code = "olap_error"


class UnknownAxisError(OLAPEngineError):
    """A dice (or rollup target) referenced a dimension that is not an
    axis of the cube at this point of the pipeline — usually because an
    earlier ``SLICE`` removed it."""

    code = "olap_unknown_axis"


class DiceTypeError(OLAPEngineError):
    """A dice condition compared a measure against something that has
    no numeric value (a non-literal term, or a literal whose lexical
    form is not numeric)."""

    code = "olap_dice_type"
