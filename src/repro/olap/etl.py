"""ETL: extract a QB4OLAP cube from RDF into the star schema.

The "first approach" of the paper's introduction: "extracting MD data
from the Web, and loading them into traditional DWs for OLAP analysis"
(ref. [2]).  The extraction walks the same QB4OLAP metadata QL uses —
so the two engines answer from identical information — then
dictionary-encodes facts into numpy arrays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rdf.graph import Graph
from repro.rdf.namespace import SKOS
from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.endpoint import LocalEndpoint
from repro.qb import vocabulary as qb
from repro.qb4olap import vocabulary as qb4o
from repro.qb4olap.model import CubeSchema
from repro.olap.star import DimensionTable, FactTable, StarSchema


@dataclass
class ETLReport:
    """Cost accounting for the extraction (the price the baseline pays)."""

    seconds: float
    facts: int
    dimension_rows: int
    #: SPARQL plan-cache misses observed while materializing.  The
    #: member-at-a-time walks underneath share parameterized plans, so
    #: this should stay near the number of distinct query *shapes*, not
    #: the number of members (see docs/performance.md).
    plan_cache_misses: int = 0


def extract_star_schema(endpoint: LocalEndpoint, schema: CubeSchema
                        ) -> Tuple[StarSchema, ETLReport]:
    """Materialize the star schema for ``schema`` from ``endpoint``."""
    from repro.sparql.optimizer import PLAN_CACHE
    misses_before = PLAN_CACHE.misses
    started = time.perf_counter()
    graph = endpoint.dataset.union()
    star = StarSchema(dataset=schema.dataset)
    dimension_rows = 0

    for dimension in schema.dimensions:
        bottom = schema.bottom_level(dimension.iri)
        table = _extract_dimension(graph, schema, dimension.iri, bottom)
        star.dimensions[dimension.iri] = table
        dimension_rows += sum(
            len(members) for members in table.level_members.values())

    for measure in schema.measures:
        star.measure_aggregates[measure.iri] = measure.sparql_aggregate()

    _extract_facts(graph, schema, star)
    elapsed = time.perf_counter() - started
    return star, ETLReport(seconds=elapsed, facts=star.facts.size,
                           dimension_rows=dimension_rows,
                           plan_cache_misses=PLAN_CACHE.misses
                           - misses_before)


def _extract_dimension(graph: Graph, schema: CubeSchema,
                       dimension_iri: IRI, bottom: IRI) -> DimensionTable:
    bottom_members = sorted(
        graph.subjects(qb4o.memberOf, bottom),
        key=lambda t: getattr(t, "value", str(t)))
    table = DimensionTable(
        dimension=dimension_iri,
        bottom_level=bottom,
        bottom_members=list(bottom_members),
    )
    _attach_attributes(graph, schema, table, bottom, bottom_members)

    dimension = schema.require_dimension(dimension_iri)
    for hierarchy in dimension.hierarchies:
        # walk every level reachable from the bottom, composing maps
        reachable = [level for level in hierarchy.levels if level != bottom]
        for level in reachable:
            path = hierarchy.path_up(bottom, level)
            if path is None:
                continue
            members, ancestor = _compose_rollups(graph, table, path)
            table.level_members[level] = members
            table.ancestor_maps[level] = ancestor
            _attach_attributes(graph, schema, table, level, members)
    return table


def _compose_rollups(graph: Graph, table: DimensionTable,
                     path: List[IRI]) -> Tuple[List[Term], np.ndarray]:
    """Compose skos:broader hops along ``path`` into one bottom→top map."""
    current_members = table.bottom_members
    current_map = np.arange(len(current_members), dtype=np.int64)
    for child_level, parent_level in zip(path, path[1:]):
        parent_members = sorted(
            graph.subjects(qb4o.memberOf, parent_level),
            key=lambda t: getattr(t, "value", str(t)))
        parent_index = {member: code for code, member
                        in enumerate(parent_members)}
        hop = np.full(len(current_members), -1, dtype=np.int64)
        for code, member in enumerate(current_members):
            for target in graph.objects(member, SKOS.broader):
                parent_code = parent_index.get(target)
                if parent_code is not None:
                    hop[code] = parent_code
                    break
        # compose: bottom → current → parent
        composed = np.full_like(current_map, -1)
        valid = current_map >= 0
        composed[valid] = hop[current_map[valid]]
        current_map = composed
        current_members = parent_members
    return current_members, current_map


def _attach_attributes(graph: Graph, schema: CubeSchema,
                       table: DimensionTable, level: IRI,
                       members: List[Term]) -> None:
    attributes = schema.attributes_of(level)
    if not attributes:
        return
    per_level = table.attributes.setdefault(level, {})
    for attribute in attributes:
        values: Dict[Term, Term] = {}
        for member in members:
            value = graph.value(member, attribute, None)
            if value is not None:
                values[member] = value
        per_level[attribute] = values


def _extract_facts(graph: Graph, schema: CubeSchema,
                   star: StarSchema) -> None:
    dimension_order = sorted(star.dimensions, key=lambda iri: iri.value)
    bottoms = {iri: schema.bottom_level(iri) for iri in dimension_order}
    observations = list(graph.subjects(qb.dataSet, schema.dataset))
    observations.sort(key=lambda t: getattr(t, "value", str(t)))
    n = len(observations)

    coordinate_arrays = {
        iri: np.full(n, -1, dtype=np.int64) for iri in dimension_order}
    measure_arrays = {
        measure.iri: np.zeros(n, dtype=np.float64)
        for measure in schema.measures}

    for row, observation in enumerate(observations):
        properties = graph.subject_predicates(observation)
        for iri in dimension_order:
            bottom_prop = bottoms[iri]
            values = properties.get(bottom_prop)
            if values:
                code = star.dimensions[iri].bottom_code(next(iter(values)))
                if code is not None:
                    coordinate_arrays[iri][row] = code
        for measure in schema.measures:
            values = properties.get(measure.iri)
            if values:
                term = next(iter(values))
                if isinstance(term, Literal):
                    value = term.value
                    if not isinstance(value, str):
                        measure_arrays[measure.iri][row] = float(value)

    star.facts = FactTable(coordinates=coordinate_arrays,
                           measures=measure_arrays)
