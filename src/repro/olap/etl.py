"""ETL: extract a QB4OLAP cube from RDF into the star schema.

The "first approach" of the paper's introduction: "extracting MD data
from the Web, and loading them into traditional DWs for OLAP analysis"
(ref. [2]).  The extraction walks the same QB4OLAP metadata QL uses —
so the two engines answer from identical information — then
dictionary-encodes facts into numpy arrays.

Two fact extractors share one output contract:

* the **vectorized** extractor (default) never touches observations
  one at a time: each bottom property / measure is one
  ``match_arrays`` gather of the columnar storage tier, joined to fact
  rows and member codes with ``np.searchsorted`` over sorted id
  arrays.  This is the ETL analogue of the evaluator's columnar scan
  path, and what makes the E9 baseline's "pay ETL once" price honest
  at scale;
* the **per-observation** extractor (``vectorized=False``) walks
  ``subject_predicates`` row by row — kept as the semantics reference
  and the benchmark comparator (``benchmarks/check_olap.py`` gates the
  vectorized path's speedup against it).

Both are **deterministic**: when an observation carries several values
for one dimension or measure property, the extractor keeps the
*minimum term by sorted key* (:func:`deterministic_key`) instead of
whatever a set yields first, and roll-up composition picks the
smallest eligible ``skos:broader`` target the same way — so two ETL
runs over the same data produce byte-identical fact tables.

Missing values follow the SPARQL path's join semantics: a fact without
a usable value carries ``-1`` (dimension code) or ``NaN`` (measure),
and the engine drops such rows for any query touching that column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rdf.graph import Graph
from repro.rdf.namespace import SKOS
from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.endpoint import LocalEndpoint
from repro.qb import vocabulary as qb
from repro.qb4olap import vocabulary as qb4o
from repro.qb4olap.model import CubeSchema
from repro.olap.star import DimensionTable, FactTable, StarSchema


@dataclass
class ETLReport:
    """Cost accounting for the extraction (the price the baseline pays)."""

    seconds: float
    facts: int
    dimension_rows: int
    #: SPARQL plan-cache misses observed while materializing.  The
    #: member-at-a-time walks underneath share parameterized plans, so
    #: this should stay near the number of distinct query *shapes*, not
    #: the number of members (see docs/performance.md).
    plan_cache_misses: int = 0
    #: whether the columnar fact extractor ran (False = the
    #: per-observation reference extractor was requested or forced)
    vectorized: bool = True


def deterministic_key(term: Term) -> Tuple[str, str]:
    """Total order over terms used for multi-value tie-breaks.

    Hash-order-free: two runs (or two insertion orders) always pick
    the same winner.  The class name keeps IRIs, literals and blank
    nodes in separate bands; within a band the lexical value decides.
    """
    return (term.__class__.__name__, str(getattr(term, "value", term)))


def extract_star_schema(endpoint: LocalEndpoint, schema: CubeSchema,
                        vectorized: bool = True
                        ) -> Tuple[StarSchema, ETLReport]:
    """Materialize the star schema for ``schema`` from ``endpoint``."""
    from repro.sparql.optimizer import PLAN_CACHE
    misses_before = PLAN_CACHE.misses
    started = time.perf_counter()
    graph = endpoint.dataset.union()
    star = StarSchema(dataset=schema.dataset,
                      epoch=max((g.epoch for g in endpoint.dataset.graphs()),
                                default=0))
    dimension_rows = 0

    for dimension in schema.dimensions:
        bottom = schema.bottom_level(dimension.iri)
        table = _extract_dimension(graph, schema, dimension.iri, bottom)
        star.dimensions[dimension.iri] = table
        dimension_rows += sum(
            len(members) for members in table.level_members.values())

    for measure in schema.measures:
        star.measure_aggregates[measure.iri] = measure.sparql_aggregate()

    if vectorized:
        _extract_facts_vectorized(graph, schema, star)
    else:
        _extract_facts(graph, schema, star)
    elapsed = time.perf_counter() - started
    return star, ETLReport(seconds=elapsed, facts=star.facts.size,
                           dimension_rows=dimension_rows,
                           plan_cache_misses=PLAN_CACHE.misses
                           - misses_before,
                           vectorized=vectorized)


def _extract_dimension(graph: Graph, schema: CubeSchema,
                       dimension_iri: IRI, bottom: IRI) -> DimensionTable:
    bottom_members = sorted(
        graph.subjects(qb4o.memberOf, bottom),
        key=lambda t: getattr(t, "value", str(t)))
    table = DimensionTable(
        dimension=dimension_iri,
        bottom_level=bottom,
        bottom_members=list(bottom_members),
    )
    _attach_attributes(graph, schema, table, bottom, bottom_members)

    dimension = schema.require_dimension(dimension_iri)
    for hierarchy in dimension.hierarchies:
        # walk every level reachable from the bottom, composing maps
        reachable = [level for level in hierarchy.levels if level != bottom]
        for level in reachable:
            path = hierarchy.path_up(bottom, level)
            if path is None:
                continue
            members, ancestor = _compose_rollups(graph, table, path)
            table.level_members[level] = members
            table.ancestor_maps[level] = ancestor
            _attach_attributes(graph, schema, table, level, members)
    return table


def _compose_rollups(graph: Graph, table: DimensionTable,
                     path: List[IRI]) -> Tuple[List[Term], np.ndarray]:
    """Compose skos:broader hops along ``path`` into one bottom→top map."""
    current_members = table.bottom_members
    current_map = np.arange(len(current_members), dtype=np.int64)
    for child_level, parent_level in zip(path, path[1:]):
        parent_members = sorted(
            graph.subjects(qb4o.memberOf, parent_level),
            key=lambda t: getattr(t, "value", str(t)))
        parent_index = {member: code for code, member
                        in enumerate(parent_members)}
        hop = np.full(len(current_members), -1, dtype=np.int64)
        for code, member in enumerate(current_members):
            # a member with several eligible broader targets rolls up
            # to the smallest by deterministic_key — never hash order
            targets = [target for target
                       in graph.objects(member, SKOS.broader)
                       if target in parent_index]
            if targets:
                hop[code] = parent_index[min(targets,
                                             key=deterministic_key)]
        # compose: bottom → current → parent
        composed = np.full_like(current_map, -1)
        valid = current_map >= 0
        composed[valid] = hop[current_map[valid]]
        current_map = composed
        current_members = parent_members
    return current_members, current_map


def _attach_attributes(graph: Graph, schema: CubeSchema,
                       table: DimensionTable, level: IRI,
                       members: List[Term]) -> None:
    attributes = schema.attributes_of(level)
    if not attributes:
        return
    per_level = table.attributes.setdefault(level, {})
    for attribute in attributes:
        values: Dict[Term, Term] = {}
        for member in members:
            candidates = list(graph.objects(member, attribute))
            if candidates:
                values[member] = min(candidates, key=deterministic_key)
        per_level[attribute] = values


def _measure_value(term: Term) -> float:
    """The float payload of a measure term; NaN when it has none."""
    if isinstance(term, Literal):
        value = term.value
        if isinstance(value, bool):
            return float(value)
        if not isinstance(value, str):
            try:
                return float(value)
            except (TypeError, ValueError):
                return float("nan")
    return float("nan")


# ---------------------------------------------------------------------------
# per-observation reference extractor (``vectorized=False``)
# ---------------------------------------------------------------------------


def _extract_facts(graph: Graph, schema: CubeSchema,
                   star: StarSchema) -> None:
    dimension_order = sorted(star.dimensions, key=lambda iri: iri.value)
    bottoms = {iri: schema.bottom_level(iri) for iri in dimension_order}
    observations = list(graph.subjects(qb.dataSet, schema.dataset))
    observations.sort(key=lambda t: getattr(t, "value", str(t)))
    n = len(observations)

    coordinate_arrays = {
        iri: np.full(n, -1, dtype=np.int64) for iri in dimension_order}
    measure_arrays = {
        measure.iri: np.full(n, np.nan, dtype=np.float64)
        for measure in schema.measures}

    for row, observation in enumerate(observations):
        properties = graph.subject_predicates(observation)
        for iri in dimension_order:
            bottom_prop = bottoms[iri]
            values = properties.get(bottom_prop)
            if values:
                code = star.dimensions[iri].bottom_code(
                    min(values, key=deterministic_key))
                if code is not None:
                    coordinate_arrays[iri][row] = code
        for measure in schema.measures:
            values = properties.get(measure.iri)
            if values:
                term = min(values, key=deterministic_key)
                measure_arrays[measure.iri][row] = _measure_value(term)

    star.facts = FactTable(coordinates=coordinate_arrays,
                           measures=measure_arrays)


# ---------------------------------------------------------------------------
# vectorized columnar extractor (default)
# ---------------------------------------------------------------------------


def _gather_pairs(graph: Graph, predicate: Optional[int]
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """All ``(subject, object)`` id pairs carrying ``predicate``.

    Serves from the columnar tier (``match_arrays`` — zero-copy range
    views) whenever a graph can; graphs mid-mutation (pending
    tombstones, no generation yet) fall back to the id iterator.  The
    union view composes per member graph.
    """
    if predicate is None:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    pattern = (None, predicate, None)
    graphs = graph._graphs() if hasattr(graph, "_graphs") else [graph]
    subjects: List[np.ndarray] = []
    objects: List[np.ndarray] = []
    for member in graphs:
        arrays = member.match_arrays(pattern) \
            if hasattr(member, "match_arrays") else None
        if arrays is not None:
            subjects.append(arrays[0].astype(np.int64, copy=False))
            objects.append(arrays[2].astype(np.int64, copy=False))
            continue
        pairs = [(s, o) for s, _p, o in member.triples_ids(pattern)]
        gathered = np.asarray(pairs, dtype=np.int64) if pairs \
            else np.empty((0, 2), dtype=np.int64)
        subjects.append(gathered[:, 0] if pairs
                        else np.empty(0, dtype=np.int64))
        objects.append(gathered[:, 1] if pairs
                       else np.empty(0, dtype=np.int64))
    if not subjects:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(subjects), np.concatenate(objects)


def _rows_for(subjects: np.ndarray, obs_sorted: np.ndarray,
              obs_rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Join subject ids to fact row numbers (searchsorted membership).

    Returns ``(keep_mask, rows)``: which gathered pairs belong to this
    dataset's observations, and the fact row of each kept pair.
    """
    positions = np.searchsorted(obs_sorted, subjects)
    positions_clipped = np.minimum(positions, len(obs_sorted) - 1)
    keep = obs_sorted[positions_clipped] == subjects
    return keep, obs_rows[positions_clipped[keep]]


def _first_per_row(rows: np.ndarray, rank: np.ndarray,
                   n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Pick, per fact row, the candidate with the smallest ``rank``.

    The vectorized multi-value tie-break: sorting by ``(row, rank)``
    and keeping each row's first entry selects exactly the minimum
    deterministic-key term the reference extractor picks.
    """
    order = np.lexsort((rank, rows))
    sorted_rows = rows[order]
    firsts = np.ones(len(sorted_rows), dtype=bool)
    firsts[1:] = sorted_rows[1:] != sorted_rows[:-1]
    return sorted_rows[firsts], order[firsts]


def _extract_facts_vectorized(graph: Graph, schema: CubeSchema,
                              star: StarSchema) -> None:
    dictionary = graph.dictionary
    lookup = dictionary.lookup
    decode = dictionary.decode
    dimension_order = sorted(star.dimensions, key=lambda iri: iri.value)
    bottoms = {iri: schema.bottom_level(iri) for iri in dimension_order}

    # -- fact rows: observations of this dataset, sorted by term value
    dataset_id = lookup(schema.dataset)
    predicate_id = lookup(qb.dataSet)
    if dataset_id is None or predicate_id is None:
        obs_ids = np.empty(0, dtype=np.int64)
    else:
        pairs_s, pairs_o = _gather_pairs(graph, predicate_id)
        obs_ids = np.unique(pairs_s[pairs_o == dataset_id])
    observations = [decode(int(obs)) for obs in obs_ids]
    row_order = sorted(range(len(observations)),
                       key=lambda i: getattr(observations[i], "value",
                                             str(observations[i])))
    n = len(obs_ids)
    # obs_sorted is sorted by *id* for searchsorted joins; obs_rows maps
    # each sorted position back to the value-ordered fact row number
    obs_sorted = obs_ids  # np.unique output is already id-sorted
    rows_by_value = np.empty(n, dtype=np.int64)
    for row, index in enumerate(row_order):
        rows_by_value[index] = row
    obs_rows = rows_by_value

    coordinate_arrays: Dict[IRI, np.ndarray] = {}
    for iri in dimension_order:
        codes = np.full(n, -1, dtype=np.int64)
        bottom_prop = lookup(bottoms[iri])
        table = star.dimensions[iri]
        if bottom_prop is not None and n and table.bottom_members:
            subjects, objects = _gather_pairs(graph, bottom_prop)
            keep, rows = _rows_for(subjects, obs_sorted, obs_rows)
            objects = objects[keep]
            # member id → bottom code: members are value-sorted, so the
            # smallest code *is* the minimum deterministic-key member
            member_ids = np.asarray(
                [lookup(member) for member in table.bottom_members],
                dtype=np.int64)
            member_sort = np.argsort(member_ids, kind="stable")
            members_sorted = member_ids[member_sort]
            codes_sorted = np.arange(len(member_ids),
                                     dtype=np.int64)[member_sort]
            positions = np.searchsorted(members_sorted, objects)
            positions = np.minimum(positions, len(members_sorted) - 1)
            matched = members_sorted[positions] == objects
            rows, objects = rows[matched], objects[matched]
            member_codes = codes_sorted[positions[matched]]
            if len(rows):
                unique_rows, picks = _first_per_row(rows, member_codes, n)
                codes[unique_rows] = member_codes[picks]
        coordinate_arrays[iri] = codes

    measure_arrays: Dict[IRI, np.ndarray] = {}
    for measure in schema.measures:
        values = np.full(n, np.nan, dtype=np.float64)
        measure_prop = lookup(measure.iri)
        if measure_prop is not None and n:
            subjects, objects = _gather_pairs(graph, measure_prop)
            keep, rows = _rows_for(subjects, obs_sorted, obs_rows)
            objects = objects[keep]
            if len(rows):
                # decode each distinct literal once: its float payload
                # and its deterministic-key rank for multi-value picks
                unique_ids, inverse = np.unique(objects,
                                                return_inverse=True)
                terms = [decode(int(vid)) for vid in unique_ids]
                floats = np.asarray([_measure_value(term)
                                     for term in terms], dtype=np.float64)
                key_order = sorted(range(len(terms)),
                                   key=lambda i: deterministic_key(terms[i]))
                ranks = np.empty(len(terms), dtype=np.int64)
                for rank, index in enumerate(key_order):
                    ranks[index] = rank
                unique_rows, picks = _first_per_row(rows, ranks[inverse], n)
                values[unique_rows] = floats[inverse[picks]]
        measure_arrays[measure.iri] = values

    star.facts = FactTable(coordinates=coordinate_arrays,
                           measures=measure_arrays)
