"""Equivalence checking between the SPARQL path and the native engine.

Used by tests (oracle) and by E6/E9: for any QL program, the cube
computed through SPARQL must match the cube computed natively, cell by
cell, within floating-point tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rdf.terms import IRI, Literal, Term
from repro.ql.cube import ResultCube
from repro.olap.engine import NativeResult


@dataclass
class ComparisonOutcome:
    equal: bool
    missing_in_native: List[Tuple] = field(default_factory=list)
    missing_in_sparql: List[Tuple] = field(default_factory=list)
    value_mismatches: List[Tuple] = field(default_factory=list)

    def explain(self) -> str:
        if self.equal:
            return "results identical"
        parts = []
        if self.missing_in_native:
            parts.append(
                f"{len(self.missing_in_native)} cells only in SPARQL result")
        if self.missing_in_sparql:
            parts.append(
                f"{len(self.missing_in_sparql)} cells only in native result")
        if self.value_mismatches:
            parts.append(f"{len(self.value_mismatches)} value mismatches")
        return "; ".join(parts)


def compare_results(cube: ResultCube, native: NativeResult,
                    tolerance: float = 1e-9) -> ComparisonOutcome:
    """Cell-by-cell comparison of the two evaluation paths.

    The SPARQL cube's axes follow the translator's dimension order
    (sorted by IRI), as does the native engine — so coordinates align
    positionally.
    """
    outcome = ComparisonOutcome(equal=True)

    sparql_cells: Dict[Tuple[Term, ...], Dict[IRI, float]] = {}
    for key in cube.coordinates():
        values: Dict[IRI, float] = {}
        for measure in cube.measures:
            value = cube.value(measure, *key)
            if value is None:
                continue
            values[measure] = float(value)
        sparql_cells[key] = values

    native_cells = native.cells

    for key, values in sparql_cells.items():
        other = native_cells.get(key)
        if other is None:
            outcome.missing_in_native.append(key)
            outcome.equal = False
            continue
        for measure, value in values.items():
            native_value = other.get(measure)
            if native_value is None or abs(native_value - value) > tolerance:
                outcome.value_mismatches.append((key, measure, value,
                                                 native_value))
                outcome.equal = False
    for key in native_cells:
        if key not in sparql_cells:
            outcome.missing_in_sparql.append(key)
            outcome.equal = False
    return outcome
