"""DRILL-ACROSS: combining two cubes over conformed dimensions.

QL follows Ciferri et al.'s Cube Algebra (paper ref. [8]), whose
operation set includes **DRILL-ACROSS**: given two cubes that share
dimensions at the same granularity, produce one cube carrying the
measures of both.  The paper's demo stops at single-cube programs, but
its data setting is exactly the drill-across one — Eurostat publishes
asylum *applications* and asylum *decisions* as separate QB data sets
over the same citizenship/destination/time dictionaries — so this
module implements the operation as a documented extension.

Mechanics: each input is a full QL result (two independently translated
and executed programs).  Their result cubes are joined on the axes they
share — pairs with equal ``(dimension, level)`` — and the joined cube
carries every measure of both inputs, renamed where they collide.  The
join happens client-side on the materialized cubes, which matches the
paper's "the resulting cube is computed on-the-fly".

>>> # applications per continent/year  ⋈  decisions per continent/year
>>> combined = drill_across(apps_result.cube, decisions_result.cube,
...                         suffixes=("_apps", "_dec"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.results import ResultTable
from repro.ql.ast import QLProgram
from repro.ql.cube import Axis, ResultCube
from repro.ql.translator import DimensionBinding, TranslationMetadata


class DrillAcrossError(Exception):
    """Raised when two cubes cannot be drilled across."""


def shared_axes(left: ResultCube, right: ResultCube
                ) -> List[Tuple[Axis, Axis]]:
    """Axis pairs with equal dimension *and* level (conformed axes)."""
    pairs: List[Tuple[Axis, Axis]] = []
    for axis in left.axes:
        for other in right.axes:
            if (axis.dimension == other.dimension
                    and axis.level == other.level):
                pairs.append((axis, other))
                break
    return pairs


def _unique_alias(base: str, taken: set) -> str:
    alias = base
    counter = 2
    while alias in taken:
        alias = f"{base}{counter}"
        counter += 1
    taken.add(alias)
    return alias


def drill_across(left: ResultCube, right: ResultCube,
                 suffixes: Tuple[str, str] = ("_left", "_right"),
                 join: str = "inner") -> ResultCube:
    """Join two result cubes over their conformed axes.

    ``join`` is ``"inner"`` (cells present in both cubes) or ``"left"``
    (keep all left cells; missing right measures stay unbound).  Both
    cubes must share *all* of their axes — i.e. be at the same
    granularity — which is the Cube Algebra precondition; roll up or
    slice first to align them.
    """
    if join not in ("inner", "left"):
        raise DrillAcrossError(f"unknown join mode {join!r}")
    pairs = shared_axes(left, right)
    if not pairs:
        raise DrillAcrossError(
            "the cubes share no (dimension, level) axis — roll up to a "
            "common granularity first")
    if len(pairs) != len(left.axes) or len(pairs) != len(right.axes):
        left_only = [str(a) for a in left.axes
                     if not any(a is pair[0] for pair in pairs)]
        right_only = [str(a) for a in right.axes
                      if not any(a is pair[1] for pair in pairs)]
        raise DrillAcrossError(
            "granularity mismatch — unshared axes: "
            f"left={left_only}, right={right_only}; slice or roll up "
            "so both cubes range over the same axes")

    # output columns: one per shared axis + measures of both sides
    taken: set = set()
    axis_columns: List[str] = []
    out_bindings: List[DimensionBinding] = []
    for left_axis, _ in pairs:
        column = _unique_alias(left_axis.column, taken)
        axis_columns.append(column)
        out_bindings.append(DimensionBinding(
            dimension=left_axis.dimension,
            bottom_level=left_axis.level,
            final_level=left_axis.level,
            levels=[left_axis.level],
            variables=[column]))

    measure_aliases: Dict[IRI, str] = {}
    column_sources: List[Tuple[int, str]] = []  # (side, source column)
    for side, cube, suffix in ((0, left, suffixes[0]),
                               (1, right, suffixes[1])):
        other = right if side == 0 else left
        for measure, column in cube.measures.items():
            alias = column
            if measure in other.measures or alias in taken:
                alias = _unique_alias(column + suffix, taken)
            else:
                taken.add(alias)
            # per-side measure key: keep both sides addressable even
            # when they aggregate the same measure property
            key = measure if measure not in measure_aliases \
                else IRI(measure.value + suffix)
            measure_aliases[key] = alias
            column_sources.append((side, column))

    # index the right cube by its shared-axis coordinates
    right_axis_positions = [right.axes.index(pair[1]) for pair in pairs]
    right_cells: Dict[Tuple[Term, ...], Dict[str, Term]] = {}
    for coordinate in right.coordinates():
        key = tuple(coordinate[i] for i in right_axis_positions)
        right_cells[key] = right.cell(*coordinate) or {}

    left_axis_positions = [left.axes.index(pair[0]) for pair in pairs]
    names = axis_columns + [
        measure_aliases[key] for key in measure_aliases]
    rows: List[Tuple[Optional[Term], ...]] = []
    aliases_in_order = list(measure_aliases.values())
    for coordinate in left.coordinates():
        key = tuple(coordinate[i] for i in left_axis_positions)
        right_cell = right_cells.get(key)
        if right_cell is None and join == "inner":
            continue
        left_cell = left.cell(*coordinate) or {}
        row: List[Optional[Term]] = list(key)
        for (side, source_column), alias in zip(column_sources,
                                                aliases_in_order):
            if side == 0:
                row.append(left_cell.get(source_column))
            elif right_cell is not None:
                row.append(right_cell.get(source_column))
            else:
                row.append(None)
        rows.append(tuple(row))

    table = ResultTable(names, rows)
    metadata = TranslationMetadata(
        dimensions=out_bindings,
        measure_aliases=measure_aliases,
        group_variables=axis_columns)
    return ResultCube(table, metadata)


@dataclass
class DrillAcrossResult:
    """A drill-across execution: the joined cube plus both inputs."""

    cube: ResultCube
    left: "QLResult"
    right: "QLResult"


def execute_drill_across(engine_left, engine_right,
                         program_left: Union[str, QLProgram],
                         program_right: Union[str, QLProgram],
                         suffixes: Tuple[str, str] = ("_left", "_right"),
                         join: str = "inner") -> DrillAcrossResult:
    """Run two QL programs (one per cube engine) and join the results.

    The engines may share one endpoint (the usual case: both cubes live
    in the same endpoint, each with its own QB4OLAP schema).
    """
    left_result = engine_left.execute(program_left)
    right_result = engine_right.execute(program_right)
    cube = drill_across(left_result.cube, right_result.cube,
                        suffixes=suffixes, join=join)
    return DrillAcrossResult(cube=cube, left=left_result,
                             right=right_result)
