"""Fluent programmatic construction of QL programs.

Graphical OLAP tools "can be developed, and translated first into a
mediator language like QL" (paper §IV) — this builder is that
programmatic entry point: it produces the same
:class:`~repro.ql.ast.QLProgram` the text parser does.

>>> program = (QLBuilder(cube_iri)
...            .slice(asylapp_dim)
...            .rollup(citizenship_dim, continent_level)
...            .dice(attr(citizenship_dim, continent_level,
...                       continent_name) == "Africa")
...            .build())
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.rdf.terms import IRI, Literal
from repro.ql.ast import (
    AttributePath,
    BooleanCondition,
    Comparison,
    Dice,
    DiceCondition,
    DrillDown,
    MeasureRef,
    NotCondition,
    QLProgram,
    RollUp,
    Slice,
    Statement,
)


class ConditionBuilder:
    """Wraps a dice operand so comparison operators build conditions."""

    def __init__(self, operand: Union[AttributePath, MeasureRef]) -> None:
        self.operand = operand

    def _compare(self, op: str, value) -> Comparison:
        if not isinstance(value, (Literal, IRI)):
            value = Literal(value)
        return Comparison(self.operand, op, value)

    def __eq__(self, value) -> Comparison:  # type: ignore[override]
        return self._compare("=", value)

    def __ne__(self, value) -> Comparison:  # type: ignore[override]
        return self._compare("!=", value)

    def __lt__(self, value) -> Comparison:
        return self._compare("<", value)

    def __le__(self, value) -> Comparison:
        return self._compare("<=", value)

    def __gt__(self, value) -> Comparison:
        return self._compare(">", value)

    def __ge__(self, value) -> Comparison:
        return self._compare(">=", value)

    def __hash__(self) -> int:
        return hash(self.operand)


def attr(dimension: IRI, level: IRI, attribute: IRI) -> ConditionBuilder:
    """A ``dimension|level|attribute`` dice operand."""
    return ConditionBuilder(AttributePath(dimension, level, attribute))


def measure(measure_iri: IRI) -> ConditionBuilder:
    """A measure dice operand."""
    return ConditionBuilder(MeasureRef(measure_iri))


def all_of(*conditions: DiceCondition) -> DiceCondition:
    """AND-combination of dice conditions."""
    if len(conditions) == 1:
        return conditions[0]
    return BooleanCondition("AND", tuple(conditions))


def any_of(*conditions: DiceCondition) -> DiceCondition:
    """OR-combination of dice conditions."""
    if len(conditions) == 1:
        return conditions[0]
    return BooleanCondition("OR", tuple(conditions))


def negate(condition: DiceCondition) -> DiceCondition:
    """Negate a dice condition (builder-level NOT)."""
    return NotCondition(condition)


class QLBuilder:
    """Accumulates operations into a well-formed QL program."""

    def __init__(self, cube: IRI, variable_prefix: str = "$C") -> None:
        self.cube = cube
        self.variable_prefix = variable_prefix
        self._operations: List = []

    def rollup(self, dimension: IRI, level: IRI) -> "QLBuilder":
        self._operations.append(RollUp(dimension, level))
        return self

    def drilldown(self, dimension: IRI, level: IRI) -> "QLBuilder":
        self._operations.append(DrillDown(dimension, level))
        return self

    def slice(self, target: IRI) -> "QLBuilder":
        self._operations.append(Slice(target))
        return self

    def dice(self, condition: DiceCondition) -> "QLBuilder":
        self._operations.append(Dice(condition))
        return self

    def build(self) -> QLProgram:
        if not self._operations:
            raise ValueError("QL program needs at least one operation")
        program = QLProgram()
        previous: Union[str, IRI] = self.cube
        for index, operation in enumerate(self._operations, start=1):
            variable = f"{self.variable_prefix}{index}"
            program.statements.append(
                Statement(variable, previous, operation))
            previous = variable
        return program
