"""The Query Simplification Phase (paper §III-B).

"QL queries are automatically simplified to produce better ones (e.g.,
the user may have included unnecessary operations, or written them in a
non-optimal ordered sequence).  The current implementation applies the
following typical OLAP processing optimization rules: (a) perform SLICE
operations as soon as possible, to reduce the size of intermediate
results; and (b) group all the ROLLUP and DRILLDOWN operations over the
same dimension, and replace them with a single ROLLUP from the
dimension's bottom level to the latest level reached by the sequence."

The simplifier turns any valid pipeline into a canonical
:class:`SimplifiedProgram`:

* ``slices`` — every sliced dimension/measure (ordered first);
* ``rollups`` — one final target level per non-sliced dimension whose
  level moved (net effect of all its ROLLUP/DRILLDOWN hops);
* ``dices`` — the dice conditions, in order, at the end.

Roll-ups on dimensions that are later sliced are *dropped entirely* —
their aggregation work would be thrown away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rdf.terms import IRI
from repro.qb4olap.model import CubeSchema
from repro.ql.ast import (
    Dice,
    DiceCondition,
    DrillDown,
    Operation,
    QLProgram,
    RollUp,
    Slice,
)
from repro.ql.checker import CubeState, QLSemanticError, check_program


@dataclass
class SimplifiedProgram:
    """Canonical form of a QL pipeline."""

    cube: IRI
    slices: List[IRI] = field(default_factory=list)
    #: dimension → final level (only dimensions that moved off bottom)
    rollups: Dict[IRI, IRI] = field(default_factory=dict)
    dices: List[DiceCondition] = field(default_factory=list)
    #: final cube state (for result metadata)
    state: Optional[CubeState] = None
    #: prefix bindings inherited from the QL program (for readable SPARQL)
    prefixes: Dict[str, str] = field(default_factory=dict)

    def operations(self) -> List[Operation]:
        """The simplified pipeline as a flat operation list."""
        pipeline: List[Operation] = [Slice(target) for target in self.slices]
        for dimension, level in self.rollups.items():
            pipeline.append(RollUp(dimension, level))
        pipeline.extend(Dice(condition) for condition in self.dices)
        return pipeline

    @property
    def operation_count(self) -> int:
        return len(self.slices) + len(self.rollups) + len(self.dices)

    def describe(self) -> str:
        lines = [f"cube: {self.cube.value}"]
        for target in self.slices:
            lines.append(f"  SLICE {target.local_name()}")
        for dimension, level in self.rollups.items():
            lines.append(
                f"  ROLLUP {dimension.local_name()} -> {level.local_name()}")
        for condition in self.dices:
            lines.append(f"  DICE {condition}")
        return "\n".join(lines)


def simplify(program: QLProgram, schema: CubeSchema) -> SimplifiedProgram:
    """Validate and canonicalize ``program``.

    The program is checked first (so simplification never silently
    accepts invalid pipelines); the canonical form is derived from the
    final cube state, which by construction encodes the net effect of
    every ROLLUP/DRILLDOWN chain.
    """
    final_state = check_program(program, schema)
    simplified = SimplifiedProgram(cube=program.cube, state=final_state,
                                   prefixes=dict(program.prefixes))

    # rule (a): slices first — ordered deterministically
    sliced = sorted(final_state.sliced_dimensions, key=lambda i: i.value)
    sliced += sorted(final_state.sliced_measures, key=lambda i: i.value)
    simplified.slices = sliced

    # rule (b): one ROLLUP per moved dimension, bottom -> final level
    for dimension_iri, level in final_state.levels.items():
        bottom = schema.bottom_level(dimension_iri)
        if level != bottom:
            simplified.rollups[dimension_iri] = level

    # dices keep their order at the end
    for operation in program.operations():
        if isinstance(operation, Dice):
            simplified.dices.append(operation.condition)
    return simplified


@dataclass
class SimplificationReport:
    """Before/after metrics for the E7 ablation."""

    original_operations: int
    simplified_operations: int

    @property
    def removed(self) -> int:
        return self.original_operations - self.simplified_operations


def simplify_with_report(program: QLProgram, schema: CubeSchema
                         ) -> Tuple[SimplifiedProgram, SimplificationReport]:
    """Simplify a program and report which rules fired."""
    simplified = simplify(program, schema)
    report = SimplificationReport(
        original_operations=len(program.operations()),
        simplified_operations=simplified.operation_count,
    )
    return simplified, report
