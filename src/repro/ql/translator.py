"""The Query Translation Phase: QL → SPARQL (paper §III-B).

From a :class:`~repro.ql.simplifier.SimplifiedProgram` the translator
produces **two semantically equivalent SPARQL queries**:

* the **direct** translation — one flat query: roll-up navigation as
  ``skos:broader``/``qb4o:memberOf`` graph patterns, aggregation via
  ``GROUP BY``, attribute dices as ``FILTER``, measure dices as
  ``HAVING``;
* the **alternative (optimized)** translation — aggregation isolated in
  a sub-``SELECT`` with attribute filters pushed next to the patterns
  that bind them, and measure dices applied as plain ``FILTER`` over
  the sub-query's aggregated variables.  This is the variant "generated
  using optimization heuristics thought to deal with some of the
  typical limitations of SPARQL endpoints" — e.g. endpoints with weak
  or missing ``HAVING`` support (emulated by
  :class:`repro.sparql.endpoint.EndpointLimits.forbid_having`).

Mechanics of a ROLLUP, as in the paper: "ROLLUPs are implemented
navigating the roll-up relationships between members, guided by the
dimension hierarchy representation provided by the QB4OLAP metadata,
and aggregations are performed using GROUP BY clauses.  Since SLICE
removes dimensions, this requires measure values to be aggregated up"
— which falls out of simply omitting the sliced dimension from the
``GROUP BY``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.rdf.terms import IRI, Literal, XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER, XSD_STRING
from repro.qb4olap.model import CubeSchema
from repro.ql.ast import (
    AttributePath,
    BooleanCondition,
    Comparison,
    DiceCondition,
    MeasureRef,
    NotCondition,
)
from repro.ql.checker import QLSemanticError
from repro.ql.simplifier import SimplifiedProgram


@dataclass
class DimensionBinding:
    """How one kept dimension appears in the generated query."""

    dimension: IRI
    bottom_level: IRI
    final_level: IRI
    levels: List[IRI]            # bottom .. final
    variables: List[str]         # SPARQL var name per level (no '?')

    @property
    def group_variable(self) -> str:
        return self.variables[-1]


@dataclass
class TranslationMetadata:
    """Query ↔ cube bookkeeping used to interpret the result table."""

    dimensions: List[DimensionBinding] = field(default_factory=list)
    #: measure IRI → output alias (without '?')
    measure_aliases: Dict[IRI, str] = field(default_factory=dict)
    #: measure IRI → SPARQL aggregate keyword
    measure_aggregates: Dict[IRI, str] = field(default_factory=dict)
    group_variables: List[str] = field(default_factory=list)


@dataclass
class Translation:
    """The two generated queries plus shared metadata."""

    direct: str
    optimized: str
    metadata: TranslationMetadata

    @property
    def direct_lines(self) -> int:
        return len([l for l in self.direct.splitlines() if l.strip()])

    @property
    def optimized_lines(self) -> int:
        return len([l for l in self.optimized.splitlines() if l.strip()])


_NAME_RE = re.compile(r"[^A-Za-z0-9_]")


def _var_base(iri: IRI) -> str:
    name = iri.local_name()
    if name.endswith("Dim"):
        name = name[:-3]
    name = _NAME_RE.sub("_", name)
    if not name or not name[0].isalpha():
        name = "d_" + name
    return name


def _render_value(value: Union[Literal, IRI]) -> str:
    if isinstance(value, IRI):
        return f"<{value.value}>"
    datatype = value.datatype.value
    if datatype in (XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE):
        return value.lexical
    if datatype == XSD_STRING:
        escaped = value.lexical.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return value.n3()


class Translator:
    """Translate one simplified QL program for a given cube schema."""

    def __init__(self, schema: CubeSchema,
                 program: SimplifiedProgram) -> None:
        self.schema = schema
        self.program = program
        if program.state is None:
            raise QLSemanticError("program must be simplified before "
                                  "translation (missing cube state)")
        self.state = program.state
        self.metadata = TranslationMetadata()
        self._attribute_vars: Dict[Tuple[str, IRI], str] = {}
        self._attribute_patterns: List[Tuple[str, IRI, str]] = []
        self._measure_vars: Dict[IRI, str] = {}
        self._build_bindings()
        self._attr_filters: List[str] = []
        self._having_filters: List[str] = []
        self._classify_dices()

    # -- setup -----------------------------------------------------------------

    def _build_bindings(self) -> None:
        for dimension_iri in sorted(self.state.levels,
                                    key=lambda i: i.value):
            final = self.state.levels[dimension_iri]
            bottom = self.schema.bottom_level(dimension_iri)
            if final == bottom:
                levels = [bottom]
            else:
                _, levels = self.schema.rollup_path(dimension_iri, final)
            base = _var_base(dimension_iri)
            variables = [f"{base}_{index}" for index in range(len(levels))]
            binding = DimensionBinding(
                dimension=dimension_iri,
                bottom_level=bottom,
                final_level=final,
                levels=levels,
                variables=variables,
            )
            self.metadata.dimensions.append(binding)
        self.metadata.group_variables = [
            binding.group_variable for binding in self.metadata.dimensions]
        for index, measure_iri in enumerate(self.state.measures):
            measure = self.schema.measure(measure_iri)
            if measure is None:
                raise QLSemanticError(f"unknown measure {measure_iri}")
            self._measure_vars[measure_iri] = f"m{index}"
            alias = _NAME_RE.sub("_", measure_iri.local_name())
            self.metadata.measure_aliases[measure_iri] = alias
            self.metadata.measure_aggregates[measure_iri] = \
                measure.sparql_aggregate()

    def _binding_for(self, dimension: IRI) -> DimensionBinding:
        for binding in self.metadata.dimensions:
            if binding.dimension == dimension:
                return binding
        raise QLSemanticError(f"dimension {dimension} not in result cube")

    def _attribute_var(self, path: AttributePath) -> str:
        binding = self._binding_for(path.dimension)
        key = (binding.group_variable, path.attribute)
        if key not in self._attribute_vars:
            var = f"att{len(self._attribute_vars)}"
            self._attribute_vars[key] = var
            self._attribute_patterns.append(
                (binding.group_variable, path.attribute, var))
        return self._attribute_vars[key]

    # -- dice classification -------------------------------------------------------

    def _classify_dices(self) -> None:
        for condition in self.program.dices:
            if condition.measure_refs():
                self._having_filters.append(
                    self._render_condition(condition, aggregated=True))
            else:
                self._attr_filters.append(
                    self._render_condition(condition, aggregated=False))

    def _render_condition(self, condition: DiceCondition,
                           aggregated: bool) -> str:
        if isinstance(condition, Comparison):
            if isinstance(condition.operand, MeasureRef):
                measure = condition.operand.measure
                if aggregated == "alias":  # outer filter over subquery alias
                    left = f"?{self.metadata.measure_aliases[measure]}"
                else:
                    keyword = self.metadata.measure_aggregates[measure]
                    left = f"{keyword}(?{self._measure_vars[measure]})"
            else:
                left = f"?{self._attribute_var(condition.operand)}"
            return f"{left} {condition.op} {_render_value(condition.value)}"
        if isinstance(condition, BooleanCondition):
            joiner = " && " if condition.op == "AND" else " || "
            rendered = joiner.join(
                self._render_condition(operand, aggregated)
                for operand in condition.operands)
            return f"({rendered})"
        if isinstance(condition, NotCondition):
            # the operand must be parenthesized: a bare comparison would
            # otherwise bind as (!operand) = value, since unary ! binds
            # tighter than comparison operators in SPARQL
            inner = self._render_condition(condition.operand, aggregated)
            return f"(!({inner}))"
        raise QLSemanticError(f"unknown dice condition {condition!r}")

    # -- query text -------------------------------------------------------------

    _CORE_PREFIXES = {
        "qb": "http://purl.org/linked-data/cube#",
        "qb4o": "http://purl.org/qb4olap/cubes#",
        "skos": "http://www.w3.org/2004/02/skos/core#",
    }

    def _finalize(self, lines: List[str]) -> str:
        """Compact full IRIs with the program's prefixes and prepend the
        PREFIX header — the same readable output the paper's tool shows."""
        text = "\n".join(lines)
        candidates = dict(self.program.prefixes)
        for prefix, namespace in self._CORE_PREFIXES.items():
            candidates.setdefault(prefix, namespace)
        used: Dict[str, str] = dict(self._CORE_PREFIXES)
        for prefix, namespace in sorted(candidates.items(),
                                        key=lambda kv: -len(kv[1])):
            pattern = re.compile(
                "<" + re.escape(namespace) + r"([A-Za-z][A-Za-z0-9_\-]*)>")

            def compact(match: "re.Match[str]", prefix=prefix,
                        namespace=namespace) -> str:
                used[prefix] = namespace
                return f"{prefix}:{match.group(1)}"

            text = pattern.sub(compact, text)
        header = [f"PREFIX {prefix}: <{namespace}>"
                  for prefix, namespace in sorted(used.items())]
        return "\n".join(header) + "\n" + text

    def _observation_patterns(self) -> List[str]:
        lines = [f"?o qb:dataSet <{self.program.cube.value}> ."]
        for binding in self.metadata.dimensions:
            lines.append(
                f"?o <{binding.bottom_level.value}> ?{binding.variables[0]} .")
            if len(binding.levels) > 1:
                # navigation is guided by the QB4OLAP metadata: assert the
                # bottom membership, then climb skos:broader hop by hop
                lines.append(
                    f"?{binding.variables[0]} qb4o:memberOf "
                    f"<{binding.bottom_level.value}> .")
            for index in range(1, len(binding.levels)):
                child_var = binding.variables[index - 1]
                parent_var = binding.variables[index]
                parent_level = binding.levels[index]
                lines.append(
                    f"?{child_var} skos:broader ?{parent_var} .")
                lines.append(
                    f"?{parent_var} qb4o:memberOf <{parent_level.value}> .")
        for measure_iri, var in self._measure_vars.items():
            lines.append(f"?o <{measure_iri.value}> ?{var} .")
        return lines

    def _attribute_pattern_lines(self) -> List[str]:
        return [
            f"?{member_var} <{attribute.value}> ?{var} ."
            for member_var, attribute, var in self._attribute_patterns
        ]

    def _aggregate_projection(self) -> List[str]:
        parts = []
        for measure_iri, var in self._measure_vars.items():
            keyword = self.metadata.measure_aggregates[measure_iri]
            alias = self.metadata.measure_aliases[measure_iri]
            parts.append(f"({keyword}(?{var}) AS ?{alias})")
        return parts

    def direct_query(self) -> str:
        """The flat translation: GROUP BY + FILTER + HAVING."""
        group_vars = [f"?{name}" for name in self.metadata.group_variables]
        select = group_vars + self._aggregate_projection()
        lines = [f"SELECT {' '.join(select)}"]
        lines.append("WHERE {")
        body = self._observation_patterns() + self._attribute_pattern_lines()
        lines.extend(f"  {line}" for line in body)
        for condition in self._attr_filters:
            lines.append(f"  FILTER({condition})")
        lines.append("}")
        # attribute vars referenced by measure-bearing (mixed) dices are
        # ungrouped — HAVING could not see them (unbound → every group
        # dropped); group by them too, which leaves the groups unchanged
        # because the attribute is a function of the group member
        mixed_attr_vars: List[str] = []
        for condition in self.program.dices:
            if condition.measure_refs():
                for path in condition.attribute_paths():
                    var = self._attribute_var(path)
                    if var not in mixed_attr_vars:
                        mixed_attr_vars.append(var)
        full_group = group_vars + [f"?{v}" for v in mixed_attr_vars]
        if full_group:
            lines.append(f"GROUP BY {' '.join(full_group)}")
        if self._having_filters:
            rendered = " ".join(f"({c})" for c in self._having_filters)
            lines.append(f"HAVING {rendered}")
        if group_vars:
            lines.append(f"ORDER BY {' '.join(group_vars)}")
        return self._finalize(lines)

    def optimized_query(self) -> str:
        """The alternative translation: sub-select + outer FILTERs."""
        group_vars = [f"?{name}" for name in self.metadata.group_variables]
        aliases = [f"?{self.metadata.measure_aliases[m]}"
                   for m in self._measure_vars]
        outer_select = group_vars + aliases
        lines = [f"SELECT {' '.join(outer_select)}"]
        lines.append("WHERE {")
        # attribute vars referenced by measure-bearing (mixed) dices must
        # survive the sub-select so the outer FILTER can see them; they
        # are functions of the group member, so grouping by them too
        # leaves the groups unchanged.
        mixed_attr_vars: List[str] = []
        for condition in self.program.dices:
            if condition.measure_refs():
                for path in condition.attribute_paths():
                    var = self._attribute_var(path)
                    if var not in mixed_attr_vars:
                        mixed_attr_vars.append(var)
        inner_group = group_vars + [f"?{v}" for v in mixed_attr_vars]
        inner_select = inner_group + self._aggregate_projection()
        lines.append(f"  {{ SELECT {' '.join(inner_select)}")
        lines.append("    WHERE {")

        # heuristic pattern order: dimension-member patterns constrained
        # by a dice first (they bind few members), then the observation
        # star, then the remaining navigation.
        constrained: List[str] = []
        seen_members = set()
        for member_var, attribute, var in self._attribute_patterns:
            binding = next(b for b in self.metadata.dimensions
                           if b.group_variable == member_var)
            if len(binding.levels) > 1:
                constrained.append(
                    f"?{member_var} qb4o:memberOf "
                    f"<{binding.final_level.value}> .")
            constrained.append(
                f"?{member_var} <{attribute.value}> ?{var} .")
            seen_members.add(member_var)
        inner = list(constrained)
        for condition in self._attr_filters:
            inner.append(f"FILTER({condition})")
        inner.extend(self._observation_patterns())
        lines.extend(f"      {line}" for line in inner)
        lines.append("    }")
        if inner_group:
            lines.append(f"    GROUP BY {' '.join(inner_group)}")
        lines.append("  }")
        for condition in self.program.dices:
            if condition.measure_refs():
                rendered = self._render_condition(condition,
                                                  aggregated="alias")
                lines.append(f"  FILTER({rendered})")
        lines.append("}")
        if group_vars:
            lines.append(f"ORDER BY {' '.join(group_vars)}")
        return self._finalize(lines)

    def translate(self) -> Translation:
        return Translation(
            direct=self.direct_query(),
            optimized=self.optimized_query(),
            metadata=self.metadata,
        )


def translate(schema: CubeSchema, program: SimplifiedProgram) -> Translation:
    """Convenience wrapper: translate a simplified program."""
    return Translator(schema, program).translate()
