"""Semantic validation of QL programs against a cube schema.

Tracks the *cube state* through the pipeline — which level each
dimension currently sits at, which dimensions/measures were sliced
away — and rejects programs that:

* violate the ``(ROLLUP | SLICE | DRILLDOWN)* (DICE)*`` shape the
  Querying module imposes,
* roll up along a non-existent path, drill below the base granularity,
  or touch sliced/unknown dimensions,
* dice on attributes that do not belong to the dimension's *current*
  level, or on unknown/sliced measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.rdf.terms import IRI
from repro.qb4olap.model import CubeSchema, SchemaError
from repro.ql.ast import (
    AttributePath,
    Dice,
    DrillDown,
    MeasureRef,
    Operation,
    QLProgram,
    RollUp,
    Slice,
)


class QLSemanticError(Exception):
    """A QL program is inconsistent with the cube schema."""


@dataclass
class CubeState:
    """The (virtual) cube produced so far by a QL prefix."""

    schema: CubeSchema
    #: dimension IRI → current level (sliced dimensions removed)
    levels: Dict[IRI, IRI] = field(default_factory=dict)
    #: measures still present
    measures: List[IRI] = field(default_factory=list)
    sliced_dimensions: Set[IRI] = field(default_factory=set)
    sliced_measures: Set[IRI] = field(default_factory=set)

    @classmethod
    def initial(cls, schema: CubeSchema) -> "CubeState":
        state = cls(schema=schema)
        for dimension in schema.dimensions:
            state.levels[dimension.iri] = schema.bottom_level(dimension.iri)
        state.measures = [measure.iri for measure in schema.measures]
        return state

    def copy(self) -> "CubeState":
        clone = CubeState(schema=self.schema)
        clone.levels = dict(self.levels)
        clone.measures = list(self.measures)
        clone.sliced_dimensions = set(self.sliced_dimensions)
        clone.sliced_measures = set(self.sliced_measures)
        return clone


def apply_operation(state: CubeState, operation: Operation) -> CubeState:
    """Validate one operation against ``state``; return the next state."""
    schema = state.schema
    next_state = state.copy()
    if isinstance(operation, (RollUp, DrillDown)):
        dimension = operation.dimension
        if dimension in state.sliced_dimensions:
            raise QLSemanticError(
                f"{operation.name} on sliced dimension {dimension}")
        if dimension not in state.levels:
            raise QLSemanticError(
                f"{operation.name} on unknown dimension {dimension}")
        target = operation.level
        dim = schema.require_dimension(dimension)
        if target not in dim.levels():
            raise QLSemanticError(
                f"level {target} does not belong to dimension {dimension}")
        bottom = schema.bottom_level(dimension)
        found = dim.find_path(bottom, target)
        if found is None:
            raise QLSemanticError(
                f"no roll-up path from {bottom} to {target} "
                f"in dimension {dimension}")
        if isinstance(operation, RollUp):
            # must go up (or stay) from the current level
            current = state.levels[dimension]
            current_path = dim.find_path(bottom, current)
            target_path = found
            if current_path is not None \
                    and len(target_path[1]) < len(current_path[1]):
                raise QLSemanticError(
                    f"ROLLUP to {target.local_name()} is below the "
                    f"current level {current.local_name()}; use DRILLDOWN")
        else:
            current = state.levels[dimension]
            current_path = dim.find_path(bottom, current)
            if current_path is not None \
                    and len(found[1]) > len(current_path[1]):
                raise QLSemanticError(
                    f"DRILLDOWN to {target.local_name()} is above the "
                    f"current level {current.local_name()}; use ROLLUP")
        next_state.levels[dimension] = target
        return next_state
    if isinstance(operation, Slice):
        target = operation.target
        if target in state.levels:
            del next_state.levels[target]
            next_state.sliced_dimensions.add(target)
            return next_state
        if target in state.measures:
            if len(state.measures) == 1:
                raise QLSemanticError(
                    "cannot slice away the last measure")
            next_state.measures.remove(target)
            next_state.sliced_measures.add(target)
            return next_state
        raise QLSemanticError(
            f"SLICE target {target} is neither a dimension nor a measure "
            "of the cube")
    if isinstance(operation, Dice):
        _check_dice(state, operation)
        return next_state
    raise QLSemanticError(f"unknown operation {operation!r}")


def _check_dice(state: CubeState, dice: Dice) -> None:
    for path in dice.condition.attribute_paths():
        if path.dimension in state.sliced_dimensions:
            raise QLSemanticError(
                f"DICE references sliced dimension {path.dimension}")
        current = state.levels.get(path.dimension)
        if current is None:
            raise QLSemanticError(
                f"DICE references unknown dimension {path.dimension}")
        if path.level != current:
            raise QLSemanticError(
                f"DICE attribute {path.attribute.local_name()} is bound to "
                f"level {path.level.local_name()} but dimension "
                f"{path.dimension.local_name()} currently sits at "
                f"{current.local_name()}")
        attributes = state.schema.attributes_of(path.level)
        if path.attribute not in attributes:
            raise QLSemanticError(
                f"{path.attribute} is not an attribute of level "
                f"{path.level}")
    for ref in dice.condition.measure_refs():
        if ref.measure in state.sliced_measures:
            raise QLSemanticError(
                f"DICE references sliced measure {ref.measure}")
        if ref.measure not in state.measures:
            raise QLSemanticError(
                f"{ref.measure} is not a measure of the cube")


def check_program(program: QLProgram, schema: CubeSchema) -> CubeState:
    """Validate the whole program; returns the final cube state."""
    operations = program.operations()
    seen_dice = False
    for operation in operations:
        if isinstance(operation, Dice):
            seen_dice = True
        elif seen_dice:
            raise QLSemanticError(
                "QL requires all DICE operations at the end of the "
                "program: (ROLLUP | SLICE | DRILLDOWN)* (DICE)*")
    state = CubeState.initial(schema)
    for operation in operations:
        state = apply_operation(state, operation)
    return state
