"""Abstract syntax of QL, the high-level OLAP language (paper §III-B).

A QL *program* is a sequence of assignments ``$Cn := OP(...)`` chaining
cube-to-cube operations, constrained to the shape
``(ROLLUP | SLICE | DRILLDOWN)* (DICE)*``:

* ``ROLLUP(cube, dimension, level)`` — aggregate up to ``level``;
* ``DRILLDOWN(cube, dimension, level)`` — move back down to a finer
  level (never below the cube's bottom granularity);
* ``SLICE(cube, dimension)`` — remove the dimension, aggregating its
  members away; ``SLICE(cube, measure)`` drops a measure column;
* ``DICE(cube, condition)`` — keep only cells satisfying a boolean
  condition over level attributes and/or (aggregated) measures.

Dice conditions reference attributes with the three-part path syntax
``dimension|level|attribute`` from the paper's demo query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.rdf.terms import IRI, Literal


class QLSyntaxError(Exception):
    """Raised for malformed QL programs."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        self.line = line
        if line is not None:
            message = f"{message} (line {line})"
        super().__init__(message)


# ---------------------------------------------------------------------------
# Dice conditions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttributePath:
    """``dimension|level|attribute`` — a coordinate attribute reference."""

    dimension: IRI
    level: IRI
    attribute: IRI

    def __str__(self) -> str:
        return (f"{self.dimension.local_name()}|{self.level.local_name()}|"
                f"{self.attribute.local_name()}")


@dataclass(frozen=True)
class MeasureRef:
    """A reference to a measure in a dice condition."""

    measure: IRI

    def __str__(self) -> str:
        return self.measure.local_name()


DiceOperand = Union[AttributePath, MeasureRef]

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class DiceCondition:
    """Base class of the dice-condition tree."""

    def measure_refs(self) -> List[MeasureRef]:
        return []

    def attribute_paths(self) -> List[AttributePath]:
        return []


@dataclass(frozen=True)
class Comparison(DiceCondition):
    operand: DiceOperand
    op: str
    value: Union[Literal, IRI]

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise QLSyntaxError(f"unknown comparison operator {self.op!r}")

    def measure_refs(self) -> List[MeasureRef]:
        return [self.operand] if isinstance(self.operand, MeasureRef) else []

    def attribute_paths(self) -> List[AttributePath]:
        return [self.operand] if isinstance(self.operand, AttributePath) \
            else []

    def to_ql(self) -> str:
        if isinstance(self.operand, AttributePath):
            operand = (f"<{self.operand.dimension.value}>|"
                       f"<{self.operand.level.value}>|"
                       f"<{self.operand.attribute.value}>")
        else:
            operand = f"<{self.operand.measure.value}>"
        if isinstance(self.value, IRI):
            value = f"<{self.value.value}>"
        elif self.value.is_numeric or self.value.datatype.value.endswith(
                "boolean"):
            value = self.value.lexical
        else:
            # emit as a quoted plain string with N-Triples escaping —
            # the QL parser unescapes with the same rules.  QL's surface
            # syntax has no datatype/language annotations, so those are
            # not representable here (they do not occur in dice values).
            value = Literal(self.value.lexical).n3()
        return f"{operand} {self.op} {value}"

    def __str__(self) -> str:
        value = self.value.n3() if hasattr(self.value, "n3") else str(self.value)
        return f"{self.operand} {self.op} {value}"


@dataclass(frozen=True)
class BooleanCondition(DiceCondition):
    op: str  # "AND" | "OR"
    operands: tuple

    def __post_init__(self) -> None:
        if self.op not in ("AND", "OR"):
            raise QLSyntaxError(f"unknown boolean operator {self.op!r}")

    def measure_refs(self) -> List[MeasureRef]:
        refs: List[MeasureRef] = []
        for operand in self.operands:
            refs.extend(operand.measure_refs())
        return refs

    def attribute_paths(self) -> List[AttributePath]:
        paths: List[AttributePath] = []
        for operand in self.operands:
            paths.extend(operand.attribute_paths())
        return paths

    def to_ql(self) -> str:
        joined = f" {self.op} ".join(
            operand.to_ql() for operand in self.operands)
        return f"({joined})"

    def __str__(self) -> str:
        joined = f" {self.op} ".join(str(o) for o in self.operands)
        return f"({joined})"


@dataclass(frozen=True)
class NotCondition(DiceCondition):
    operand: DiceCondition

    def measure_refs(self) -> List[MeasureRef]:
        return self.operand.measure_refs()

    def attribute_paths(self) -> List[AttributePath]:
        return self.operand.attribute_paths()

    def to_ql(self) -> str:
        inner = self.operand.to_ql()
        if not inner.startswith("("):
            inner = f"({inner})"
        return f"NOT {inner}"

    def __str__(self) -> str:
        return f"NOT {self.operand}"


# ---------------------------------------------------------------------------
# Operations and programs
# ---------------------------------------------------------------------------


class Operation:
    """Base class for QL operations."""

    name: str = "?"

    def arguments_ql(self) -> str:
        """The operation's arguments after the input cube, in QL text."""
        raise NotImplementedError


@dataclass(frozen=True)
class RollUp(Operation):
    dimension: IRI
    level: IRI
    name = "ROLLUP"

    def arguments_ql(self) -> str:
        return f"<{self.dimension.value}>, <{self.level.value}>"

    def __str__(self) -> str:
        return (f"ROLLUP({self.dimension.local_name()}, "
                f"{self.level.local_name()})")


@dataclass(frozen=True)
class DrillDown(Operation):
    dimension: IRI
    level: IRI
    name = "DRILLDOWN"

    def arguments_ql(self) -> str:
        return f"<{self.dimension.value}>, <{self.level.value}>"

    def __str__(self) -> str:
        return (f"DRILLDOWN({self.dimension.local_name()}, "
                f"{self.level.local_name()})")


@dataclass(frozen=True)
class Slice(Operation):
    target: IRI  # a dimension or a measure
    name = "SLICE"

    def arguments_ql(self) -> str:
        return f"<{self.target.value}>"

    def __str__(self) -> str:
        return f"SLICE({self.target.local_name()})"


@dataclass(frozen=True)
class Dice(Operation):
    condition: DiceCondition
    name = "DICE"

    def arguments_ql(self) -> str:
        return self.condition.to_ql()

    def __str__(self) -> str:
        return f"DICE({self.condition})"


@dataclass
class Statement:
    """``$var := OP(input, ...)``; input is a cube IRI or another var."""

    variable: str
    input_ref: Union[str, IRI]  # "$C1" or the cube's data set IRI
    operation: Operation

    def to_ql(self) -> str:
        source = self.input_ref if isinstance(self.input_ref, str) \
            else f"<{self.input_ref.value}>"
        return (f"{self.variable} := {self.operation.name} "
                f"({source}, {self.operation.arguments_ql()});")


@dataclass
class QLProgram:
    """A parsed QL program."""

    prefixes: Dict[str, str] = field(default_factory=dict)
    statements: List[Statement] = field(default_factory=list)

    @property
    def cube(self) -> IRI:
        """The data set IRI the pipeline starts from."""
        for statement in self.statements:
            if isinstance(statement.input_ref, IRI):
                return statement.input_ref
        raise QLSyntaxError("program never references a cube IRI")

    def operations(self) -> List[Operation]:
        """The operation pipeline, validating the variable chaining."""
        if not self.statements:
            raise QLSyntaxError("empty QL program")
        first = self.statements[0]
        if not isinstance(first.input_ref, IRI):
            raise QLSyntaxError(
                "the first statement must apply to a cube IRI")
        previous = first.variable
        pipeline = [first.operation]
        for statement in self.statements[1:]:
            if statement.input_ref != previous:
                raise QLSyntaxError(
                    f"statement {statement.variable} must consume "
                    f"{previous}, got {statement.input_ref}")
            pipeline.append(statement.operation)
            previous = statement.variable
        return pipeline

    def describe(self) -> str:
        lines = []
        for statement in self.statements:
            source = statement.input_ref if isinstance(statement.input_ref, str) \
                else statement.input_ref.local_name()
            lines.append(
                f"{statement.variable} := {statement.operation} <- {source}")
        return "\n".join(lines)

    def to_ql(self) -> str:
        """Round-trippable QL text (full-IRI form, no prefixes).

        ``parse_ql(program.to_ql())`` reconstructs an equal program —
        the serialization used to store or ship programs built with
        :class:`~repro.ql.builder.QLBuilder`.
        """
        lines = ["QUERY"]
        lines += [statement.to_ql() for statement in self.statements]
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self.statements)
