"""The Querying module pipeline: parse → simplify → translate → execute.

Ties the phases of the paper's Fig. 3 together.  :class:`QLEngine`
holds the endpoint and cube schema; :meth:`QLEngine.execute` runs a QL
program (text or parsed) through simplification and translation, sends
the chosen SPARQL variant(s) to the endpoint, and materializes the
result cube.

When the endpoint rejects the direct translation (e.g. its HAVING
restriction), ``variant="auto"`` falls back to the alternative query —
the behaviour the two-translation design exists for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.rdf.terms import IRI
from repro.sparql.endpoint import LocalEndpoint
from repro.sparql.errors import EndpointError, GovernedQueryError
from repro.sparql.governor import QueryLimits
from repro.sparql.results import ResultTable
from repro.qb4olap.model import CubeSchema
from repro.ql.ast import QLProgram
from repro.ql.cube import ResultCube
from repro.ql.parser import parse_ql
from repro.ql.simplifier import (
    SimplificationReport,
    SimplifiedProgram,
    simplify_with_report,
)
from repro.ql.translator import Translation, translate


@dataclass
class ExecutionReport:
    """Timings and sizes for one QL execution."""

    variant: str
    parse_seconds: float = 0.0
    simplify_seconds: float = 0.0
    translate_seconds: float = 0.0
    execute_seconds: float = 0.0
    rows: int = 0
    sparql_lines: int = 0
    simplification: Optional[SimplificationReport] = None
    #: SPARQL plan-cache activity during execution: a repeated OLAP
    #: session should show hits (exact or parameterized), not misses
    plan_cache_hits: int = 0
    plan_cache_parameterized_hits: int = 0
    plan_cache_misses: int = 0
    #: streaming-pipeline activity during execution: SELECT evaluations
    #: (incl. sub-SELECTs) served by the streaming LIMIT path and the
    #: batches / rows it pulled (early termination keeps
    #: ``streamed_rows`` far below a full evaluation)
    streamed_queries: int = 0
    streamed_batches: int = 0
    streamed_rows: int = 0
    #: the dataset snapshot epoch the (last) SPARQL execution was
    #: pinned to — the consistency boundary this result observed; a
    #: session can compare epochs across executions to tell whether
    #: enrichment wrote to the endpoint in between
    snapshot_epoch: Optional[int] = None
    #: ``True`` when the governor cut the execution short and the
    #: caller opted into partial results (``allow_partial``): the cube
    #: is built from an incomplete row set
    truncated: bool = False
    #: endpoint governor activity during this execution (deltas of the
    #: endpoint's ``governor_*`` statistics): admissions, sheds and
    #: governed verdicts attributable to this QL program's queries
    governor_admitted: int = 0
    governor_shed: int = 0
    governor_timeouts: int = 0
    governor_budget_kills: int = 0
    governor_truncated_serves: int = 0

    @property
    def total_seconds(self) -> float:
        return (self.parse_seconds + self.simplify_seconds
                + self.translate_seconds + self.execute_seconds)


@dataclass
class QLResult:
    """Everything a QL execution produces."""

    cube: ResultCube
    table: ResultTable
    translation: Translation
    simplified: SimplifiedProgram
    report: ExecutionReport


class QLEngine:
    """Execute QL programs against an endpoint-resident QB4OLAP cube."""

    def __init__(self, endpoint: LocalEndpoint, schema: CubeSchema) -> None:
        self.endpoint = endpoint
        self.schema = schema

    # -- pipeline stages ----------------------------------------------------------

    @staticmethod
    def _check_cancelled(limits: Optional[QueryLimits]) -> None:
        """Observe a caller-held cancellation token between stages."""
        if limits is not None and limits.token is not None \
                and limits.token.cancelled:
            from repro.sparql.errors import QueryCancelled
            raise QueryCancelled(
                f"QL execution cancelled: {limits.token.reason}")

    def parse(self, text: str) -> QLProgram:
        return parse_ql(text)

    def prepare(self, program: Union[str, QLProgram]
                ) -> tuple[QLProgram, SimplifiedProgram,
                           SimplificationReport, Translation, ExecutionReport]:
        report = ExecutionReport(variant="?")
        started = time.perf_counter()
        if isinstance(program, str):
            program = self.parse(program)
        report.parse_seconds = time.perf_counter() - started

        started = time.perf_counter()
        simplified, simplification = simplify_with_report(
            program, self.schema)
        report.simplify_seconds = time.perf_counter() - started
        report.simplification = simplification

        started = time.perf_counter()
        translation = translate(self.schema, simplified)
        report.translate_seconds = time.perf_counter() - started
        return program, simplified, simplification, translation, report

    def execute(self, program: Union[str, QLProgram],
                variant: str = "auto",
                limits: Optional[QueryLimits] = None) -> QLResult:
        """Run a QL program; ``variant`` ∈ direct/optimized/auto.

        ``limits`` govern the SPARQL execution (deadline, budgets,
        cancellation token — see
        :class:`~repro.sparql.governor.QueryLimits`).  Governed
        verdicts are **final**: a query killed by its deadline or
        budget is *not* retried through the alternative translation
        (the endpoint didn't reject the query's shape — the governor
        rejected its cost, and the alternative would pay it again).
        """
        if variant not in ("direct", "optimized", "auto"):
            raise ValueError(f"unknown variant {variant!r}")
        self._check_cancelled(limits)
        (_, simplified, _, translation, report) = self.prepare(program)
        self._check_cancelled(limits)  # before the expensive stage

        from repro.sparql.evaluator import STREAM_TELEMETRY
        from repro.sparql.optimizer import PLAN_CACHE
        cache_before = PLAN_CACHE.statistics()
        stream_before = STREAM_TELEMETRY.snapshot()
        stats = self.endpoint.statistics
        gov_before = (stats.governor_admitted, stats.governor_shed,
                      stats.governor_timeouts, stats.governor_budget_kills,
                      stats.governor_truncated_serves)
        started = time.perf_counter()
        try:
            if variant == "direct":
                table = self.endpoint.select(translation.direct,
                                             limits=limits)
                report.variant = "direct"
                report.sparql_lines = translation.direct_lines
            elif variant == "optimized":
                table = self.endpoint.select(translation.optimized,
                                             limits=limits)
                report.variant = "optimized"
                report.sparql_lines = translation.optimized_lines
            else:
                try:
                    table = self.endpoint.select(translation.direct,
                                                 limits=limits)
                    report.variant = "direct"
                    report.sparql_lines = translation.direct_lines
                except GovernedQueryError:
                    raise  # a governed verdict is final, not a workaround cue
                except EndpointError:
                    table = self.endpoint.select(translation.optimized,
                                                 limits=limits)
                    report.variant = "optimized (fallback)"
                    report.sparql_lines = translation.optimized_lines
        finally:
            report.execute_seconds = time.perf_counter() - started
            report.governor_admitted = (
                stats.governor_admitted - gov_before[0])
            report.governor_shed = stats.governor_shed - gov_before[1]
            report.governor_timeouts = (
                stats.governor_timeouts - gov_before[2])
            report.governor_budget_kills = (
                stats.governor_budget_kills - gov_before[3])
            report.governor_truncated_serves = (
                stats.governor_truncated_serves - gov_before[4])
        report.rows = len(table)
        report.snapshot_epoch = table.snapshot_epoch
        report.truncated = bool(getattr(table, "truncated", False))
        cache_after = PLAN_CACHE.statistics()
        report.plan_cache_hits = cache_after["hits"] - cache_before["hits"]
        report.plan_cache_parameterized_hits = (
            cache_after["hits_parameterized"]
            - cache_before["hits_parameterized"])
        report.plan_cache_misses = (
            cache_after["misses"] - cache_before["misses"])
        stream_after = STREAM_TELEMETRY.snapshot()
        report.streamed_queries = (
            stream_after["queries"] - stream_before["queries"])
        report.streamed_batches = (
            stream_after["batches"] - stream_before["batches"])
        report.streamed_rows = stream_after["rows"] - stream_before["rows"]

        cube = ResultCube(table, translation.metadata)
        return QLResult(cube=cube, table=table, translation=translation,
                        simplified=simplified, report=report)

    def execute_both(self, program: Union[str, QLProgram]
                     ) -> Dict[str, QLResult]:
        """Run both translations (the demo lets the user compare them)."""
        return {
            "direct": self.execute(program, variant="direct"),
            "optimized": self.execute(program, variant="optimized"),
        }


def execute_ql(endpoint: LocalEndpoint, schema: CubeSchema,
               text: str, variant: str = "auto",
               limits: Optional[QueryLimits] = None) -> QLResult:
    """One-call convenience used by examples."""
    return QLEngine(endpoint, schema).execute(text, variant=variant,
                                              limits=limits)
