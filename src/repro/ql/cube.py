"""The result cube: what a QL query returns.

"The resulting cube is computed on-the-fly" (paper §III-B).  A
:class:`ResultCube` wraps the SPARQL result table with the cube
metadata the translator tracked: which columns are dimension
coordinates (and at which level), and which are aggregated measures.
It offers cell access by coordinates, 2-D pivots and text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.results import ResultTable
from repro.ql.translator import TranslationMetadata


@dataclass(frozen=True)
class Axis:
    """One dimension axis of the result cube."""

    dimension: IRI
    level: IRI
    column: str  # result-table column with the member coordinate

    def __str__(self) -> str:
        return f"{self.dimension.local_name()}@{self.level.local_name()}"


class ResultCube:
    """An in-memory OLAP cube materialized from a query result."""

    def __init__(self, table: ResultTable,
                 metadata: TranslationMetadata) -> None:
        self.table = table
        self.axes: List[Axis] = [
            Axis(binding.dimension, binding.final_level,
                 binding.group_variable)
            for binding in metadata.dimensions
        ]
        self.measures: Dict[IRI, str] = dict(metadata.measure_aliases)
        self._cells: Dict[Tuple[Term, ...], Dict[str, Term]] = {}
        axis_columns = [axis.column for axis in self.axes]
        measure_columns = list(self.measures.values())
        for row in table:
            key = tuple(row.get(column) for column in axis_columns)
            self._cells[key] = {
                column: row.get(column) for column in measure_columns}

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cells)

    def coordinates(self) -> List[Tuple[Term, ...]]:
        return list(self._cells.keys())

    def cell(self, *coordinate: Term) -> Optional[Dict[str, Term]]:
        """Measure values at a coordinate (axis order), or ``None``."""
        return self._cells.get(tuple(coordinate))

    def value(self, measure: IRI, *coordinate: Term):
        """The Python value of one measure at a coordinate."""
        cell = self.cell(*coordinate)
        if cell is None:
            return None
        term = cell.get(self.measures[measure])
        if isinstance(term, Literal):
            return term.value
        return term

    def members(self, axis_index: int = 0) -> List[Term]:
        """Distinct members along one axis, sorted."""
        seen = []
        found = set()
        for key in self._cells:
            member = key[axis_index]
            if member not in found:
                found.add(member)
                seen.append(member)
        seen.sort(key=lambda t: getattr(t, "value", str(t)))
        return seen

    def totals(self) -> Dict[IRI, float]:
        """Grand total per measure (sums the aggregated cells)."""
        totals: Dict[IRI, float] = {}
        for measure, column in self.measures.items():
            total = 0.0
            for cell in self._cells.values():
                term = cell.get(column)
                if isinstance(term, Literal) and term.is_numeric:
                    value = term.value
                    if not isinstance(value, str):
                        total += float(value)
            totals[measure] = total
        return totals

    # -- presentation -------------------------------------------------------------

    @staticmethod
    def _label(term: Optional[Term]) -> str:
        if term is None:
            return "-"
        if isinstance(term, IRI):
            return term.local_name()
        if isinstance(term, Literal):
            return term.lexical
        return str(term)

    def pivot(self, row_axis: int, column_axis: int,
              measure: Optional[IRI] = None) -> str:
        """A 2-D pivot-table rendering (remaining axes are summed)."""
        if measure is None:
            measure = next(iter(self.measures))
        column_name = self.measures[measure]
        sums: Dict[Tuple[Term, Term], float] = {}
        for key, cell in self._cells.items():
            row_member = key[row_axis]
            column_member = key[column_axis]
            term = cell.get(column_name)
            if isinstance(term, Literal) and not isinstance(term.value, str):
                sums[(row_member, column_member)] = \
                    sums.get((row_member, column_member), 0.0) \
                    + float(term.value)
        rows = self.members(row_axis)
        columns = self.members(column_axis)
        header = [""] + [self._label(c) for c in columns]
        grid = [header]
        for row_member in rows:
            line = [self._label(row_member)]
            for column_member in columns:
                value = sums.get((row_member, column_member))
                line.append("" if value is None else f"{value:.0f}")
            grid.append(line)
        widths = [max(len(row[i]) for row in grid)
                  for i in range(len(header))]
        out_lines = []
        for index, row in enumerate(grid):
            out_lines.append(" | ".join(
                cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                for i, cell in enumerate(row)))
            if index == 0:
                out_lines.append("-+-".join("-" * w for w in widths))
        return "\n".join(out_lines)

    def to_text(self, max_rows: Optional[int] = 20) -> str:
        header = " × ".join(str(axis) for axis in self.axes) or "(scalar)"
        return f"Cube [{header}] — {len(self)} cells\n" \
               + self.table.to_text(max_rows=max_rows)

    def __repr__(self) -> str:
        axes = " × ".join(str(axis) for axis in self.axes)
        return f"<ResultCube {axes or 'scalar'} ({len(self)} cells)>"
