"""QL: the high-level OLAP language of the Querying module.

The pipeline mirrors the paper's Fig. 3: QL text is parsed
(:mod:`repro.ql.parser`), semantically checked against the QB4OLAP
schema (:mod:`repro.ql.checker`), simplified (slice-early and
roll-up-fusion rules, :mod:`repro.ql.simplifier`), translated into two
equivalent SPARQL queries (:mod:`repro.ql.translator`), executed on the
endpoint, and materialized as a result cube (:mod:`repro.ql.cube`).
"""

from repro.ql.ast import (
    AttributePath,
    BooleanCondition,
    Comparison,
    Dice,
    DiceCondition,
    DrillDown,
    MeasureRef,
    NotCondition,
    Operation,
    QLProgram,
    QLSyntaxError,
    RollUp,
    Slice,
    Statement,
)
from repro.ql.builder import (
    ConditionBuilder,
    QLBuilder,
    all_of,
    any_of,
    attr,
    measure,
    negate,
)
from repro.ql.checker import CubeState, QLSemanticError, check_program
from repro.ql.cube import Axis, ResultCube
from repro.ql.drillacross import (
    DrillAcrossError,
    DrillAcrossResult,
    drill_across,
    execute_drill_across,
)
from repro.ql.executor import ExecutionReport, QLEngine, QLResult, execute_ql
from repro.ql.parser import parse_ql
from repro.ql.simplifier import (
    SimplificationReport,
    SimplifiedProgram,
    simplify,
    simplify_with_report,
)
from repro.ql.translator import Translation, TranslationMetadata, translate

__all__ = [
    "AttributePath",
    "Axis",
    "BooleanCondition",
    "Comparison",
    "ConditionBuilder",
    "CubeState",
    "Dice",
    "DiceCondition",
    "DrillAcrossError",
    "DrillAcrossResult",
    "DrillDown",
    "ExecutionReport",
    "drill_across",
    "execute_drill_across",
    "MeasureRef",
    "NotCondition",
    "Operation",
    "QLBuilder",
    "QLEngine",
    "QLProgram",
    "QLResult",
    "QLSemanticError",
    "QLSyntaxError",
    "ResultCube",
    "RollUp",
    "SimplificationReport",
    "SimplifiedProgram",
    "Slice",
    "Statement",
    "Translation",
    "TranslationMetadata",
    "all_of",
    "any_of",
    "attr",
    "check_program",
    "execute_ql",
    "measure",
    "negate",
    "parse_ql",
    "simplify",
    "simplify_with_report",
    "translate",
]
