"""Parser for the QL surface syntax.

Accepts the notation of the paper's demo query:

.. code-block:: text

    PREFIX data: <http://eurostat.linked-statistics.org/data/>;
    PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
    QUERY
    $C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
    $C2 := ROLLUP ($C1, schema:citizenshipDim, schema:continent);
    $C3 := ROLLUP ($C2, schema:timeDim, schema:year);
    $C4 := DICE ($C3, (schema:citizenshipDim|schema:continent|
                       schema:continentName = "Africa"));
    $C5 := DICE ($C4, schema:destinationDim|property:geo|
                      schema:countryName = "France");

Prefix declarations may end with ``;`` (as printed in the paper) or
not (SPARQL style).  Dice conditions support ``AND`` / ``OR`` / ``NOT``
and parentheses; values are strings, numbers, booleans or IRIs.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Union

from repro.rdf.namespace import DEFAULT_PREFIXES
from repro.rdf.terms import (
    IRI,
    Literal,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from repro.ql.ast import (
    AttributePath,
    BooleanCondition,
    Comparison,
    Dice,
    DiceCondition,
    DrillDown,
    MeasureRef,
    NotCondition,
    QLProgram,
    QLSyntaxError,
    RollUp,
    Slice,
    Statement,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*|//[^\n]*)
  | (?P<IRIREF><[^<>"{}|^`\\\x00-\x20]*>)
  | (?P<ASSIGN>:=)
  | (?P<VAR>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"(?:[^"\\\n]|\\.)*”|"(?:[^"\\\n]|\\.)*"|“(?:[^”\\\n])*”)
  | (?P<DOUBLE>[+-]?(?:\d+\.\d*[eE][+-]?\d+|\.?\d+[eE][+-]?\d+))
  | (?P<DECIMAL>[+-]?\d*\.\d+)
  | (?P<INTEGER>[+-]?\d+)
  | (?P<KEYWORD>\b(?:PREFIX|QUERY|ROLLUP|DRILLDOWN|SLICE|DICE|AND|OR|NOT|TRUE|FALSE)\b)
  | (?P<PNAME>[A-Za-z][\w\-]*:[\w\-.%]*[\w\-%]|[A-Za-z][\w\-]*:|:[\w\-.%]+)
  | (?P<OP><=|>=|!=|=|<|>)
  | (?P<PUNCT>[(),;|])
    """,
    re.VERBOSE | re.IGNORECASE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "KEYWORD" and self.text.upper() in names

    def is_punct(self, *chars: str) -> bool:
        return self.kind == "PUNCT" and self.text in chars

    def __repr__(self) -> str:
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QLSyntaxError(f"unexpected character {text[pos]!r}", line)
        kind = match.lastgroup or ""
        chunk = match.group()
        line += chunk.count("\n")
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, chunk, line))
        pos = match.end()
    tokens.append(_Token("EOF", "", line))
    return tokens


class _QLParser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.position = 0
        self.prefixes: Dict[str, str] = {
            prefix: ns.base for prefix, ns in DEFAULT_PREFIXES.items()}

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.position + ahead, len(self.tokens) - 1)]

    def next(self) -> _Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def error(self, message: str, token: Optional[_Token] = None
              ) -> QLSyntaxError:
        token = token or self.peek()
        return QLSyntaxError(f"{message}, got {token.text!r}", token.line)

    def expect_punct(self, char: str) -> None:
        token = self.next()
        if not token.is_punct(char):
            raise self.error(f"expected {char!r}", token)

    # -- grammar ------------------------------------------------------------

    def parse(self) -> QLProgram:
        program = QLProgram()
        while self.peek().is_keyword("PREFIX"):
            self._prefix_decl()
        program.prefixes = dict(self.prefixes)
        if self.peek().is_keyword("QUERY"):
            self.next()
        while self.peek().kind == "VAR":
            program.statements.append(self._statement())
        if self.peek().kind != "EOF":
            raise self.error("unexpected trailing content")
        if not program.statements:
            raise QLSyntaxError("QL program has no statements")
        return program

    def _prefix_decl(self) -> None:
        self.next()  # PREFIX
        name = self.next()
        if name.kind != "PNAME" or not name.text.endswith(":"):
            raise self.error("expected prefix name", name)
        iri = self.next()
        if iri.kind != "IRIREF":
            raise self.error("expected IRI", iri)
        self.prefixes[name.text[:-1]] = iri.text[1:-1]
        if self.peek().is_punct(";"):
            self.next()

    def _statement(self) -> Statement:
        var = self.next()
        assign = self.next()
        if assign.kind != "ASSIGN":
            raise self.error("expected ':='", assign)
        keyword = self.next()
        if not keyword.is_keyword("ROLLUP", "DRILLDOWN", "SLICE", "DICE"):
            raise self.error("expected an operation", keyword)
        self.expect_punct("(")
        input_ref = self._input_ref()
        self.expect_punct(",")
        op_name = keyword.text.upper()
        if op_name in ("ROLLUP", "DRILLDOWN"):
            dimension = self._iri()
            self.expect_punct(",")
            level = self._iri()
            operation = RollUp(dimension, level) if op_name == "ROLLUP" \
                else DrillDown(dimension, level)
        elif op_name == "SLICE":
            operation = Slice(self._iri())
        else:
            operation = Dice(self._condition())
        self.expect_punct(")")
        if self.peek().is_punct(";"):
            self.next()
        return Statement(var.text, input_ref, operation)

    def _input_ref(self) -> Union[str, IRI]:
        token = self.peek()
        if token.kind == "VAR":
            self.next()
            return token.text
        return self._iri()

    def _iri(self) -> IRI:
        token = self.next()
        if token.kind == "IRIREF":
            return IRI(token.text[1:-1])
        if token.kind == "PNAME":
            prefix, _, local = token.text.partition(":")
            namespace = self.prefixes.get(prefix)
            if namespace is None:
                raise QLSyntaxError(
                    f"undefined prefix {prefix!r}", token.line)
            return IRI(namespace + local)
        raise self.error("expected an IRI", token)

    # -- dice conditions -------------------------------------------------------

    def _condition(self) -> DiceCondition:
        return self._or_condition()

    def _or_condition(self) -> DiceCondition:
        operands = [self._and_condition()]
        while self.peek().is_keyword("OR"):
            self.next()
            operands.append(self._and_condition())
        if len(operands) == 1:
            return operands[0]
        return BooleanCondition("OR", tuple(operands))

    def _and_condition(self) -> DiceCondition:
        operands = [self._not_condition()]
        while self.peek().is_keyword("AND"):
            self.next()
            operands.append(self._not_condition())
        if len(operands) == 1:
            return operands[0]
        return BooleanCondition("AND", tuple(operands))

    def _not_condition(self) -> DiceCondition:
        if self.peek().is_keyword("NOT"):
            self.next()
            return NotCondition(self._not_condition())
        if self.peek().is_punct("("):
            self.next()
            condition = self._condition()
            self.expect_punct(")")
            return condition
        return self._comparison()

    def _comparison(self) -> Comparison:
        first = self._iri()
        if self.peek().is_punct("|"):
            self.next()
            level = self._iri()
            self.expect_punct("|")
            attribute = self._iri()
            operand = AttributePath(first, level, attribute)
        else:
            operand = MeasureRef(first)
        op_token = self.next()
        if op_token.kind != "OP":
            raise self.error("expected a comparison operator", op_token)
        value = self._value()
        return Comparison(operand, op_token.text, value)

    def _value(self) -> Union[Literal, IRI]:
        token = self.next()
        if token.kind == "STRING":
            body = token.text
            if body.startswith('"') and body.endswith('"'):
                from repro.rdf.ntriples import unescape_string
                return Literal(unescape_string(body[1:-1], token.line),
                               datatype=XSD_STRING)
            # tolerate typographic quotes as printed in the paper's PDF
            body = body.strip('"').strip("“”")
            return Literal(body.replace('\\"', '"'), datatype=XSD_STRING)
        if token.kind == "INTEGER":
            return Literal(token.text, datatype=XSD_INTEGER)
        if token.kind == "DECIMAL":
            return Literal(token.text, datatype=XSD_DECIMAL)
        if token.kind == "DOUBLE":
            return Literal(token.text, datatype=XSD_DOUBLE)
        if token.is_keyword("TRUE", "FALSE"):
            return Literal(token.text.lower(), datatype=XSD_BOOLEAN)
        if token.kind in ("IRIREF", "PNAME"):
            self.position -= 1
            return self._iri()
        raise self.error("expected a value", token)


def parse_ql(text: str) -> QLProgram:
    """Parse QL text into a :class:`~repro.ql.ast.QLProgram`."""
    return _QLParser(text).parse()
