"""Deterministic, seedable fault injection (failpoints).

Production engines earn their resilience claims by *exercising* every
failure path, not by hoping.  This module provides **failpoints**:
named hooks compiled into the engine's hot paths (the evaluator's batch
loops, ``Graph.add_all``, the endpoint's parse step, external fetches)
that tests and the ``bench-resilience`` gate arm to inject latency,
exceptions or partial batches — deterministically, under a seed.

Design constraints:

* **zero overhead when disarmed** — call sites guard with the
  module-level :data:`ACTIVE` flag (a plain bool read) before calling
  :func:`fire`, so the un-instrumented fast path costs one attribute
  load;
* **deterministic** — probabilistic firing draws from a per-failpoint
  ``random.Random(seed)``, and ``skip_first`` / ``max_hits`` windows
  are exact hit counts, so a failing schedule replays identically;
* **scoped** — a failpoint can be restricted to a set of threads
  (``only_threads``), so a storm test injects faults into its writer
  while its readers stay healthy.

Usage::

    from repro.testing import faults

    with faults.failpoint("evaluator.batch", delay=0.05):
        ...        # every solution batch now takes an extra 50ms

    with faults.failpoint("graph.add_all.step", raises=RuntimeError,
                          skip_first=10):
        ...        # the 11th triple of the batch explodes

Call sites are instrumented as::

    if faults.ACTIVE:
        faults.fire("graph.add_all.step")

and batch producers that can be truncated use :func:`clip`::

    rows = faults.clip("external.fetch.rows", rows)
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set

__all__ = ["ACTIVE", "FAILPOINTS", "FaultInjected", "failpoint", "fire",
           "clip"]

#: Fast-path guard: ``True`` iff at least one failpoint is armed.
#: Instrumented call sites read this before calling :func:`fire`.
ACTIVE = False


class FaultInjected(RuntimeError):
    """Default exception an armed ``raises=True`` failpoint throws."""


class _Failpoint:
    """One armed failpoint (created by :meth:`FailpointRegistry.arm`)."""

    __slots__ = ("name", "raises", "delay", "probability", "rng",
                 "skip_first", "max_hits", "hits", "fired", "only_threads",
                 "keep_rows", "callback")

    def __init__(self, name: str, *,
                 raises: Optional[object] = None,
                 delay: float = 0.0,
                 probability: float = 1.0,
                 seed: int = 0,
                 skip_first: int = 0,
                 max_hits: Optional[int] = None,
                 only_threads: Optional[Sequence[threading.Thread]] = None,
                 keep_rows: Optional[int] = None,
                 callback: Optional[Callable[[], None]] = None) -> None:
        self.name = name
        self.raises = raises
        self.delay = delay
        self.probability = probability
        self.rng = random.Random(seed)
        self.skip_first = skip_first
        self.max_hits = max_hits
        self.hits = 0       # times the site was reached (post thread filter)
        self.fired = 0      # times an effect was actually injected
        self.only_threads: Optional[Set[threading.Thread]] = (
            set(only_threads) if only_threads is not None else None)
        self.keep_rows = keep_rows
        self.callback = callback

    def _should_fire(self) -> bool:
        if self.only_threads is not None \
                and threading.current_thread() not in self.only_threads:
            return False
        self.hits += 1
        if self.hits <= self.skip_first:
            return False
        if self.max_hits is not None and self.fired >= self.max_hits:
            return False
        if self.probability < 1.0 and self.rng.random() >= self.probability:
            return False
        self.fired += 1
        return True

    def trigger(self) -> None:
        if not self._should_fire():
            return
        if self.callback is not None:
            self.callback()
        if self.delay:
            time.sleep(self.delay)
        if self.raises is not None:
            exc = self.raises
            if exc is True:
                raise FaultInjected(f"failpoint {self.name!r} fired")
            if isinstance(exc, type) and issubclass(exc, BaseException):
                raise exc(f"failpoint {self.name!r} fired")
            if isinstance(exc, BaseException):
                raise exc
            raise FaultInjected(f"failpoint {self.name!r} fired: {exc}")

    def clip(self, rows: list) -> list:
        if self.keep_rows is None or not self._should_fire():
            return rows
        return rows[: self.keep_rows]


class FailpointRegistry:
    """The process-wide registry of armed failpoints.

    Arming and disarming hold a mutex; :meth:`fire` reads the dict
    without one (assignment is atomic and tests arm before spawning
    load threads), keeping the armed fast path cheap too.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._points: Dict[str, _Failpoint] = {}

    def arm(self, name: str, **options) -> _Failpoint:
        """Arm ``name``; see :class:`_Failpoint` for the options."""
        global ACTIVE
        point = _Failpoint(name, **options)
        with self._lock:
            self._points[name] = point
            ACTIVE = True
        return point

    def disarm(self, name: str) -> None:
        global ACTIVE
        with self._lock:
            self._points.pop(name, None)
            if not self._points:
                ACTIVE = False

    def reset(self) -> None:
        global ACTIVE
        with self._lock:
            self._points.clear()
            ACTIVE = False

    def get(self, name: str) -> Optional[_Failpoint]:
        return self._points.get(name)

    def fire(self, name: str) -> None:
        point = self._points.get(name)
        if point is not None:
            point.trigger()

    def clip(self, name: str, rows: list) -> list:
        point = self._points.get(name)
        if point is None:
            return rows
        return point.clip(rows)

    def armed(self) -> List[str]:
        with self._lock:
            return sorted(self._points)


#: The process-wide failpoint registry.
FAILPOINTS = FailpointRegistry()


def fire(name: str) -> None:
    """Trigger failpoint ``name`` if armed (call sites guard on
    :data:`ACTIVE` first, so this is never reached when disarmed)."""
    FAILPOINTS.fire(name)


def clip(name: str, rows: list) -> list:
    """Truncate ``rows`` per an armed ``keep_rows`` failpoint (partial
    batch injection); returns ``rows`` unchanged when disarmed."""
    if not ACTIVE:
        return rows
    return FAILPOINTS.clip(name, rows)


class failpoint:
    """Context manager arming one failpoint for a ``with`` block.

    >>> from repro.testing import faults
    >>> with faults.failpoint("demo.site", raises=KeyError):
    ...     faults.fire("demo.site")
    Traceback (most recent call last):
        ...
    KeyError: "failpoint 'demo.site' fired"
    >>> faults.ACTIVE
    False
    """

    def __init__(self, name: str, **options) -> None:
        self.name = name
        self.options = options
        self.point: Optional[_Failpoint] = None

    def __enter__(self) -> _Failpoint:
        self.point = FAILPOINTS.arm(self.name, **self.options)
        return self.point

    def __exit__(self, *_exc) -> None:
        FAILPOINTS.disarm(self.name)
