"""Deterministic testing utilities (fault injection)."""
