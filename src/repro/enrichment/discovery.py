"""Functional-dependency discovery over level instances.

The multidimensional-design rationale (paper ref. [7], Romero & Abelló):
a property ``p`` of the members of level ``l`` that behaves like a
function ``l → p`` is a sound candidate for a coarser granularity
level, because grouping by its values partitions the members.  In the
messy Linked Data context exact FDs are rare, so the module also admits
*quasi-FDs*: functions violated by at most a configurable fraction of
members.

Given the member-property table collected by
:mod:`repro.enrichment.instances`, :func:`discover_candidates` profiles
every property and classifies it as

* a **level candidate** — IRI-valued, (quasi-)functional, and actually
  *grouping* (clearly fewer distinct values than members);
* an **attribute candidate** — (quasi-)functional but either
  literal-valued or nearly unique per member (a descriptive property);
* or **rejected** — too sparse, too multi-valued, or excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rdf.terms import IRI, Literal, Term
from repro.enrichment.config import EnrichmentConfig

LEVEL = "level"
ATTRIBUTE = "attribute"
REJECTED = "rejected"


@dataclass
class PropertyProfile:
    """Statistics of one property over a member set."""

    prop: IRI
    n_members: int
    values_by_member: Dict[Term, List[Term]] = field(default_factory=dict)

    # -- derived statistics --------------------------------------------------

    @property
    def with_value(self) -> int:
        return sum(1 for values in self.values_by_member.values() if values)

    @property
    def multi_valued(self) -> int:
        return sum(1 for values in self.values_by_member.values()
                   if len(values) > 1)

    @property
    def missing(self) -> int:
        return self.n_members - self.with_value

    @property
    def distinct_values(self) -> int:
        seen = set()
        for values in self.values_by_member.values():
            seen.update(values)
        return len(seen)

    @property
    def support(self) -> float:
        if self.n_members == 0:
            return 0.0
        return self.with_value / self.n_members

    @property
    def fd_error(self) -> float:
        """Fraction of members violating functionality (0 or >1 values)."""
        if self.n_members == 0:
            return 1.0
        return (self.missing + self.multi_valued) / self.n_members

    @property
    def is_exact_fd(self) -> bool:
        return self.fd_error == 0.0

    @property
    def distinct_ratio(self) -> float:
        if self.with_value == 0:
            return 1.0
        return self.distinct_values / self.with_value

    @property
    def all_iri_values(self) -> bool:
        return all(
            isinstance(value, IRI)
            for values in self.values_by_member.values()
            for value in values) and self.with_value > 0

    @property
    def all_literal_values(self) -> bool:
        return all(
            isinstance(value, Literal)
            for values in self.values_by_member.values()
            for value in values) and self.with_value > 0

    def functional_mapping(self, policy: str = "first"
                           ) -> Dict[Term, List[Term]]:
        """member → parent value(s), resolved per the multi-parent policy."""
        mapping: Dict[Term, List[Term]] = {}
        for member, values in self.values_by_member.items():
            if not values:
                continue
            if len(values) == 1 or policy == "all":
                mapping[member] = sorted(
                    values, key=lambda t: getattr(t, "value", str(t)))
            else:  # "first": deterministic single parent
                mapping[member] = [min(
                    values, key=lambda t: getattr(t, "value", str(t)))]
        return mapping


@dataclass
class Candidate:
    """One suggestion shown to the user."""

    prop: IRI
    kind: str  # LEVEL or ATTRIBUTE
    profile: PropertyProfile

    @property
    def score(self) -> float:
        """Ranking: strong grouping + high support + low error first."""
        profile = self.profile
        grouping = 1.0 - profile.distinct_ratio
        return (2.0 * grouping) + profile.support - (3.0 * profile.fd_error)

    def describe(self) -> str:
        profile = self.profile
        return (
            f"{self.kind.upper():9s} {self.prop.value} "
            f"support={profile.support:.2f} "
            f"error={profile.fd_error:.2f} "
            f"distinct={profile.distinct_values}/{profile.with_value}")


def profile_properties(
        member_property_table: Dict[IRI, Dict[Term, List[Term]]],
        n_members: int) -> List[PropertyProfile]:
    """Build profiles from the raw member-property table."""
    profiles = []
    for prop, values_by_member in member_property_table.items():
        profiles.append(PropertyProfile(
            prop=prop,
            n_members=n_members,
            values_by_member=dict(values_by_member)))
    return profiles


def classify_profile(profile: PropertyProfile,
                     config: EnrichmentConfig) -> str:
    """LEVEL / ATTRIBUTE / REJECTED decision for one property."""
    if profile.prop.value in config.excluded_properties:
        return REJECTED
    if profile.support < config.min_support:
        return REJECTED
    if profile.fd_error > config.quasi_fd_threshold:
        return REJECTED
    if profile.all_iri_values:
        if (profile.distinct_ratio <= config.max_level_distinct_ratio
                and profile.distinct_values >= config.min_level_distinct):
            return LEVEL
        return ATTRIBUTE
    if profile.all_literal_values:
        return ATTRIBUTE
    return REJECTED


def discover_candidates(
        member_property_table: Dict[IRI, Dict[Term, List[Term]]],
        n_members: int,
        config: Optional[EnrichmentConfig] = None) -> List[Candidate]:
    """Ranked level/attribute candidates for one level's member set."""
    config = config or EnrichmentConfig()
    config.validate()
    candidates: List[Candidate] = []
    for profile in profile_properties(member_property_table, n_members):
        kind = classify_profile(profile, config)
        if kind == REJECTED:
            continue
        candidates.append(Candidate(profile.prop, kind, profile))
    candidates.sort(key=lambda c: (-c.score, c.prop.value))
    return candidates


def level_candidates(candidates: Sequence[Candidate]) -> List[Candidate]:
    """Only the level-kind candidates of a discovery run."""
    return [c for c in candidates if c.kind == LEVEL]


def attribute_candidates(candidates: Sequence[Candidate]) -> List[Candidate]:
    """Only the attribute-kind candidates of a discovery run."""
    return [c for c in candidates if c.kind == ATTRIBUTE]
