"""The Triple Generation Phase.

Once the user finishes conforming the hierarchies, the RDF triples for
both the schema and the schema instances are generated and loaded into
the endpoint (paper §III-A).  Schema triples land in the ``schema``
named graph, instance triples (level membership, ``skos:broader``
roll-up links, copied attribute values) in the ``instances`` graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.rdf.namespace import SKOS
from repro.rdf.terms import IRI, Term, Triple
from repro.sparql.endpoint import LocalEndpoint
from repro.qb4olap import vocabulary as qb4o
from repro.qb4olap.model import CubeSchema
from repro.qb4olap.writer import schema_triples
from repro.enrichment.config import EnrichmentConfig
from repro.enrichment.hierarchy import LevelState, StepState


@dataclass
class GenerationReport:
    """What the phase wrote where."""

    schema_triples: int
    membership_triples: int
    rollup_triples: int
    attribute_triples: int

    @property
    def instance_triples(self) -> int:
        return (self.membership_triples + self.rollup_triples
                + self.attribute_triples)

    @property
    def total(self) -> int:
        return self.schema_triples + self.instance_triples


def instance_triples(levels: Dict[IRI, LevelState],
                     steps: Iterable[StepState],
                     config: Optional[EnrichmentConfig] = None
                     ) -> Dict[str, List[Triple]]:
    """Instance triples grouped by kind (membership/rollup/attribute)."""
    config = config or EnrichmentConfig()
    membership: List[Triple] = []
    rollups: List[Triple] = []
    attributes: List[Triple] = []
    for state in levels.values():
        for member in state.members:
            membership.append(Triple(member, qb4o.memberOf, state.iri))
        if config.copy_attribute_triples:
            for attribute, per_member in state.attributes.items():
                for member, values in per_member.items():
                    for value in values:
                        attributes.append(Triple(member, attribute, value))
    for step in steps:
        for child, parents in step.mapping.items():
            for parent in parents:
                rollups.append(Triple(child, SKOS.broader, parent))
    return {
        "membership": membership,
        "rollup": rollups,
        "attribute": attributes,
    }


def generate(endpoint: LocalEndpoint,
             schema: CubeSchema,
             levels: Dict[IRI, LevelState],
             steps: Iterable[StepState],
             schema_graph: IRI,
             instance_graph: IRI,
             config: Optional[EnrichmentConfig] = None) -> GenerationReport:
    """Write schema + instance triples into the endpoint's named graphs."""
    config = config or EnrichmentConfig()
    schema_count = endpoint.insert_triples(
        schema_triples(schema), graph=schema_graph)
    grouped = instance_triples(levels, steps, config)
    membership_count = endpoint.insert_triples(
        grouped["membership"], graph=instance_graph)
    rollup_count = endpoint.insert_triples(
        grouped["rollup"], graph=instance_graph)
    attribute_count = endpoint.insert_triples(
        grouped["attribute"], graph=instance_graph)
    return GenerationReport(
        schema_triples=schema_count,
        membership_triples=membership_count,
        rollup_triples=rollup_count,
        attribute_triples=attribute_count,
    )
