"""Fine-tuning parameters of the Enrichment module.

The paper (§III-A) highlights that QB2OLAP exposes fine-tuning
parameters "for the aggregate function, level detection, and triple
generation", which are "essential to deal with data quality issues,
e.g., by searching for quasi FDs (i.e., an FD with an allowed error
threshold)".  This module is that configuration surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.rdf.namespace import Namespace, OWL, RDF, RDFS, SKOS
from repro.rdf.terms import IRI
from repro.qb4olap import vocabulary as qb4o
from repro.data.namespaces import SCHEMA

#: Properties never suggested as roll-up candidates: structural RDF(S)
#: machinery rather than domain links.
DEFAULT_EXCLUDED_PROPERTIES: FrozenSet[str] = frozenset({
    RDF.type.value,
    RDFS.label.value,
    RDFS.comment.value,
    RDFS.seeAlso.value,
    OWL.sameAs.value,
    SKOS.prefLabel.value,
    SKOS.notation.value,
    SKOS.broader.value,
    SKOS.narrower.value,
    SKOS.inScheme.value,
})


@dataclass
class EnrichmentConfig:
    """All knobs of the enrichment workflow.

    Level detection
        ``quasi_fd_threshold`` — max fraction of level members that may
        violate functionality (0 or >1 values) for a property to remain
        a candidate.  0.0 demands an exact FD.

        ``min_support`` — min fraction of members that must have the
        property at all.

        ``max_level_distinct_ratio`` — a property whose distinct-value
        count is close to the member count does not *group* anything;
        above this ratio it is suggested as an attribute instead of a
        level.

        ``min_level_distinct`` — a grouping into fewer than this many
        values is degenerate (everything maps to one bucket) unless it
        is an intentional All level.

    Aggregate functions
        ``default_aggregate`` applies to every measure unless
        ``measure_aggregates`` overrides it by measure IRI.

    Triple generation
        ``copy_attribute_triples`` — materialize attribute values into
        the instance graph (self-contained output, as the tool loads
        everything into its own endpoint).

        ``multi_parent_policy`` — what to do when a quasi-FD member has
        several parent values: keep only the ``"first"`` (deterministic,
        keeps hierarchies strict) or ``"all"`` (faithful to the data,
        produces non-strict hierarchies).
    """

    # level detection
    quasi_fd_threshold: float = 0.0
    min_support: float = 0.8
    max_level_distinct_ratio: float = 0.5
    min_level_distinct: int = 2
    excluded_properties: FrozenSet[str] = DEFAULT_EXCLUDED_PROPERTIES

    # aggregate functions
    default_aggregate: IRI = qb4o.SUM
    measure_aggregates: Dict[IRI, IRI] = field(default_factory=dict)

    # triple generation
    schema_namespace: Namespace = SCHEMA
    copy_attribute_triples: bool = True
    multi_parent_policy: str = "first"

    def aggregate_for(self, measure: IRI) -> IRI:
        return self.measure_aggregates.get(measure, self.default_aggregate)

    def validate(self) -> None:
        if not 0.0 <= self.quasi_fd_threshold <= 1.0:
            raise ValueError("quasi_fd_threshold must be within [0, 1]")
        if not 0.0 <= self.min_support <= 1.0:
            raise ValueError("min_support must be within [0, 1]")
        if not 0.0 < self.max_level_distinct_ratio <= 1.0:
            raise ValueError("max_level_distinct_ratio must be in (0, 1]")
        if self.min_level_distinct < 1:
            raise ValueError("min_level_distinct must be >= 1")
        if self.multi_parent_policy not in ("first", "all"):
            raise ValueError("multi_parent_policy must be 'first' or 'all'")
