"""The Redefinition Phase: adjust a QB schema to QB4OLAP semantics.

Paper §III-A: "dimensions are redefined as levels (e.g.,
``[qb:dimension property:citizen]`` is redefined to ``[qb4o:level
property:citizen; qb4o:cardinality qb4o:ManyToOne]``) while measures
are copied and an aggregate function is assigned to them".

The phase produces the *initial* cube schema: one dimension per QB
dimension property, each with a single hierarchy containing only the
bottom level (the original component property), plus the measures with
their configured aggregate functions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rdf.terms import IRI
from repro.sparql.endpoint import LocalEndpoint
from repro.qb4olap import vocabulary as qb4o
from repro.qb4olap.model import CubeSchema, Dimension, Hierarchy, Measure
from repro.enrichment.config import EnrichmentConfig


def read_qb_components(endpoint: LocalEndpoint, dsd: IRI
                       ) -> Tuple[List[IRI], List[IRI]]:
    """(dimension properties, measure properties) of a plain-QB DSD."""
    query = f"""
    PREFIX qb: <http://purl.org/linked-data/cube#>
    SELECT ?dim ?meas WHERE {{
        <{dsd.value}> qb:component ?c .
        OPTIONAL {{ ?c qb:dimension ?dim }}
        OPTIONAL {{ ?c qb:measure ?meas }}
    }}
    """
    dimensions: List[IRI] = []
    measures: List[IRI] = []
    for row in endpoint.select(query):
        dimension = row.get("dim")
        measure = row.get("meas")
        if isinstance(dimension, IRI) and dimension not in dimensions:
            dimensions.append(dimension)
        if isinstance(measure, IRI) and measure not in measures:
            measures.append(measure)
    dimensions.sort(key=lambda iri: iri.value)
    measures.sort(key=lambda iri: iri.value)
    return dimensions, measures


def nice_name(prop: IRI) -> str:
    """A readable base name for minted IRIs (``refPeriod`` → ``refPeriod``)."""
    return prop.local_name().replace("-", "_")


def redefine(endpoint: LocalEndpoint, dataset: IRI, dsd: IRI,
             config: Optional[EnrichmentConfig] = None,
             dimension_names: Optional[Dict[IRI, str]] = None) -> CubeSchema:
    """Run the Redefinition Phase and return the initial cube schema.

    ``dimension_names`` optionally maps dimension properties to the
    base names used for the minted dimension/hierarchy IRIs (the demo
    passes the paper's names: ``citizenshipDim`` etc.); unmapped
    properties get ``<localName>Dim``.
    """
    config = config or EnrichmentConfig()
    config.validate()
    names = dimension_names or {}
    schema_ns = config.schema_namespace

    dimension_props, measure_props = read_qb_components(endpoint, dsd)
    if not dimension_props:
        raise ValueError(f"DSD {dsd} declares no qb:dimension components")
    if not measure_props:
        raise ValueError(f"DSD {dsd} declares no qb:measure components")

    new_dsd = schema_ns[nice_name(dsd) + "QB4O"]
    schema = CubeSchema(dsd=new_dsd, dataset=dataset)

    for prop in dimension_props:
        base = names.get(prop, nice_name(prop) + "Dim")
        if base.endswith("Dim"):
            hierarchy_base = base[:-3] + "Hier"
        else:
            hierarchy_base = base + "Hier"
        dimension_iri = schema_ns[base]
        hierarchy_iri = schema_ns[hierarchy_base]
        dimension = Dimension(dimension_iri)
        hierarchy = Hierarchy(hierarchy_iri, dimension_iri,
                              levels=[prop], steps=[])
        dimension.hierarchies.append(hierarchy)
        schema.dimensions.append(dimension)
        schema.dimension_levels[dimension_iri] = prop
        schema.cardinalities[prop] = qb4o.MANY_TO_ONE

    for prop in measure_props:
        schema.measures.append(Measure(prop, config.aggregate_for(prop)))

    return schema
