"""Recorded enrichment sessions: export, serialize and replay.

The paper's enrichment is *interactive* — the user picks roll-up
candidates in a GUI — and its setting is the "Linked Data dynamic
context involving external and non-controlled data sources" (§III-A).
That combination makes reproducibility a real problem: the choices live
in clicks.  This module captures a session's accepted suggestions as a
:class:`EnrichmentScript` — a JSON-serializable list of steps — that
can be replayed against a fresh endpoint: the same discovery queries
run again, and the recorded choices are re-applied as long as the
source data still supports them (a missing candidate raises
:class:`ReplayError` instead of silently diverging).

>>> script = EnrichmentScript.from_session(session)
>>> text = script.to_json()                      # store next to the data
>>> EnrichmentScript.from_json(text).replay(new_session)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.rdf.terms import IRI

ADD_LEVEL = "add_level"
ADD_ATTRIBUTE = "add_attribute"
ADD_ALL_LEVEL = "add_all_level"

_ACTIONS = (ADD_LEVEL, ADD_ATTRIBUTE, ADD_ALL_LEVEL)


class ReplayError(Exception):
    """A recorded choice is no longer available in the source data."""


@dataclass(frozen=True)
class ScriptStep:
    """One recorded user choice."""

    action: str
    #: the level the choice applied to (dimension IRI for all-levels)
    target: str
    #: the accepted discovered property (None for all-levels)
    prop: Optional[str] = None
    #: the level IRI the step minted, recorded for verification
    minted: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown script action {self.action!r}")


@dataclass
class EnrichmentScript:
    """A replayable record of one enrichment session's choices."""

    dataset: str
    dsd: str
    steps: List[ScriptStep] = field(default_factory=list)
    quasi_fd_threshold: float = 0.0

    # -- capture -----------------------------------------------------------------

    @classmethod
    def from_session(cls, session) -> "EnrichmentScript":
        """Capture the accepted choices of an
        :class:`~repro.enrichment.session.EnrichmentSession`."""
        script = cls(dataset=session.dataset.value,
                     dsd=session.dsd.value,
                     quasi_fd_threshold=session.config.quasi_fd_threshold)
        script.steps = list(session.actions)
        return script

    # -- serialization ------------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        document = {
            "dataset": self.dataset,
            "dsd": self.dsd,
            "quasi_fd_threshold": self.quasi_fd_threshold,
            "steps": [
                {key: value
                 for key, value in (("action", step.action),
                                    ("target", step.target),
                                    ("prop", step.prop),
                                    ("minted", step.minted))
                 if value is not None}
                for step in self.steps
            ],
        }
        return json.dumps(document, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EnrichmentScript":
        try:
            document = json.loads(text)
            steps = [ScriptStep(action=entry["action"],
                                target=entry["target"],
                                prop=entry.get("prop"),
                                minted=entry.get("minted"))
                     for entry in document["steps"]]
            return cls(dataset=document["dataset"],
                       dsd=document["dsd"],
                       steps=steps,
                       quasi_fd_threshold=document.get(
                           "quasi_fd_threshold", 0.0))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) \
                as error:
            raise ReplayError(f"malformed enrichment script: {error}")

    # -- replay -----------------------------------------------------------------------

    def replay(self, session, generate: bool = False):
        """Re-apply the recorded choices on a fresh session.

        The session must target the same data set and DSD.  Runs
        :meth:`redefine` if the session has not yet; optionally runs
        the Triple Generation Phase.  Returns the resulting schema.
        """
        if session.dataset.value != self.dataset:
            raise ReplayError(
                f"script was recorded for {self.dataset}, session targets "
                f"{session.dataset.value}")
        if session.dsd.value != self.dsd:
            raise ReplayError(
                f"script was recorded for DSD {self.dsd}, session targets "
                f"{session.dsd.value}")
        if session.schema is None:
            session.redefine()
        for step in self.steps:
            target = IRI(step.target)
            if step.action == ADD_ALL_LEVEL:
                session.add_all_level(target)
                continue
            if step.action == ADD_LEVEL:
                options = session.level_suggestions(target)
            else:
                options = session.attribute_suggestions(target)
            chosen = next((candidate for candidate in options
                           if candidate.prop.value == step.prop), None)
            if chosen is None:
                raise ReplayError(
                    f"recorded candidate {step.prop} for "
                    f"{target.local_name()} is no longer discovered "
                    "(source data changed or threshold too strict)")
            if step.action == ADD_LEVEL:
                minted = session.add_level(target, chosen)
                if step.minted is not None \
                        and minted.value != step.minted:
                    raise ReplayError(
                        f"replay minted {minted.value}, the recording "
                        f"minted {step.minted}")
            else:
                session.add_attribute(target, chosen)
        if generate:
            session.generate()
        return session.schema

    def __len__(self) -> int:
        return len(self.steps)
