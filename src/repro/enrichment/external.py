"""External linked-data sources for enrichment.

The demo shows that "in the presence of linked data sets, our tool is
able to extract dimensional information (schema and instances) from
other data sets (e.g., DBpedia)".  This module implements that path:
an :class:`ExternalSource` wraps a second endpoint (offline, the
DBpedia stand-in built by :mod:`repro.data.reference`), and
:func:`import_member_triples` copies the triples describing a member
set into the local endpoint so later phases are self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term, Triple
from repro.sparql.endpoint import LocalEndpoint
from repro.data.namespaces import REFERENCE_GRAPH


@dataclass
class ExternalSource:
    """A remote linked-data endpoint (simulated locally)."""

    name: str
    endpoint: LocalEndpoint

    @classmethod
    def from_graph(cls, name: str, graph: Graph) -> "ExternalSource":
        endpoint = LocalEndpoint()
        endpoint.insert_triples(graph)
        return cls(name, endpoint)

    def describe_member(self, member: Term) -> List[Triple]:
        """All triples with ``member`` as subject (a CBD-lite)."""
        if not isinstance(member, IRI):
            return []
        table = self.endpoint.select(
            f"SELECT ?p ?v WHERE {{ <{member.value}> ?p ?v }}")
        triples: List[Triple] = []
        for row in table:
            predicate = row.get("p")
            value = row.get("v")
            if isinstance(predicate, IRI) and value is not None:
                triples.append(Triple(member, predicate, value))
        return triples


def import_member_triples(local: LocalEndpoint,
                          source: ExternalSource,
                          members: Sequence[Term],
                          target_graph: IRI = REFERENCE_GRAPH,
                          follow_objects: bool = True) -> int:
    """Copy external descriptions of ``members`` into ``local``.

    With ``follow_objects`` the IRI objects of the imported triples are
    described too (one hop), so discovered parent members arrive with
    their own attributes — e.g. importing countries also brings each
    continent's ``continentName``.
    """
    imported: List[Triple] = []
    frontier: List[Term] = list(members)
    described: set = set()
    hops = 2 if follow_objects else 1
    for _ in range(hops):
        next_frontier: List[Term] = []
        for member in frontier:
            if member in described:
                continue
            described.add(member)
            for triple in source.describe_member(member):
                imported.append(triple)
                if isinstance(triple.object, IRI) \
                        and triple.object not in described:
                    next_frontier.append(triple.object)
        frontier = next_frontier
    return local.insert_triples(imported, graph=target_graph)
