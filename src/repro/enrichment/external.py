"""External linked-data sources for enrichment.

The demo shows that "in the presence of linked data sets, our tool is
able to extract dimensional information (schema and instances) from
other data sets (e.g., DBpedia)".  This module implements that path:
an :class:`ExternalSource` wraps a second endpoint (offline, the
DBpedia stand-in built by :mod:`repro.data.reference`), and
:func:`import_member_triples` copies the triples describing a member
set into the local endpoint so later phases are self-contained.

**Resilience.**  Real remote endpoints hang, flap and rate-limit.
Every fetch therefore runs under a :class:`FetchPolicy`: a per-attempt
deadline (enforced cooperatively through the query governor's
:class:`~repro.sparql.governor.QueryLimits`), bounded
exponential-backoff retries, and a per-source
:class:`~repro.sparql.governor.CircuitBreaker` that fails fast once
the source is known bad instead of burning a worker per doomed call.
Failures surface as :class:`ExternalFetchError` (or
:class:`~repro.sparql.governor.CircuitOpenError` while the breaker is
open) — never as a hung thread.  The ``external.fetch`` /
``external.fetch.rows`` failpoints let tests inject latency, faults
and partial batches deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Term, Triple
from repro.sparql.endpoint import LocalEndpoint
from repro.sparql.errors import EndpointError
from repro.sparql.governor import (
    CircuitBreaker,
    CircuitOpenError,
    QueryLimits,
    retry_with_backoff,
)
from repro.testing import faults as _faults
from repro.data.namespaces import REFERENCE_GRAPH


class ExternalFetchError(RuntimeError):
    """A fetch from an external source failed after all retries."""

    code = "external_fetch_failed"

    def __init__(self, message: str, *, source: str = "",
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.source = source
        self.attempts = attempts


@dataclass
class FetchPolicy:
    """How aggressively to pursue one external source.

    ``attempts`` bounds retries per fetch; ``base_delay`` /
    ``max_delay`` shape the exponential backoff between them;
    ``attempt_deadline`` is the per-attempt wall-clock budget (enforced
    through the governor — the simulated remote query is cancelled
    cooperatively, exactly as a socket timeout would cut a real one);
    ``breaker_threshold`` / ``breaker_cooldown`` configure the
    per-source circuit breaker.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 1.0
    attempt_deadline: Optional[float] = 5.0
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0


@dataclass
class ExternalSource:
    """A remote linked-data endpoint (simulated locally).

    Fetches go through the source's :class:`FetchPolicy` and circuit
    breaker; pass ``policy=None``-defaults for the old trusting
    behavior in unit fixtures.
    """

    name: str
    endpoint: LocalEndpoint
    policy: FetchPolicy = field(default_factory=FetchPolicy)
    breaker: Optional[CircuitBreaker] = None
    #: injectable sleep used between retry attempts (tests pass a
    #: recorder so backoff schedules are asserted without waiting)
    sleep: object = None

    def __post_init__(self) -> None:
        if self.breaker is None:
            self.breaker = CircuitBreaker(
                failure_threshold=self.policy.breaker_threshold,
                cooldown_seconds=self.policy.breaker_cooldown)

    @classmethod
    def from_graph(cls, name: str, graph: Graph,
                   policy: Optional[FetchPolicy] = None) -> "ExternalSource":
        endpoint = LocalEndpoint()
        endpoint.insert_triples(graph)
        return cls(name, endpoint, policy=policy or FetchPolicy())

    def _fetch(self, query: str):
        """One governed fetch attempt (the unit retries wrap).

        The attempt's wall-clock budget covers the *whole* attempt:
        latency spent before the query runs (connection setup here,
        simulated by the ``external.fetch`` failpoint's ``delay``)
        eats into the deadline the query itself gets, exactly as a
        socket timeout would.
        """
        import time as _time
        started = _time.monotonic()
        if _faults.ACTIVE:
            _faults.fire(f"external.fetch.{self.name}")
            _faults.fire("external.fetch")
        limits = None
        deadline = self.policy.attempt_deadline
        if deadline is not None:
            remaining = deadline - (_time.monotonic() - started)
            if remaining <= 0:
                from repro.sparql.errors import QueryTimeout
                raise QueryTimeout(
                    f"fetch from {self.name!r} exceeded its "
                    f"{deadline:.3f}s attempt deadline before the "
                    f"query could run")
            limits = QueryLimits(deadline_seconds=remaining)
        return self.endpoint.select(query, limits=limits)

    def fetch(self, query: str):
        """Run ``query`` against the source with retries + breaker.

        Raises :class:`CircuitOpenError` instantly while the breaker is
        open, :class:`ExternalFetchError` once retries are exhausted.
        """
        kwargs = {}
        if self.sleep is not None:
            kwargs["sleep"] = self.sleep
        try:
            return retry_with_backoff(
                lambda: self._fetch(query),
                attempts=self.policy.attempts,
                base_delay=self.policy.base_delay,
                max_delay=self.policy.max_delay,
                retry_on=(EndpointError, _faults.FaultInjected),
                breaker=self.breaker,
                **kwargs)
        except CircuitOpenError:
            raise
        except (EndpointError, _faults.FaultInjected) as error:
            raise ExternalFetchError(
                f"fetch from {self.name!r} failed after "
                f"{self.policy.attempts} attempts: {error}",
                source=self.name,
                attempts=self.policy.attempts) from error

    def describe_member(self, member: Term) -> List[Triple]:
        """All triples with ``member`` as subject (a CBD-lite)."""
        if not isinstance(member, IRI):
            return []
        table = self.fetch(
            f"SELECT ?p ?v WHERE {{ <{member.value}> ?p ?v }}")
        rows = list(table)
        if _faults.ACTIVE:
            rows = _faults.clip("external.fetch.rows", rows)
        triples: List[Triple] = []
        for row in rows:
            predicate = row.get("p")
            value = row.get("v")
            if isinstance(predicate, IRI) and value is not None:
                triples.append(Triple(member, predicate, value))
        return triples


def import_member_triples(local: LocalEndpoint,
                          source: ExternalSource,
                          members: Sequence[Term],
                          target_graph: IRI = REFERENCE_GRAPH,
                          follow_objects: bool = True) -> int:
    """Copy external descriptions of ``members`` into ``local``.

    With ``follow_objects`` the IRI objects of the imported triples are
    described too (one hop), so discovered parent members arrive with
    their own attributes — e.g. importing countries also brings each
    continent's ``continentName``.
    """
    imported: List[Triple] = []
    frontier: List[Term] = list(members)
    described: set = set()
    hops = 2 if follow_objects else 1
    for _ in range(hops):
        next_frontier: List[Term] = []
        for member in frontier:
            if member in described:
                continue
            described.add(member)
            for triple in source.describe_member(member):
                imported.append(triple)
                if isinstance(triple.object, IRI) \
                        and triple.object not in described:
                    next_frontier.append(triple.object)
        frontier = next_frontier
    return local.insert_triples(imported, graph=target_graph)
