"""The interactive Enrichment workflow (paper Fig. 2).

:class:`EnrichmentSession` drives the three phases:

1. :meth:`redefine` — Redefinition Phase;
2. :meth:`suggestions` / :meth:`add_level` / :meth:`add_attribute` /
   :meth:`add_all_level` — the iterative Enrichment Phase ("the tasks
   are iteratively repeated until the user has added all desired levels
   and conformed the dimension hierarchies");
3. :meth:`generate` — Triple Generation Phase.

The "user" of the GUI is replaced by programmatic calls; the
:meth:`auto_enrich` convenience plays a scripted user that accepts the
top-ranked level candidate chain per dimension (used by examples,
benchmarks and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.rdf.terms import IRI, Term
from repro.sparql.endpoint import LocalEndpoint
from repro.qb4olap import vocabulary as qb4o
from repro.qb4olap.model import CubeSchema, HierarchyStep
from repro.data.namespaces import INSTANCE_GRAPH, SCHEMA_GRAPH
from repro.enrichment.config import EnrichmentConfig
from repro.enrichment.discovery import (
    ATTRIBUTE,
    Candidate,
    LEVEL,
    discover_candidates,
)
from repro.enrichment.generation import GenerationReport, generate
from repro.enrichment.hierarchy import (
    LevelState,
    StepState,
    attach_level,
    build_step_state,
    mint_level_iri,
)
from repro.enrichment.instances import (
    collect_bottom_members,
    collect_member_property_table,
)
from repro.enrichment.redefinition import redefine


class EnrichmentError(Exception):
    """Workflow misuse: wrong phase order, unknown levels, ..."""


@dataclass
class EnrichmentLogEntry:
    """One user-visible action taken during the session."""

    action: str
    detail: str


class EnrichmentSession:
    """Stateful enrichment of one QB data set."""

    def __init__(self, endpoint: LocalEndpoint, dataset: IRI, dsd: IRI,
                 config: Optional[EnrichmentConfig] = None,
                 dimension_names: Optional[Dict[IRI, str]] = None,
                 schema_graph: IRI = SCHEMA_GRAPH,
                 instance_graph: IRI = INSTANCE_GRAPH) -> None:
        self.endpoint = endpoint
        self.dataset = dataset
        self.dsd = dsd
        self.config = config or EnrichmentConfig()
        self.config.validate()
        self.dimension_names = dimension_names or {}
        self.schema_graph = schema_graph
        self.instance_graph = instance_graph

        self.schema: Optional[CubeSchema] = None
        self.levels: Dict[IRI, LevelState] = {}
        self.steps: List[StepState] = []
        self.log: List[EnrichmentLogEntry] = []
        #: structured record of accepted choices (enrichment scripts)
        self.actions: List = []
        self._candidate_cache: Dict[IRI, List[Candidate]] = {}
        self._external_endpoints: List[LocalEndpoint] = []

    # -- phase 1 -----------------------------------------------------------------

    def redefine(self) -> CubeSchema:
        """Run the Redefinition Phase and collect bottom-level members."""
        self.schema = redefine(self.endpoint, self.dataset, self.dsd,
                               self.config, self.dimension_names)
        for dimension in self.schema.dimensions:
            bottom = self.schema.dimension_levels[dimension.iri]
            members = collect_bottom_members(
                self.endpoint, self.dataset, bottom)
            self.levels[bottom] = LevelState(iri=bottom, members=members)
            self._log("redefine",
                      f"dimension {dimension.iri.local_name()} at level "
                      f"{bottom.local_name()} ({len(members)} members)")
        return self.schema

    # -- phase 2 -----------------------------------------------------------------

    def attach_external(self, endpoint: LocalEndpoint) -> None:
        """Register an external linked-data source (e.g. DBpedia stand-in).

        Member-property discovery will consult it in addition to the
        local endpoint; see :mod:`repro.enrichment.external` for triple
        import.
        """
        self._external_endpoints.append(endpoint)
        self._candidate_cache.clear()

    def suggestions(self, level: IRI,
                    refresh: bool = False) -> List[Candidate]:
        """Ranked candidates (levels + attributes) for ``level``."""
        self._require_schema()
        if level not in self.levels:
            raise EnrichmentError(f"unknown level {level}")
        if refresh or level not in self._candidate_cache:
            members = self.levels[level].members
            table = collect_member_property_table(self.endpoint, members)
            for external in self._external_endpoints:
                external_table = collect_member_property_table(
                    external, members)
                for prop, per_member in external_table.items():
                    merged = table.setdefault(prop, {})
                    for member, values in per_member.items():
                        existing = merged.setdefault(member, [])
                        for value in values:
                            if value not in existing:
                                existing.append(value)
            self._candidate_cache[level] = discover_candidates(
                table, len(members), self.config)
        return self._candidate_cache[level]

    def level_suggestions(self, level: IRI) -> List[Candidate]:
        return [c for c in self.suggestions(level) if c.kind == LEVEL]

    def attribute_suggestions(self, level: IRI) -> List[Candidate]:
        return [c for c in self.suggestions(level) if c.kind == ATTRIBUTE]

    def add_level(self, child_level: IRI, candidate: Candidate,
                  level_iri: Optional[IRI] = None) -> IRI:
        """Accept a level candidate: mint the level, update the hierarchy."""
        self._require_schema()
        if child_level not in self.levels:
            raise EnrichmentError(f"unknown level {child_level}")
        if candidate.kind != LEVEL:
            raise EnrichmentError(
                f"candidate {candidate.prop} is not a level candidate")
        new_level = level_iri
        if new_level is None:
            # conformed-level reuse: another dimension may already have
            # minted a level from the same discovered property
            for state in self.levels.values():
                if state.source_property == candidate.prop:
                    new_level = state.iri
                    break
        if new_level is None:
            new_level = mint_level_iri(
                self.config.schema_namespace, candidate.prop, self.levels)
        step, level_state = build_step_state(
            child_level, new_level, candidate.profile,
            self.config.multi_parent_policy)
        self.steps.append(step)
        existing = self.levels.get(new_level)
        if existing is not None:
            # shared (conformed) level: merge any new parent members
            known = set(existing.members)
            for member in level_state.members:
                if member not in known:
                    known.add(member)
                    existing.members.append(member)
            self._log("add_level",
                      f"{child_level.local_name()} -> "
                      f"{new_level.local_name()} (shared)")
            attach_level(self.schema, child_level, new_level,
                         step.cardinality)
            self._record("add_level", child_level, candidate.prop, new_level)
            return new_level
        self.levels[new_level] = level_state
        attach_level(self.schema, child_level, new_level, step.cardinality)
        self._log("add_level",
                  f"{child_level.local_name()} -> {new_level.local_name()} "
                  f"({len(level_state.members)} members, "
                  f"error={candidate.profile.fd_error:.2%})")
        self._record("add_level", child_level, candidate.prop, new_level)
        return new_level

    def add_attribute(self, level: IRI, candidate: Candidate) -> None:
        """Accept an attribute candidate for ``level``."""
        self._require_schema()
        if level not in self.levels:
            raise EnrichmentError(f"unknown level {level}")
        if candidate.kind != ATTRIBUTE:
            raise EnrichmentError(
                f"candidate {candidate.prop} is not an attribute candidate")
        state = self.levels[level]
        state.attributes[candidate.prop] = {
            member: list(values)
            for member, values in candidate.profile.values_by_member.items()
            if values
        }
        attrs = self.schema.level_attributes.setdefault(level, [])
        if candidate.prop not in attrs:
            attrs.append(candidate.prop)
        self._log("add_attribute",
                  f"{level.local_name()} += {candidate.prop.local_name()}")
        self._record("add_attribute", level, candidate.prop)

    def add_all_level(self, dimension_iri: IRI,
                      member_label: str = "all") -> IRI:
        """Add an explicit All top level (paper's ``schema:citAll``)."""
        self._require_schema()
        dimension = self.schema.require_dimension(dimension_iri)
        hierarchy = dimension.hierarchies[0]
        tops = hierarchy.top_levels()
        if not tops:
            raise EnrichmentError(
                f"hierarchy {hierarchy.iri} has no top level")
        top = tops[0]
        base = self.dimension_names.get(dimension_iri)
        name = dimension_iri.local_name()
        if name.endswith("Dim"):
            name = name[:-3]
        all_level = self.config.schema_namespace[f"{name}All"]
        all_member = self.config.schema_namespace[f"{name}All/{member_label}"]
        mapping = {member: [all_member]
                   for member in self.levels[top].members}
        step = StepState(child=top, parent=all_level, mapping=mapping,
                         cardinality=qb4o.MANY_TO_ONE)
        self.steps.append(step)
        self.levels[all_level] = LevelState(iri=all_level,
                                            members=[all_member])
        attach_level(self.schema, top, all_level, qb4o.MANY_TO_ONE)
        self._log("add_all_level",
                  f"{dimension_iri.local_name()}: {top.local_name()} -> "
                  f"{all_level.local_name()}")
        self._record("add_all_level", dimension_iri, None, all_level)
        return all_level

    # -- phase 3 -----------------------------------------------------------------

    def generate(self) -> GenerationReport:
        """Run the Triple Generation Phase against the endpoint."""
        self._require_schema()
        report = generate(
            self.endpoint, self.schema, self.levels, self.steps,
            schema_graph=self.schema_graph,
            instance_graph=self.instance_graph,
            config=self.config)
        self._log("generate",
                  f"schema={report.schema_triples} "
                  f"instances={report.instance_triples}")
        return report

    # -- scripted user --------------------------------------------------------------

    def auto_enrich(self,
                    max_depth: int = 3,
                    add_attributes: bool = True,
                    add_all_levels: bool = False,
                    prefer: Optional[Sequence[str]] = None,
                    choose: Optional[Callable[[List[Candidate]],
                                              Optional[Candidate]]] = None
                    ) -> CubeSchema:
        """Play a scripted user: per dimension, repeatedly accept the
        best level candidate (up to ``max_depth`` new levels) and all
        attribute candidates.

        ``prefer`` simulates user preference by property local name
        (e.g. ``["continent", "quarter", "year"]`` makes Mary pick the
        geographic chain over the government-kind one).  ``choose``
        overrides the selection policy entirely; returning ``None``
        stops the chain for the current dimension.
        """
        self._require_schema()
        if choose is not None:
            pick = choose
        elif prefer is not None:
            preference = list(prefer)

            def pick(candidates: List[Candidate]) -> Optional[Candidate]:
                for name in preference:
                    for candidate in candidates:
                        if candidate.prop.local_name() == name:
                            return candidate
                return None

        else:
            pick = lambda candidates: candidates[0] if candidates else None
        for dimension in self.schema.dimensions:
            current = self.schema.dimension_levels[dimension.iri]
            for _ in range(max_depth):
                candidates = self.suggestions(current)
                if add_attributes:
                    for attribute in (c for c in candidates
                                      if c.kind == ATTRIBUTE):
                        self.add_attribute(current, attribute)
                level_options = [c for c in candidates if c.kind == LEVEL]
                chosen = pick(level_options)
                if chosen is None:
                    break
                current = self.add_level(current, chosen)
            else:
                # depth exhausted: still sweep attributes of the top level
                current_candidates = self.suggestions(current)
                if add_attributes:
                    for attribute in (c for c in current_candidates
                                      if c.kind == ATTRIBUTE):
                        self.add_attribute(current, attribute)
                if add_all_levels:
                    self.add_all_level(dimension.iri)
                continue
            # chain stopped before depth: attributes of the final level
            candidates = self.suggestions(current)
            if add_attributes:
                for attribute in (c for c in candidates
                                  if c.kind == ATTRIBUTE):
                    self.add_attribute(current, attribute)
            if add_all_levels:
                self.add_all_level(dimension.iri)
        return self.schema

    # -- helpers ------------------------------------------------------------------

    def _require_schema(self) -> None:
        if self.schema is None:
            raise EnrichmentError(
                "run redefine() before the Enrichment Phase")

    def _log(self, action: str, detail: str) -> None:
        self.log.append(EnrichmentLogEntry(action, detail))

    def _record(self, action: str, target: IRI, prop: Optional[IRI],
                minted: Optional[IRI] = None) -> None:
        from repro.enrichment.script import ScriptStep
        self.actions.append(ScriptStep(
            action=action,
            target=target.value,
            prop=prop.value if prop is not None else None,
            minted=minted.value if minted is not None else None))

    def export_script(self):
        """The session's accepted choices as a replayable
        :class:`~repro.enrichment.script.EnrichmentScript`."""
        from repro.enrichment.script import EnrichmentScript
        return EnrichmentScript.from_session(self)

    def describe(self) -> str:
        """The tree view the GUI shows (Fig. 4), as text."""
        self._require_schema()
        lines = [f"Cube {self.dataset.value}"]
        for dimension in self.schema.dimensions:
            lines.append(f"└─ {dimension.iri.local_name()}")
            for hierarchy in dimension.hierarchies:
                lines.append(f"   └─ {hierarchy.iri.local_name()}")
                ordered = _levels_bottom_up(hierarchy)
                for depth, level in enumerate(ordered):
                    state = self.levels.get(level)
                    count = len(state.members) if state else 0
                    attributes = self.schema.attributes_of(level)
                    suffix = f" ({count} members)"
                    if attributes:
                        names = ", ".join(a.local_name() for a in attributes)
                        suffix += f" [attrs: {names}]"
                    indent = "      " + "   " * depth
                    lines.append(f"{indent}└─ {level.local_name()}{suffix}")
        return "\n".join(lines)


def _levels_bottom_up(hierarchy) -> List[IRI]:
    """Hierarchy levels ordered bottom → top (following the steps)."""
    return hierarchy.levels_bottom_up()
