"""The Enrichment module: semi-automatic QB → QB4OLAP transformation.

Implements the three-phase workflow of the paper's Fig. 2 — the
Redefinition Phase, the iterative Enrichment Phase driven by
(quasi-)functional-dependency discovery over level instances, and the
Triple Generation Phase — plus the fine-tuning configuration and the
external linked-data import path.
"""

from repro.enrichment.config import DEFAULT_EXCLUDED_PROPERTIES, EnrichmentConfig
from repro.enrichment.discovery import (
    ATTRIBUTE,
    Candidate,
    LEVEL,
    PropertyProfile,
    REJECTED,
    classify_profile,
    discover_candidates,
)
from repro.enrichment.external import ExternalSource, import_member_triples
from repro.enrichment.generation import GenerationReport
from repro.enrichment.hierarchy import LevelState, StepState, infer_cardinality
from repro.enrichment.instances import (
    collect_bottom_members,
    collect_member_property_table,
    member_properties,
)
from repro.enrichment.redefinition import read_qb_components, redefine
from repro.enrichment.script import EnrichmentScript, ReplayError, ScriptStep
from repro.enrichment.session import (
    EnrichmentError,
    EnrichmentLogEntry,
    EnrichmentSession,
)

__all__ = [
    "ATTRIBUTE",
    "Candidate",
    "DEFAULT_EXCLUDED_PROPERTIES",
    "EnrichmentConfig",
    "EnrichmentError",
    "EnrichmentLogEntry",
    "EnrichmentScript",
    "EnrichmentSession",
    "ReplayError",
    "ScriptStep",
    "ExternalSource",
    "GenerationReport",
    "LEVEL",
    "LevelState",
    "PropertyProfile",
    "REJECTED",
    "StepState",
    "classify_profile",
    "collect_bottom_members",
    "collect_member_property_table",
    "discover_candidates",
    "import_member_triples",
    "infer_cardinality",
    "member_properties",
    "read_qb_components",
    "redefine",
]
