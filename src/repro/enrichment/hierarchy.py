"""Hierarchy construction and update during the Enrichment Phase.

When the user accepts a candidate, a new (coarser) level is minted, the
owning hierarchy gains the level and a hierarchy step, and the session
records the member-level roll-up mapping that the Triple Generation
Phase later materializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rdf.terms import IRI, Term
from repro.qb4olap import vocabulary as qb4o
from repro.qb4olap.model import CubeSchema, Hierarchy, HierarchyStep
from repro.enrichment.discovery import PropertyProfile


@dataclass
class LevelState:
    """Working state of one level: its members and attribute values."""

    iri: IRI
    members: List[Term] = field(default_factory=list)
    #: attribute property → member → values
    attributes: Dict[IRI, Dict[Term, List[Term]]] = field(default_factory=dict)
    #: the discovered property this level was minted from (None for
    #: bottom levels and All levels); lets two dimensions share a
    #: conformed level discovered through the same property.
    source_property: Optional[IRI] = None


@dataclass
class StepState:
    """Working state of one roll-up step: the member mapping."""

    child: IRI
    parent: IRI
    #: child member → parent member(s) (normally a single one)
    mapping: Dict[Term, List[Term]] = field(default_factory=dict)
    cardinality: IRI = qb4o.MANY_TO_ONE


def infer_cardinality(mapping: Dict[Term, List[Term]]) -> IRI:
    """Data-driven cardinality of a child→parent mapping."""
    if any(len(parents) > 1 for parents in mapping.values()):
        return qb4o.MANY_TO_MANY
    parent_counts: Dict[Term, int] = {}
    for parents in mapping.values():
        for parent in parents:
            parent_counts[parent] = parent_counts.get(parent, 0) + 1
    if parent_counts and all(count == 1 for count in parent_counts.values()):
        return qb4o.ONE_TO_ONE
    return qb4o.MANY_TO_ONE


def mint_level_iri(schema_namespace, prop: IRI,
                   existing: Optional[Dict[IRI, LevelState]] = None) -> IRI:
    """Derive a level IRI from the discovered property's local name.

    ``ref-prop:continent`` becomes ``schema:continent``, matching the
    paper's ``schema:continent`` for ``property:citizen``'s parent.
    When the name is taken by a level with *different* semantics the
    caller passes ``existing`` and gets a suffixed IRI instead.
    """
    base = prop.local_name()
    candidate = schema_namespace[base]
    if existing is None or candidate not in existing:
        return candidate
    counter = 2
    while schema_namespace[f"{base}{counter}"] in existing:
        counter += 1
    return schema_namespace[f"{base}{counter}"]


def attach_level(schema: CubeSchema, child_level: IRI, new_level: IRI,
                 cardinality: IRI) -> Hierarchy:
    """Add ``new_level`` above ``child_level`` in its owning hierarchy.

    Mirrors the paper's automatic hierarchy update: "When a new level
    is added, the dimension hierarchies are automatically constructed
    or updated".
    """
    dimension = schema.dimension_of_level(child_level)
    if dimension is None:
        raise ValueError(f"level {child_level} belongs to no dimension")
    hierarchy = None
    for candidate in dimension.hierarchies:
        if child_level in candidate.levels:
            hierarchy = candidate
            break
    if hierarchy is None:  # pragma: no cover - dimension always has one
        raise ValueError(f"no hierarchy contains level {child_level}")
    if new_level not in hierarchy.levels:
        hierarchy.levels.append(new_level)
    if hierarchy.step_between(child_level, new_level) is None:
        hierarchy.steps.append(
            HierarchyStep(child_level, new_level, cardinality))
    return hierarchy


def build_step_state(child_level: IRI, new_level: IRI,
                     profile: PropertyProfile,
                     multi_parent_policy: str) -> Tuple[StepState, LevelState]:
    """Materialize the member mapping and the new level's member set."""
    mapping = profile.functional_mapping(policy=multi_parent_policy)
    step = StepState(
        child=child_level,
        parent=new_level,
        mapping=mapping,
        cardinality=infer_cardinality(mapping),
    )
    parents: List[Term] = []
    seen = set()
    for parent_values in mapping.values():
        for parent in parent_values:
            if parent not in seen:
                seen.add(parent)
                parents.append(parent)
    parents.sort(key=lambda term: getattr(term, "value", str(term)))
    level_state = LevelState(iri=new_level, members=parents,
                             source_property=profile.prop)
    return step, level_state
