"""Level-instance collection (the query side of the Enrichment Phase).

The paper: "the Enrichment Phase collects the level instances and their
properties.  A query is run for each level instance and the results are
processed to discover the properties that represent functional
dependencies."  These helpers issue exactly those SPARQL queries
against the endpoint, so the endpoint's query log reflects the same
workload profile as the paper's tool against Virtuoso.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.rdf.terms import IRI, Term
from repro.sparql.endpoint import LocalEndpoint


def collect_bottom_members(endpoint: LocalEndpoint, dataset: IRI,
                           dimension_property: IRI) -> List[Term]:
    """Distinct observation values of one QB dimension property."""
    query = f"""
    PREFIX qb: <http://purl.org/linked-data/cube#>
    SELECT DISTINCT ?member WHERE {{
        ?obs qb:dataSet <{dataset.value}> .
        ?obs <{dimension_property.value}> ?member .
    }}
    """
    table = endpoint.select(query)
    members = [row["member"] for row in table if "member" in row]
    return sorted(members, key=lambda term: getattr(term, "value", str(term)))


def member_properties(endpoint: LocalEndpoint, member: Term
                      ) -> Dict[IRI, List[Term]]:
    """All (predicate → values) of one member — one query per instance."""
    if not isinstance(member, IRI):
        return {}
    query = f"""
    SELECT ?p ?v WHERE {{ <{member.value}> ?p ?v . }}
    """
    table = endpoint.select(query)
    properties: Dict[IRI, List[Term]] = {}
    for row in table:
        predicate = row.get("p")
        value = row.get("v")
        if isinstance(predicate, IRI) and value is not None:
            properties.setdefault(predicate, []).append(value)
    return properties


def collect_member_property_table(
        endpoint: LocalEndpoint, members: Sequence[Term]
) -> Dict[IRI, Dict[Term, List[Term]]]:
    """Property → (member → values) over a whole member set.

    Issues one query per member, mirroring the paper's workflow; the
    endpoint statistics therefore count ``len(members)`` SELECTs for
    this phase.
    """
    table: Dict[IRI, Dict[Term, List[Term]]] = {}
    for member in members:
        for predicate, values in member_properties(endpoint, member).items():
            table.setdefault(predicate, {})[member] = values
    return table


def observation_count(endpoint: LocalEndpoint, dataset: IRI) -> int:
    """Number of observations the endpoint holds for a data set."""
    query = f"""
    PREFIX qb: <http://purl.org/linked-data/cube#>
    SELECT (COUNT(?obs) AS ?n) WHERE {{
        ?obs qb:dataSet <{dataset.value}> .
    }}
    """
    table = endpoint.select(query)
    rows = table.to_python()
    return int(rows[0]["n"]) if rows else 0
