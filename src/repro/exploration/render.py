"""Graph renderings of the Exploration module's views.

The paper's Exploration front end draws the dimension-instance graph
with D3.js (Fig. 5: "Nodes represent level members (e.g., Syria) and
edges represent roll-up relationships") and the Enrichment GUI shows
the cube structure as a tree (Fig. 4).  Without a browser canvas, this
module renders the same information as **Graphviz DOT** documents —
`dot -Tsvg` regenerates the figures — plus compact text trees.

* :func:`instance_graph_dot` — the Fig. 5 member graph: one subgraph
  cluster per level, roll-up edges between members;
* :func:`schema_dot` — the Fig. 4 cube-structure view: dimensions →
  hierarchies → levels (+ attributes), with level-to-level roll-up
  arrows;
* :func:`hierarchy_text` — a plain tree of one dimension's levels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.rdf.terms import IRI, Term
from repro.qb4olap.model import CubeSchema
from repro.exploration.browser import InstanceBrowser


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_id(term: Term, taken: Dict[Term, str]) -> str:
    if term not in taken:
        taken[term] = f"n{len(taken)}"
    return taken[term]


def instance_graph_dot(browser: InstanceBrowser, dimension_iri: IRI,
                       max_members_per_level: Optional[int] = None) -> str:
    """The Fig. 5 view as DOT: level clusters + roll-up edges.

    ``max_members_per_level`` truncates big bottom levels for legible
    plots; edges to omitted members are dropped with a count note.
    """
    schema = browser.schema
    dimension = schema.require_dimension(dimension_iri)
    hierarchy = dimension.hierarchies[0]
    ordered = hierarchy.levels_bottom_up()

    ids: Dict[Term, str] = {}
    lines = [
        "digraph instances {",
        "  rankdir=BT;",
        '  node [shape=ellipse, fontsize=10];',
    ]
    included: Dict[IRI, List[Term]] = {}
    for position, level in enumerate(ordered):
        members = browser.members(level)
        shown = members
        if max_members_per_level is not None:
            shown = members[:max_members_per_level]
        included[level] = shown
        lines.append(f"  subgraph cluster_{position} {{")
        lines.append(f'    label="{_dot_escape(level.local_name())}";')
        lines.append("    style=dashed;")
        for member in shown:
            label = _dot_escape(browser.member_label(member))
            lines.append(f'    {_node_id(member, ids)} [label="{label}"];')
        omitted = len(members) - len(shown)
        if omitted > 0:
            lines.append(
                f'    omitted_{position} [label="… {omitted} more", '
                'shape=plaintext];')
        lines.append("  }")
    for child_level, parent_level in zip(ordered, ordered[1:]):
        visible_children = set(included[child_level])
        visible_parents = set(included[parent_level])
        for child, parent in browser.rollup_edges(child_level, parent_level):
            if child in visible_children and parent in visible_parents:
                lines.append(
                    f"  {_node_id(child, ids)} -> {_node_id(parent, ids)};")
    lines.append("}")
    return "\n".join(lines)


def schema_dot(schema: CubeSchema) -> str:
    """The Fig. 4 cube-structure tree as DOT (schema level, no members)."""
    lines = [
        "digraph schema {",
        "  rankdir=LR;",
        "  node [fontsize=10];",
        f'  cube [label="{_dot_escape(schema.dataset.local_name())}", '
        "shape=box3d];",
    ]
    counter = 0

    def fresh(label: str, shape: str) -> str:
        nonlocal counter
        counter += 1
        name = f"s{counter}"
        lines.append(f'  {name} [label="{_dot_escape(label)}", '
                     f'shape={shape}];')
        return name

    for dimension in schema.dimensions:
        dim_node = fresh(dimension.iri.local_name(), "box")
        lines.append(f"  cube -> {dim_node};")
        for hierarchy in dimension.hierarchies:
            hier_node = fresh(hierarchy.iri.local_name(), "folder")
            lines.append(f"  {dim_node} -> {hier_node};")
            level_nodes: Dict[IRI, str] = {}
            for level in hierarchy.levels:
                label = level.local_name()
                attributes = schema.attributes_of(level)
                if attributes:
                    label += "\\n[" + ", ".join(
                        a.local_name() for a in attributes) + "]"
                level_nodes[level] = fresh(label, "ellipse")
                lines.append(f"  {hier_node} -> {level_nodes[level]} "
                             "[style=dotted, arrowhead=none];")
            for step in hierarchy.steps:
                child = level_nodes.get(step.child)
                parent = level_nodes.get(step.parent)
                if child and parent:
                    lines.append(
                        f'  {child} -> {parent} [label="rolls up"];')
    for measure in schema.measures:
        node = fresh(
            f"{measure.iri.local_name()}\\n"
            f"({measure.aggregate.local_name()})", "note")
        lines.append(f"  cube -> {node} [style=dashed];")
    lines.append("}")
    return "\n".join(lines)


def hierarchy_text(schema: CubeSchema, dimension_iri: IRI) -> str:
    """One dimension's hierarchy as an indented text tree."""
    dimension = schema.require_dimension(dimension_iri)
    lines = [dimension.iri.local_name()]
    for hierarchy in dimension.hierarchies:
        lines.append(f"└─ {hierarchy.iri.local_name()}")
        ordered = hierarchy.levels_bottom_up()
        for depth, level in enumerate(ordered):
            attributes = schema.attributes_of(level)
            suffix = ""
            if attributes:
                suffix = " [" + ", ".join(
                    a.local_name() for a in attributes) + "]"
            lines.append("   " * (depth + 1) + f"└─ {level.local_name()}"
                         + suffix)
    return "\n".join(lines)
