"""The Exploration module: navigate enriched cubes and their instances.

Replaces the paper's D3.js front end with programmatic navigation and
text renderings: the cube catalog, schema exploration (dimensions →
hierarchies → levels → attributes), instance browsing with roll-up
edges and Fig.-5-style clustering, and cube statistics.
"""

from repro.exploration.browser import InstanceBrowser
from repro.exploration.catalog import CubeInfo, list_cubes
from repro.exploration.explorer import CubeExplorer
from repro.exploration.render import (
    hierarchy_text,
    instance_graph_dot,
    schema_dot,
)
from repro.exploration.stats import CubeStatistics, MeasureSummary

__all__ = [
    "CubeExplorer",
    "CubeInfo",
    "CubeStatistics",
    "InstanceBrowser",
    "MeasureSummary",
    "hierarchy_text",
    "instance_graph_dot",
    "list_cubes",
    "schema_dot",
]
