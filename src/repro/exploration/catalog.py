"""Cube catalog: discover QB4OLAP cubes stored in an endpoint.

The Exploration module "allows to choose a data cube (represented in
QB4OLAP) among a collection of cubes stored in an endpoint".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.rdf.terms import IRI
from repro.sparql.endpoint import LocalEndpoint


@dataclass
class CubeInfo:
    """Catalog entry for one cube."""

    dataset: IRI
    dsd: IRI
    label: Optional[str]
    observations: int
    dimensions: int
    measures: int

    def __str__(self) -> str:
        label = self.label or self.dataset.local_name()
        return (f"{label} — {self.observations} observations, "
                f"{self.dimensions} dimensions, {self.measures} measures")


def list_cubes(endpoint: LocalEndpoint) -> List[CubeInfo]:
    """All QB4OLAP cubes (data sets whose DSD has level components)."""
    query = """
    PREFIX qb: <http://purl.org/linked-data/cube#>
    PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
    PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    SELECT DISTINCT ?dataset ?dsd WHERE {
        ?dataset a qb:DataSet ; qb:structure ?dsd .
        ?dsd qb:component ?c .
        ?c qb4o:level ?level .
    }
    """
    cubes: List[CubeInfo] = []
    for row in endpoint.select(query):
        dataset = row.get("dataset")
        dsd = row.get("dsd")
        if not isinstance(dataset, IRI) or not isinstance(dsd, IRI):
            continue
        cubes.append(_cube_info(endpoint, dataset, dsd))
    cubes.sort(key=lambda info: info.dataset.value)
    return cubes


def _cube_info(endpoint: LocalEndpoint, dataset: IRI, dsd: IRI) -> CubeInfo:
    label_rows = endpoint.select(f"""
    PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
    SELECT ?label WHERE {{ <{dataset.value}> rdfs:label ?label }} LIMIT 1
    """).to_python()
    label = str(label_rows[0]["label"]) if label_rows else None

    counts = endpoint.select(f"""
    PREFIX qb: <http://purl.org/linked-data/cube#>
    SELECT (COUNT(?obs) AS ?n) WHERE {{
        ?obs qb:dataSet <{dataset.value}> .
    }}
    """).to_python()
    observations = int(counts[0]["n"]) if counts else 0

    components = endpoint.select(f"""
    PREFIX qb: <http://purl.org/linked-data/cube#>
    PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
    SELECT ?level ?measure WHERE {{
        <{dsd.value}> qb:component ?c .
        OPTIONAL {{ ?c qb4o:level ?level }}
        OPTIONAL {{ ?c qb:measure ?measure }}
    }}
    """)
    levels = {row["level"] for row in components if "level" in row}
    measures = {row["measure"] for row in components if "measure" in row}
    return CubeInfo(dataset=dataset, dsd=dsd, label=label,
                    observations=observations,
                    dimensions=len(levels), measures=len(measures))
