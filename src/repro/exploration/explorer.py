"""Schema navigation: dimensions, hierarchies, levels and attributes.

The user-facing view of an enriched cube.  All navigation happens
against the cube model read back from the endpoint, so Exploration
(like the paper's module) works on any QB4OLAP cube in the store, not
only ones enriched in the current session.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.rdf.terms import IRI
from repro.sparql.endpoint import LocalEndpoint
from repro.qb4olap.model import CubeSchema, Dimension, Hierarchy
from repro.qb4olap.reader import read_cube_schema


class CubeExplorer:
    """Navigate one cube's multidimensional schema."""

    def __init__(self, endpoint: LocalEndpoint, dataset: IRI,
                 dsd: Optional[IRI] = None) -> None:
        self.endpoint = endpoint
        self.dataset = dataset
        union = endpoint.dataset.union()
        if dsd is None:
            dsd = self._pick_qb4olap_dsd(union, dataset)
        self.schema: CubeSchema = read_cube_schema(union, dataset, dsd=dsd)

    @staticmethod
    def _pick_qb4olap_dsd(graph, dataset: IRI) -> Optional[IRI]:
        """Prefer the structure that carries QB4OLAP level components."""
        from repro.qb import vocabulary as qb
        from repro.qb4olap import vocabulary as qb4o

        candidates = [o for o in graph.objects(dataset, qb.structure)
                      if isinstance(o, IRI)]
        for candidate in sorted(candidates, key=lambda iri: iri.value):
            for component in graph.objects(candidate, qb.component):
                if graph.value(component, qb4o.level, None) is not None:
                    return candidate
        return candidates[0] if candidates else None

    # -- navigation ---------------------------------------------------------------

    def dimensions(self) -> List[Dimension]:
        return list(self.schema.dimensions)

    def dimension(self, iri: IRI) -> Dimension:
        return self.schema.require_dimension(iri)

    def hierarchies(self, dimension_iri: IRI) -> List[Hierarchy]:
        return list(self.schema.require_dimension(dimension_iri).hierarchies)

    def levels(self, dimension_iri: IRI) -> List[IRI]:
        return self.schema.require_dimension(dimension_iri).levels()

    def attributes(self, level: IRI) -> List[IRI]:
        return self.schema.attributes_of(level)

    def measures(self):
        return list(self.schema.measures)

    def bottom_level(self, dimension_iri: IRI) -> IRI:
        return self.schema.bottom_level(dimension_iri)

    def rollup_targets(self, dimension_iri: IRI) -> List[IRI]:
        """Levels one can roll up to from the dimension's bottom level."""
        dimension = self.schema.require_dimension(dimension_iri)
        bottom = self.schema.bottom_level(dimension_iri)
        targets: List[IRI] = []
        for hierarchy in dimension.hierarchies:
            for level in hierarchy.levels:
                if level == bottom:
                    continue
                if hierarchy.path_up(bottom, level) is not None \
                        and level not in targets:
                    targets.append(level)
        return targets

    def describe(self) -> str:
        """The full schema tree as text (GUI tree replacement)."""
        return self.schema.describe()
