"""Instance browsing: level members, roll-up edges and clustering.

Implements the Fig. 5 interactions: "Mary explores the dimensional cube
data by clustering the instances according to their level value.  Nodes
represent level members (e.g., Syria) and edges represent roll-up
relationships."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rdf.terms import IRI, Literal, Term
from repro.sparql.endpoint import LocalEndpoint
from repro.qb4olap.model import CubeSchema


class InstanceBrowser:
    """Browse the members of an enriched cube."""

    def __init__(self, endpoint: LocalEndpoint, schema: CubeSchema) -> None:
        self.endpoint = endpoint
        self.schema = schema

    # -- members -------------------------------------------------------------------

    def members(self, level: IRI, limit: Optional[int] = None) -> List[Term]:
        query = f"""
        PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
        SELECT DISTINCT ?m WHERE {{ ?m qb4o:memberOf <{level.value}> }}
        ORDER BY ?m
        """
        if limit is not None:
            query += f" LIMIT {limit}"
        return [row["m"] for row in self.endpoint.select(query) if "m" in row]

    def member_count(self, level: IRI) -> int:
        rows = self.endpoint.select(f"""
        PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
        SELECT (COUNT(DISTINCT ?m) AS ?n)
        WHERE {{ ?m qb4o:memberOf <{level.value}> }}
        """).to_python()
        return int(rows[0]["n"]) if rows else 0

    def member_label(self, member: Term) -> str:
        """Best-effort display label for a member."""
        if isinstance(member, IRI):
            rows = self.endpoint.select(f"""
            PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
            SELECT ?l WHERE {{ <{member.value}> rdfs:label ?l }} LIMIT 1
            """).to_python()
            if rows:
                return str(rows[0]["l"])
            return member.local_name()
        return str(member)

    def member_attributes(self, member: Term, level: IRI
                          ) -> Dict[IRI, List[Term]]:
        """Values of the level's declared attributes for one member."""
        result: Dict[IRI, List[Term]] = {}
        if not isinstance(member, IRI):
            return result
        for attribute in self.schema.attributes_of(level):
            rows = self.endpoint.select(f"""
            SELECT ?v WHERE {{ <{member.value}> <{attribute.value}> ?v }}
            """)
            values = [row["v"] for row in rows if "v" in row]
            if values:
                result[attribute] = values
        return result

    # -- roll-up edges ----------------------------------------------------------------

    def rollup_edges(self, child_level: IRI, parent_level: IRI
                     ) -> List[Tuple[Term, Term]]:
        """(child member, parent member) pairs between adjacent levels."""
        query = f"""
        PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
        PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
        SELECT ?child ?parent WHERE {{
            ?child qb4o:memberOf <{child_level.value}> .
            ?child skos:broader ?parent .
            ?parent qb4o:memberOf <{parent_level.value}> .
        }}
        ORDER BY ?child ?parent
        """
        return [(row["child"], row["parent"])
                for row in self.endpoint.select(query)
                if "child" in row and "parent" in row]

    def cluster_by_level(self, dimension_iri: IRI, level: IRI
                         ) -> Dict[Term, List[Term]]:
        """Group the dimension's bottom members by ancestor at ``level``.

        This is the Fig. 5 clustering view: e.g. citizenship countries
        grouped under their continents.
        """
        bottom = self.schema.bottom_level(dimension_iri)
        if bottom == level:
            return {member: [member] for member in self.members(level)}
        _, path = self.schema.rollup_path(dimension_iri, level)
        # climb the member graph following the level path
        chains = {member: member for member in self.members(bottom)}
        current_level_members = chains
        clusters: Dict[Term, List[Term]] = {}
        for child_level, parent_level in zip(path, path[1:]):
            edges = dict(self.rollup_edges(child_level, parent_level))
            next_chains: Dict[Term, Term] = {}
            for bottom_member, current in current_level_members.items():
                parent = edges.get(current)
                if parent is not None:
                    next_chains[bottom_member] = parent
            current_level_members = next_chains
        for bottom_member, ancestor in current_level_members.items():
            clusters.setdefault(ancestor, []).append(bottom_member)
        for members in clusters.values():
            members.sort(key=lambda t: getattr(t, "value", str(t)))
        return clusters

    def render_clusters(self, dimension_iri: IRI, level: IRI,
                        max_members: int = 8) -> str:
        """Text rendering of the cluster view."""
        clusters = self.cluster_by_level(dimension_iri, level)
        lines = [f"{dimension_iri.local_name()} clustered by "
                 f"{level.local_name()}:"]
        for ancestor in sorted(clusters,
                               key=lambda t: getattr(t, "value", str(t))):
            members = clusters[ancestor]
            label = self.member_label(ancestor)
            lines.append(f"  {label} ({len(members)} members)")
            shown = members[:max_members]
            for member in shown:
                lines.append(f"    - {self.member_label(member)}")
            if len(members) > len(shown):
                lines.append(f"    … {len(members) - len(shown)} more")
        return "\n".join(lines)
