"""Cube statistics for the Exploration module.

Summaries a GUI would chart: observations per dimension member,
measure distributions, level fan-outs.  Everything is computed through
SPARQL so the module works on any endpoint-resident cube.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.rdf.terms import IRI, Term
from repro.sparql.endpoint import LocalEndpoint
from repro.qb4olap.model import CubeSchema


@dataclass
class MeasureSummary:
    measure: IRI
    count: int
    total: float
    minimum: float
    maximum: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class CubeStatistics:
    """Aggregate statistics over one cube."""

    def __init__(self, endpoint: LocalEndpoint, schema: CubeSchema) -> None:
        self.endpoint = endpoint
        self.schema = schema

    def observation_count(self) -> int:
        rows = self.endpoint.select(f"""
        PREFIX qb: <http://purl.org/linked-data/cube#>
        SELECT (COUNT(?o) AS ?n)
        WHERE {{ ?o qb:dataSet <{self.schema.dataset.value}> }}
        """).to_python()
        return int(rows[0]["n"]) if rows else 0

    def measure_summary(self, measure: IRI) -> MeasureSummary:
        rows = self.endpoint.select(f"""
        PREFIX qb: <http://purl.org/linked-data/cube#>
        SELECT (COUNT(?v) AS ?n) (SUM(?v) AS ?total)
               (MIN(?v) AS ?lo) (MAX(?v) AS ?hi)
        WHERE {{
            ?o qb:dataSet <{self.schema.dataset.value}> .
            ?o <{measure.value}> ?v .
        }}
        """).to_python()
        row = rows[0]
        return MeasureSummary(
            measure=measure,
            count=int(row["n"]),
            total=float(row["total"]),
            minimum=float(row["lo"]),
            maximum=float(row["hi"]),
        )

    def members_per_level(self) -> Dict[IRI, int]:
        counts: Dict[IRI, int] = {}
        for level in self.schema.all_levels():
            rows = self.endpoint.select(f"""
            PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
            SELECT (COUNT(DISTINCT ?m) AS ?n)
            WHERE {{ ?m qb4o:memberOf <{level.value}> }}
            """).to_python()
            counts[level] = int(rows[0]["n"]) if rows else 0
        return counts

    def observations_by_member(self, dimension_property: IRI,
                               limit: int = 10
                               ) -> List[Tuple[Term, int]]:
        """Top members of a bottom level by observation count."""
        table = self.endpoint.select(f"""
        PREFIX qb: <http://purl.org/linked-data/cube#>
        SELECT ?m (COUNT(?o) AS ?n) WHERE {{
            ?o qb:dataSet <{self.schema.dataset.value}> .
            ?o <{dimension_property.value}> ?m .
        }}
        GROUP BY ?m
        ORDER BY DESC(?n)
        LIMIT {limit}
        """)
        result: List[Tuple[Term, int]] = []
        for row in table:
            member = row.get("m")
            count = row.get("n")
            if member is not None and count is not None:
                result.append((member, int(count.value)))
        return result

    def summary_text(self) -> str:
        lines = [f"Cube: {self.schema.dataset.value}",
                 f"Observations: {self.observation_count()}"]
        for measure in self.schema.measures:
            summary = self.measure_summary(measure.iri)
            lines.append(
                f"Measure {measure.iri.local_name()}: "
                f"n={summary.count} sum={summary.total:.0f} "
                f"min={summary.minimum:.0f} max={summary.maximum:.0f} "
                f"mean={summary.mean:.1f}")
        lines.append("Members per level:")
        for level, count in self.members_per_level().items():
            lines.append(f"  {level.local_name()}: {count}")
        return "\n".join(lines)
