"""Data Structure Definitions: the schema of a QB data set.

A DSD is a set of *component specifications*, each declaring a
dimension, measure or attribute property (§II of the paper).  This
module models DSDs in Python and reads/writes them from/to RDF graphs.

>>> dsd = DataStructureDefinition(IRI("http://e/dsd"))
>>> dsd.add_dimension(IRI("http://e/refPeriod"))
>>> dsd.dimension_properties()
[IRI('http://e/refPeriod')]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.terms import BNode, IRI, Literal, Term
from repro.qb import vocabulary as qb


class QBSchemaError(Exception):
    """Raised when a graph does not contain a readable QB schema."""


@dataclass
class ComponentSpecification:
    """One ``qb:component`` entry of a DSD.

    ``kind`` is one of ``"dimension"``, ``"measure"``, ``"attribute"``.
    ``order`` mirrors ``qb:order`` (presentation ordering) and
    ``required`` mirrors ``qb:componentRequired`` for attributes.
    """

    kind: str
    property: IRI
    order: Optional[int] = None
    required: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.kind not in qb.COMPONENT_KINDS:
            raise QBSchemaError(f"unknown component kind {self.kind!r}")


@dataclass
class DataStructureDefinition:
    """A QB Data Structure Definition."""

    iri: IRI
    components: List[ComponentSpecification] = field(default_factory=list)

    # -- construction ----------------------------------------------------------

    def add_dimension(self, prop: IRI, order: Optional[int] = None) -> None:
        self.components.append(
            ComponentSpecification("dimension", prop, order=order))

    def add_measure(self, prop: IRI, order: Optional[int] = None) -> None:
        self.components.append(
            ComponentSpecification("measure", prop, order=order))

    def add_attribute(self, prop: IRI, required: Optional[bool] = None) -> None:
        self.components.append(
            ComponentSpecification("attribute", prop, required=required))

    # -- accessors ---------------------------------------------------------------

    def dimension_properties(self) -> List[IRI]:
        return [c.property for c in self.components if c.kind == "dimension"]

    def measure_properties(self) -> List[IRI]:
        return [c.property for c in self.components if c.kind == "measure"]

    def attribute_properties(self) -> List[IRI]:
        return [c.property for c in self.components if c.kind == "attribute"]

    def component_for(self, prop: IRI) -> Optional[ComponentSpecification]:
        for component in self.components:
            if component.property == prop:
                return component
        return None

    def __len__(self) -> int:
        return len(self.components)

    # -- RDF mapping ----------------------------------------------------------------

    def to_graph(self, graph: Optional[Graph] = None) -> Graph:
        """Emit the DSD triples (fresh blank node per component)."""
        target = graph if graph is not None else Graph()
        target.add(self.iri, RDF.type, qb.DataStructureDefinition)
        kind_property = {
            "dimension": qb.dimension,
            "measure": qb.measure,
            "attribute": qb.attribute,
        }
        for component in self.components:
            node = BNode()
            target.add(self.iri, qb.component, node)
            target.add(node, kind_property[component.kind], component.property)
            if component.order is not None:
                target.add(node, qb.order, Literal(component.order))
            if component.required is not None:
                target.add(node, qb.componentRequired,
                           Literal(component.required))
        return target

    @classmethod
    def from_graph(cls, graph: Graph, iri: IRI) -> "DataStructureDefinition":
        """Read the DSD rooted at ``iri`` from ``graph``."""
        if (iri, RDF.type, qb.DataStructureDefinition) not in graph:
            raise QBSchemaError(f"{iri} is not a qb:DataStructureDefinition")
        dsd = cls(iri)
        for node in graph.objects(iri, qb.component):
            component = cls._read_component(graph, node)
            if component is not None:
                dsd.components.append(component)
        dsd.components.sort(
            key=lambda c: (c.order if c.order is not None else 1 << 30,
                           c.property.value))
        return dsd

    @staticmethod
    def _read_component(graph: Graph,
                        node: Term) -> Optional[ComponentSpecification]:
        kind_property = {
            qb.dimension: "dimension",
            qb.measure: "measure",
            qb.attribute: "attribute",
        }
        found: Optional[ComponentSpecification] = None
        for prop, kind in kind_property.items():
            target = graph.value(node, prop, None)
            if target is None:
                continue
            if not isinstance(target, IRI):
                raise QBSchemaError(
                    f"component {prop} value must be an IRI, got {target!r}")
            order_term = graph.value(node, qb.order, None)
            order = None
            if isinstance(order_term, Literal):
                value = order_term.value
                if isinstance(value, int):
                    order = value
            required_term = graph.value(node, qb.componentRequired, None)
            required = None
            if isinstance(required_term, Literal):
                value = required_term.value
                if isinstance(value, bool):
                    required = value
            found = ComponentSpecification(kind, target, order=order,
                                           required=required)
            break
        return found


def find_dsds(graph: Graph) -> List[IRI]:
    """All DSD IRIs asserted in ``graph``."""
    return sorted(
        (s for s in graph.subjects(RDF.type, qb.DataStructureDefinition)
         if isinstance(s, IRI)),
        key=lambda iri: iri.value)


def dsd_for_dataset(graph: Graph, dataset: IRI) -> Optional[IRI]:
    """The DSD a dataset points to via ``qb:structure``."""
    value = graph.value(dataset, qb.structure, None)
    return value if isinstance(value, IRI) else None
