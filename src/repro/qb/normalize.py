"""The RDF Data Cube *normalization algorithm* (W3C recommendation §10).

Published QB data is usually written in the *abbreviated* form: types
are implied (observations rarely carry ``rdf:type qb:Observation``) and
attribute/dimension values attached at the data-set or slice level are
not repeated on every observation.  The recommendation defines a
normalization algorithm — two phases of SPARQL ``INSERT`` updates — that
makes all of this explicit, and the integrity constraints in
:mod:`repro.qb.constraints` are specified *against normalized graphs*.

This module executes the spec's updates verbatim on the in-repo SPARQL
engine (they exercise ``INSERT ... WHERE`` with blank-node patterns),
plus offers :func:`normalize_graph` for in-place use on a plain
:class:`~repro.rdf.graph.Graph`.

Phase 1 makes implicit types and component-property links explicit;
phase 2 pushes data-set-level and slice-level attachments down to the
observations.
"""

from __future__ import annotations

from typing import List, Optional

from repro.rdf.graph import Dataset, Graph

_PROLOGUE = """\
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX qb:  <http://purl.org/linked-data/cube#>
"""

#: Phase 1 — type and property closure (spec §10.2, run in order).
PHASE1_UPDATES: List[str] = [
    # rule 1: things referenced through qb:observation are observations
    _PROLOGUE + """
INSERT { ?o rdf:type qb:Observation . }
WHERE  { [] qb:observation ?o . }
""",
    # rule 2: subjects of qb:dataSet are observations; objects data sets
    _PROLOGUE + """
INSERT {
    ?o  rdf:type qb:Observation .
    ?ds rdf:type qb:DataSet .
}
WHERE { ?o qb:dataSet ?ds . }
""",
    # rule 3: objects of qb:slice are slices
    _PROLOGUE + """
INSERT { ?s rdf:type qb:Slice . }
WHERE  { [] qb:slice ?s . }
""",
    # rule 4-6: qb:dimension/measure/attribute imply qb:componentProperty
    # and the property's kind
    _PROLOGUE + """
INSERT {
    ?cs qb:componentProperty ?p .
    ?p  rdf:type qb:DimensionProperty .
}
WHERE { ?cs qb:dimension ?p . }
""",
    _PROLOGUE + """
INSERT {
    ?cs qb:componentProperty ?p .
    ?p  rdf:type qb:MeasureProperty .
}
WHERE { ?cs qb:measure ?p . }
""",
    _PROLOGUE + """
INSERT {
    ?cs qb:componentProperty ?p .
    ?p  rdf:type qb:AttributeProperty .
}
WHERE { ?cs qb:attribute ?p . }
""",
]

#: Phase 2 — push down attachment levels (spec §10.3, run in order).
PHASE2_UPDATES: List[str] = [
    # data-set-attached components copy to every observation
    _PROLOGUE + """
INSERT { ?obs ?comp ?value . }
WHERE {
    ?spec    qb:componentProperty ?comp ;
             qb:componentAttachment qb:DataSet .
    ?dataset qb:structure [ qb:component ?spec ] ;
             ?comp ?value .
    ?obs     qb:dataSet ?dataset .
}
""",
    # slice-attached components copy to the slice's observations
    _PROLOGUE + """
INSERT { ?obs ?comp ?value . }
WHERE {
    ?spec    qb:componentProperty ?comp ;
             qb:componentAttachment qb:Slice .
    ?dataset qb:structure [ qb:component ?spec ] ;
             qb:slice ?slice .
    ?slice   ?comp ?value ;
             qb:observation ?obs .
}
""",
    # dimensions stated on a slice hold for its observations
    _PROLOGUE + """
INSERT { ?obs ?comp ?value . }
WHERE {
    ?spec    qb:componentProperty ?comp .
    ?comp    rdf:type qb:DimensionProperty .
    ?dataset qb:structure [ qb:component ?spec ] ;
             qb:slice ?slice .
    ?slice   ?comp ?value ;
             qb:observation ?obs .
}
""",
]

ALL_UPDATES: List[str] = PHASE1_UPDATES + PHASE2_UPDATES


def normalize_endpoint(endpoint, phases: Optional[List[str]] = None) -> int:
    """Run the normalization updates on a
    :class:`~repro.sparql.endpoint.LocalEndpoint`; returns triples added.
    """
    updates = phases if phases is not None else ALL_UPDATES
    added = 0
    for update in updates:
        added += endpoint.update(update)
    return added


def normalize_graph(graph: Graph) -> int:
    """Normalize a plain graph in place; returns the triples added.

    The graph is exposed to the engine as the default graph of a
    throwaway dataset, so the spec's updates run unchanged.
    """
    from repro.sparql.endpoint import LocalEndpoint

    dataset = Dataset()
    dataset.default = graph
    endpoint = LocalEndpoint(dataset, default_as_union=False)
    return normalize_endpoint(endpoint)


def is_normalized(graph: Graph) -> bool:
    """True when running normalization would add nothing."""
    probe = graph.copy()
    return normalize_graph(probe) == 0
