"""Terms of the W3C RDF Data Cube vocabulary (QB).

Convenience constants over :data:`repro.rdf.namespace.QB` so that model
code reads like the spec: ``qb.DataStructureDefinition``,
``qb.component``, ``qb.dimension`` and so on.
"""

from __future__ import annotations

from repro.rdf.namespace import QB

# -- classes -----------------------------------------------------------------

DataSet = QB.DataSet
DataStructureDefinition = QB.DataStructureDefinition
Observation = QB.Observation
ComponentSpecification = QB.ComponentSpecification
DimensionProperty = QB.DimensionProperty
MeasureProperty = QB.MeasureProperty
AttributeProperty = QB.AttributeProperty
CodedProperty = QB.CodedProperty
SliceClass = QB.Slice
SliceKey = QB.SliceKey

# -- properties ----------------------------------------------------------------

structure = QB.structure
component = QB.component
dimension = QB.dimension
measure = QB.measure
attribute = QB.attribute
componentProperty = QB.componentProperty
componentRequired = QB.componentRequired
componentAttachment = QB.componentAttachment
order = QB.order
dataSet = QB.dataSet
observation = QB.observation
codeList = QB.codeList
concept = QB.concept
sliceStructure = QB.sliceStructure
sliceKey = QB.sliceKey

#: The three component kinds a component specification can carry.
COMPONENT_KINDS = ("dimension", "measure", "attribute")
