"""The 21 normative RDF Data Cube integrity constraints as SPARQL.

The W3C recommendation (§11.1) *defines* well-formedness operationally:
a QB data set is well-formed iff, after normalization
(:mod:`repro.qb.normalize`), every one of 21 ``ASK`` queries returns
``false``.  This module carries those queries and runs them on the
in-repo SPARQL engine — the same way the paper's tool would validate
input cubes against a Virtuoso endpoint before enrichment.

The query texts follow the spec with three engine-documented
adaptations:

* **IC-12** (no duplicate observations) uses an equivalent
  nested-``FILTER NOT EXISTS`` formulation instead of the spec's
  ``MIN(?equal)``-over-booleans subquery; both detect a pair of
  observations that agree on every dimension.
* **IC-17** restates the spec's ``HAVING (?count != ?numMeasures)``
  as ``HAVING (COUNT(?obs2) != ?numMeasures)`` (the aggregate inlined,
  same value).
* **IC-20/IC-21** are the spec's *templates*: they are expanded per
  ``qb:parentChildProperty`` value found in the graph
  (:func:`hierarchy_constraint_checks`) exactly as §11.1.1 prescribes —
  IRI-valued properties instantiate IC-20, ``owl:inverseOf`` blank
  nodes instantiate IC-21 with an inverse path.

IC-12 and IC-17 compare observation pairs (quadratic); they are flagged
``expensive`` so :func:`check_graph` can skip them on large graphs where
:mod:`repro.qb.validator` provides linear-time native equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.rdf.graph import Dataset, Graph
from repro.rdf.namespace import OWL, QB
from repro.rdf.terms import IRI
from repro.sparql.evaluator import evaluate_query
from repro.sparql.parser import parse_query

PROLOGUE = """\
PREFIX rdf:  <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
PREFIX qb:   <http://purl.org/linked-data/cube#>
PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
PREFIX owl:  <http://www.w3.org/2002/07/owl#>
"""


@dataclass
class ConstraintCheck:
    """One integrity constraint: id, spec title and its ASK queries.

    A constraint is violated when *any* of its queries returns true.
    """

    ic: str
    label: str
    queries: List[str]
    expensive: bool = False


@dataclass
class ConstraintReport:
    """Outcome of a constraint run over one graph."""

    results: Dict[str, bool] = field(default_factory=dict)
    skipped: List[str] = field(default_factory=list)

    @property
    def violations(self) -> List[str]:
        return [ic for ic, violated in self.results.items() if violated]

    @property
    def well_formed(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        lines = []
        for ic, violated in sorted(
                self.results.items(),
                key=lambda item: int(item[0].split("-")[1])):
            lines.append(f"{ic}: {'VIOLATED' if violated else 'ok'}")
        for ic in self.skipped:
            lines.append(f"{ic}: skipped")
        return "\n".join(lines)


STATIC_CONSTRAINTS: List[ConstraintCheck] = [
    ConstraintCheck("IC-1", "Unique DataSet", [PROLOGUE + """
ASK {
  {
    ?obs a qb:Observation .
    FILTER NOT EXISTS { ?obs qb:dataSet ?dataset1 . }
  } UNION {
    ?obs a qb:Observation ;
       qb:dataSet ?dataset1, ?dataset2 .
    FILTER (?dataset1 != ?dataset2)
  }
}
"""]),
    ConstraintCheck("IC-2", "Unique DSD", [PROLOGUE + """
ASK {
  {
    ?dataset a qb:DataSet .
    FILTER NOT EXISTS { ?dataset qb:structure ?dsd . }
  } UNION {
    ?dataset a qb:DataSet ;
       qb:structure ?dsd1, ?dsd2 .
    FILTER (?dsd1 != ?dsd2)
  }
}
"""]),
    ConstraintCheck("IC-3", "DSD includes measure", [PROLOGUE + """
ASK {
  ?dsd a qb:DataStructureDefinition .
  FILTER NOT EXISTS {
    ?dsd qb:component [ qb:componentProperty [ a qb:MeasureProperty ] ]
  }
}
"""]),
    ConstraintCheck("IC-4", "Dimensions have range", [PROLOGUE + """
ASK {
  ?dim a qb:DimensionProperty .
  FILTER NOT EXISTS { ?dim rdfs:range [] }
}
"""]),
    ConstraintCheck("IC-5", "Concept dimensions have code lists",
                    [PROLOGUE + """
ASK {
  ?dim a qb:DimensionProperty ;
       rdfs:range skos:Concept .
  FILTER NOT EXISTS { ?dim qb:codeList [] }
}
"""]),
    ConstraintCheck("IC-6", "Only attributes may be optional",
                    [PROLOGUE + """
ASK {
  ?dsd qb:component ?componentSpec .
  ?componentSpec qb:componentRequired "false"^^xsd:boolean ;
                 qb:componentProperty ?component .
  FILTER NOT EXISTS { ?component a qb:AttributeProperty }
}
"""]),
    ConstraintCheck("IC-7", "Slice Keys must be declared", [PROLOGUE + """
ASK {
  ?sliceKey a qb:SliceKey .
  FILTER NOT EXISTS {
    [ a qb:DataStructureDefinition ] qb:sliceKey ?sliceKey
  }
}
"""]),
    ConstraintCheck("IC-8", "Slice Keys consistent with DSD", [PROLOGUE + """
ASK {
  ?slicekey a qb:SliceKey ;
      qb:componentProperty ?prop .
  ?dsd qb:sliceKey ?slicekey .
  FILTER NOT EXISTS { ?dsd qb:component [ qb:componentProperty ?prop ] }
}
"""]),
    ConstraintCheck("IC-9", "Unique slice structure", [PROLOGUE + """
ASK {
  {
    ?slice a qb:Slice .
    FILTER NOT EXISTS { ?slice qb:sliceStructure ?key }
  } UNION {
    ?slice a qb:Slice ;
           qb:sliceStructure ?key1, ?key2 .
    FILTER (?key1 != ?key2)
  }
}
"""]),
    ConstraintCheck("IC-10", "Slice dimensions complete", [PROLOGUE + """
ASK {
  ?slice qb:sliceStructure [ qb:componentProperty ?dim ] .
  FILTER NOT EXISTS { ?slice ?dim [] }
}
"""]),
    ConstraintCheck("IC-11", "All dimensions required", [PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure/qb:component/qb:componentProperty ?dim .
  ?dim a qb:DimensionProperty .
  FILTER NOT EXISTS { ?obs ?dim [] }
}
"""]),
    ConstraintCheck("IC-12", "No duplicate observations", [PROLOGUE + """
ASK {
  ?obs1 qb:dataSet ?dataset .
  ?obs2 qb:dataSet ?dataset .
  FILTER (?obs1 != ?obs2)
  FILTER NOT EXISTS {
    ?dataset qb:structure/qb:component/qb:componentProperty ?dim .
    ?dim a qb:DimensionProperty .
    FILTER NOT EXISTS {
      ?obs1 ?dim ?value1 .
      ?obs2 ?dim ?value2 .
      FILTER (?value1 = ?value2)
    }
  }
}
"""], expensive=True),
    ConstraintCheck("IC-13", "Required attributes", [PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure/qb:component ?component .
  ?component qb:componentRequired "true"^^xsd:boolean ;
             qb:componentProperty ?attr .
  FILTER NOT EXISTS { ?obs ?attr [] }
}
"""]),
    ConstraintCheck("IC-14", "All measures present", [PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure ?dsd .
  FILTER NOT EXISTS {
    ?dsd qb:component/qb:componentProperty qb:measureType
  }
  ?dsd qb:component/qb:componentProperty ?measure .
  ?measure a qb:MeasureProperty .
  FILTER NOT EXISTS { ?obs ?measure [] }
}
"""]),
    ConstraintCheck("IC-15", "Measure dimension consistent", [PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure ?dsd ;
       qb:measureType ?measure .
  ?dsd qb:component/qb:componentProperty qb:measureType .
  FILTER NOT EXISTS { ?obs ?measure [] }
}
"""]),
    ConstraintCheck("IC-16", "Single measure on measure dimension cube",
                    [PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure ?dsd ;
       qb:measureType ?measure ;
       ?omeasure [] .
  ?dsd qb:component/qb:componentProperty qb:measureType ;
       qb:component/qb:componentProperty ?omeasure .
  ?omeasure a qb:MeasureProperty .
  FILTER (?omeasure != ?measure)
}
"""]),
    ConstraintCheck("IC-17", "All measures present in measures dimension cube",
                    [PROLOGUE + """
ASK {
  {
    SELECT ?numMeasures (COUNT(?obs2) AS ?count) WHERE {
      {
        SELECT ?dsd (COUNT(?m) AS ?numMeasures) WHERE {
          ?dsd qb:component/qb:componentProperty ?m .
          ?m a qb:MeasureProperty .
        } GROUP BY ?dsd
      }
      ?obs1 qb:dataSet/qb:structure ?dsd ;
            qb:measureType ?m1 .
      ?obs2 qb:dataSet/qb:structure ?dsd ;
            qb:measureType ?m2 .
      FILTER NOT EXISTS {
        ?dsd qb:component/qb:componentProperty ?dim .
        FILTER (?dim != qb:measureType)
        ?dim a qb:DimensionProperty .
        ?obs1 ?dim ?v1 .
        ?obs2 ?dim ?v2 .
        FILTER (?v1 != ?v2)
      }
    } GROUP BY ?obs1 ?numMeasures
      HAVING (COUNT(?obs2) != ?numMeasures)
  }
}
"""], expensive=True),
    ConstraintCheck("IC-18", "Consistent data set links", [PROLOGUE + """
ASK {
  ?dataset qb:slice ?slice .
  ?slice   qb:observation ?obs .
  FILTER NOT EXISTS { ?obs qb:dataSet ?dataset . }
}
"""]),
    ConstraintCheck("IC-19", "Codes from code list", [PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure/qb:component/qb:componentProperty ?dim .
  ?dim a qb:DimensionProperty ;
       qb:codeList ?list .
  ?list a skos:ConceptScheme .
  ?obs ?dim ?v .
  FILTER NOT EXISTS { ?v a skos:Concept ; skos:inScheme ?list }
}
""", PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure/qb:component/qb:componentProperty ?dim .
  ?dim a qb:DimensionProperty ;
       qb:codeList ?list .
  ?list a skos:Collection .
  ?obs ?dim ?v .
  FILTER NOT EXISTS { ?v a skos:Concept . ?list skos:member+ ?v }
}
"""]),
]

#: IC-20/IC-21 template bodies; ``%(p)s`` is the parent-child property.
_IC20_TEMPLATE = PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure/qb:component/qb:componentProperty ?dim .
  ?dim a qb:DimensionProperty ;
       qb:codeList ?list .
  ?list a qb:HierarchicalCodeList .
  ?obs ?dim ?v .
  FILTER NOT EXISTS { ?list qb:hierarchyRoot/<%(p)s>* ?v }
}
"""

_IC21_TEMPLATE = PROLOGUE + """
ASK {
  ?obs qb:dataSet/qb:structure/qb:component/qb:componentProperty ?dim .
  ?dim a qb:DimensionProperty ;
       qb:codeList ?list .
  ?list a qb:HierarchicalCodeList .
  ?obs ?dim ?v .
  FILTER NOT EXISTS { ?list qb:hierarchyRoot/(^<%(p)s>)* ?v }
}
"""


def hierarchy_constraint_checks(graph: Graph) -> List[ConstraintCheck]:
    """Expand the IC-20/IC-21 templates for ``graph``.

    One IC-20 query per IRI-valued ``qb:parentChildProperty``; one IC-21
    query per ``[owl:inverseOf <p>]`` blank-node value, per §11.1.1.
    """
    forward: List[IRI] = []
    inverse: List[IRI] = []
    for _, _, value in graph.triples((None, QB.parentChildProperty, None)):
        if isinstance(value, IRI):
            if value not in forward:
                forward.append(value)
        else:  # blank node: look for owl:inverseOf
            for inverted in graph.objects(value, OWL.inverseOf):
                if isinstance(inverted, IRI) and inverted not in inverse:
                    inverse.append(inverted)
    checks: List[ConstraintCheck] = []
    if forward:
        checks.append(ConstraintCheck(
            "IC-20", "Codes from hierarchy",
            [_IC20_TEMPLATE % {"p": iri.value} for iri in forward]))
    if inverse:
        checks.append(ConstraintCheck(
            "IC-21", "Codes from hierarchy (inverse)",
            [_IC21_TEMPLATE % {"p": iri.value} for iri in inverse]))
    return checks


def all_constraint_checks(graph: Graph) -> List[ConstraintCheck]:
    """The static constraints plus the expanded hierarchy templates."""
    return STATIC_CONSTRAINTS + hierarchy_constraint_checks(graph)


def _ask(graph: Graph, query_text: str) -> bool:
    dataset = Dataset()
    dataset.default = graph
    return bool(evaluate_query(parse_query(query_text), dataset,
                               default_as_union=False))


def check_constraint(graph: Graph, check: ConstraintCheck) -> bool:
    """True when ``graph`` violates ``check``."""
    return any(_ask(graph, query) for query in check.queries)


def check_graph(graph: Graph,
                include_expensive: Optional[bool] = None,
                expensive_limit: int = 2000) -> ConstraintReport:
    """Run the full constraint suite over a (normalized) graph.

    ``include_expensive`` defaults to running the quadratic checks only
    when the graph holds at most ``expensive_limit`` triples; the native
    :mod:`repro.qb.validator` covers those constraints in linear time on
    big data.  Skipped constraints are reported, never silently dropped.
    """
    if include_expensive is None:
        include_expensive = len(graph) <= expensive_limit
    report = ConstraintReport()
    for check in all_constraint_checks(graph):
        if check.expensive and not include_expensive:
            report.skipped.append(check.ic)
            continue
        report.results[check.ic] = check_constraint(graph, check)
    return report
