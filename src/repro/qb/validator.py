"""Well-formedness checks for QB data (W3C integrity constraints).

Implements the practically relevant subset of the normative integrity
constraints from the RDF Data Cube recommendation §11.  Each check is a
function returning :class:`Violation` records; :func:`validate_graph`
runs them all.

Implemented constraints:

========  =============================================================
IC-1      every observation has exactly one ``qb:dataSet``
IC-2      every data set has exactly one ``qb:structure`` (DSD)
IC-3      every DSD includes at least one measure
IC-4      every dimension declared in a DSD is an IRI
IC-11/12  every observation carries a value for every dimension of its
          data set's DSD, and no two observations of a data set share
          the same dimension coordinates
IC-14     every observation carries every declared measure
IC-MEAS   measure values are literals
========  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.terms import IRI, Literal, Term
from repro.qb import vocabulary as qb
from repro.qb.dataset import QBDataSet, find_datasets
from repro.qb.dsd import DataStructureDefinition, QBSchemaError, find_dsds


@dataclass
class Violation:
    """One integrity constraint violation."""

    constraint: str
    message: str
    subject: Term | None = None

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject is not None else ""
        return f"{self.constraint}: {self.message}{where}"


def check_ic1_observation_dataset(graph: Graph) -> List[Violation]:
    """IC-1: every observation has exactly one qb:dataSet."""
    violations: List[Violation] = []
    for observation in graph.subjects(RDF.type, qb.Observation):
        datasets = list(graph.objects(observation, qb.dataSet))
        if len(datasets) != 1:
            violations.append(Violation(
                "IC-1",
                f"observation has {len(datasets)} qb:dataSet links "
                "(expected exactly 1)",
                observation))
    return violations


def check_ic2_dataset_structure(graph: Graph) -> List[Violation]:
    """IC-2: every data set has exactly one qb:structure."""
    violations: List[Violation] = []
    for dataset in find_datasets(graph):
        structures = list(graph.objects(dataset, qb.structure))
        if len(structures) != 1:
            violations.append(Violation(
                "IC-2",
                f"data set has {len(structures)} qb:structure links "
                "(expected exactly 1)",
                dataset))
    return violations


def check_ic3_dsd_includes_measure(graph: Graph) -> List[Violation]:
    """IC-3: every DSD declares at least one measure."""
    violations: List[Violation] = []
    for dsd_iri in find_dsds(graph):
        try:
            dsd = DataStructureDefinition.from_graph(graph, dsd_iri)
        except QBSchemaError as error:
            violations.append(Violation("IC-3", str(error), dsd_iri))
            continue
        if not dsd.measure_properties():
            violations.append(Violation(
                "IC-3", "DSD declares no measure component", dsd_iri))
    return violations


def check_ic4_dimensions_are_iris(graph: Graph) -> List[Violation]:
    """IC-4 (adjunct): qb:dimension values must be IRIs."""
    violations: List[Violation] = []
    for component in graph.subjects(None, None):
        for value in graph.objects(component, qb.dimension):
            if not isinstance(value, IRI):
                violations.append(Violation(
                    "IC-4", f"qb:dimension value {value!r} is not an IRI",
                    component))
    return violations


def _datasets_with_dsd(graph: Graph) -> List[QBDataSet]:
    datasets: List[QBDataSet] = []
    for iri in find_datasets(graph):
        try:
            datasets.append(QBDataSet(graph, iri))
        except QBSchemaError:
            continue  # reported by IC-2
    return datasets


def check_ic11_dimensions_required(graph: Graph) -> List[Violation]:
    """IC-11: observations carry a value for every dimension."""
    violations: List[Violation] = []
    for dataset in _datasets_with_dsd(graph):
        required = dataset.dsd.dimension_properties()
        for observation in dataset.observations():
            for prop in required:
                if prop not in observation.dimensions:
                    violations.append(Violation(
                        "IC-11",
                        f"observation misses dimension {prop.value}",
                        observation.iri))
    return violations


def check_ic12_no_duplicate_observations(graph: Graph) -> List[Violation]:
    """IC-12: no two observations share all dimension values (hash-based, linear time)."""
    violations: List[Violation] = []
    for dataset in _datasets_with_dsd(graph):
        order = dataset.dsd.dimension_properties()
        seen: Dict[tuple, Term] = {}
        for observation in dataset.observations():
            key = observation.dimension_key(order)
            if None in key:
                continue  # IC-11 reports missing dimensions
            if key in seen:
                violations.append(Violation(
                    "IC-12",
                    f"duplicate dimension coordinates with {seen[key]}",
                    observation.iri))
            else:
                seen[key] = observation.iri
    return violations


def check_ic14_measures_present(graph: Graph) -> List[Violation]:
    """IC-14: observations carry every declared measure."""
    violations: List[Violation] = []
    for dataset in _datasets_with_dsd(graph):
        measures = dataset.dsd.measure_properties()
        for observation in dataset.observations():
            for prop in measures:
                if prop not in observation.measures:
                    violations.append(Violation(
                        "IC-14",
                        f"observation misses measure {prop.value}",
                        observation.iri))
    return violations


def check_measure_values_are_literals(graph: Graph) -> List[Violation]:
    """Adjunct check: measure values must be literals."""
    violations: List[Violation] = []
    for dataset in _datasets_with_dsd(graph):
        for observation in dataset.observations():
            for prop, value in observation.measures.items():
                if not isinstance(value, Literal):
                    violations.append(Violation(
                        "IC-MEAS",
                        f"measure {prop.value} value {value!r} "
                        "is not a literal",
                        observation.iri))
    return violations


ALL_CHECKS: List[Callable[[Graph], List[Violation]]] = [
    check_ic1_observation_dataset,
    check_ic2_dataset_structure,
    check_ic3_dsd_includes_measure,
    check_ic4_dimensions_are_iris,
    check_ic11_dimensions_required,
    check_ic12_no_duplicate_observations,
    check_ic14_measures_present,
    check_measure_values_are_literals,
]


def validate_graph(graph: Graph) -> List[Violation]:
    """Run every implemented integrity constraint over ``graph``."""
    violations: List[Violation] = []
    for check in ALL_CHECKS:
        violations.extend(check(graph))
    return violations


def is_well_formed(graph: Graph) -> bool:
    """True when no implemented constraint is violated."""
    return not validate_graph(graph)
