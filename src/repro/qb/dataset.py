"""Access to QB data sets and their observations.

A :class:`QBDataSet` bundles the data set IRI, its DSD, and the graph
holding the observations.  Observation access is index-backed and used
by the enrichment module ("collect the level instances and their
properties") and by the ETL baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.terms import IRI, Literal, Term
from repro.qb import vocabulary as qb
from repro.qb.dsd import DataStructureDefinition, QBSchemaError, dsd_for_dataset


@dataclass
class Observation:
    """One fact: dimension bindings plus measure values."""

    iri: Term
    dimensions: Dict[IRI, Term]
    measures: Dict[IRI, Term]
    attributes: Dict[IRI, Term]

    def dimension_key(self, order: List[IRI]) -> tuple:
        """The observation's coordinates in a fixed dimension order."""
        return tuple(self.dimensions.get(prop) for prop in order)


class QBDataSet:
    """A QB data set bound to the graph that stores it."""

    def __init__(self, graph: Graph, iri: IRI,
                 dsd: Optional[DataStructureDefinition] = None) -> None:
        self.graph = graph
        self.iri = iri
        if dsd is None:
            dsd_iri = dsd_for_dataset(graph, iri)
            if dsd_iri is None:
                raise QBSchemaError(
                    f"data set {iri} has no qb:structure in the graph")
            dsd = DataStructureDefinition.from_graph(graph, dsd_iri)
        self.dsd = dsd

    # -- observations -----------------------------------------------------------

    def observation_iris(self) -> Iterator[Term]:
        """Subjects attached to this data set via ``qb:dataSet``."""
        return self.graph.subjects(qb.dataSet, self.iri)

    def observations(self) -> Iterator[Observation]:
        dimension_set = set(self.dsd.dimension_properties())
        measure_set = set(self.dsd.measure_properties())
        attribute_set = set(self.dsd.attribute_properties())
        for subject in self.observation_iris():
            dimensions: Dict[IRI, Term] = {}
            measures: Dict[IRI, Term] = {}
            attributes: Dict[IRI, Term] = {}
            for predicate, objects in self.graph.subject_predicates(
                    subject).items():
                if not isinstance(predicate, IRI):
                    continue
                value = next(iter(objects))
                if predicate in dimension_set:
                    dimensions[predicate] = value
                elif predicate in measure_set:
                    measures[predicate] = value
                elif predicate in attribute_set:
                    attributes[predicate] = value
            yield Observation(subject, dimensions, measures, attributes)

    def observation_count(self) -> int:
        return self.graph.count((None, qb.dataSet, self.iri))

    def dimension_members(self, prop: IRI) -> Set[Term]:
        """Distinct values of one dimension across all observations."""
        members: Set[Term] = set()
        for subject in self.observation_iris():
            value = self.graph.value(subject, prop, None)
            if value is not None:
                members.add(value)
        return members

    def member_counts(self) -> Dict[IRI, int]:
        """Distinct member count per dimension (cube density profile)."""
        return {
            prop: len(self.dimension_members(prop))
            for prop in self.dsd.dimension_properties()
        }

    def __repr__(self) -> str:
        return f"<QBDataSet {self.iri.value} ({self.observation_count()} obs)>"


def find_datasets(graph: Graph) -> List[IRI]:
    """All ``qb:DataSet`` IRIs asserted in ``graph``."""
    return sorted(
        (s for s in graph.subjects(RDF.type, qb.DataSet)
         if isinstance(s, IRI)),
        key=lambda iri: iri.value)
