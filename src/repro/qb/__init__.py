"""The W3C RDF Data Cube (QB) layer.

Models plain-QB statistical data sets — the *input* of QB2OLAP: data
structure definitions, data sets with observations, the normalization
algorithm (spec §10, :mod:`repro.qb.normalize`), and two validators:

* :mod:`repro.qb.validator` — native linear-time checks for the
  constraints that matter at 80k-observation scale;
* :mod:`repro.qb.constraints` — the spec's 21 integrity constraints as
  literal SPARQL ``ASK`` queries run on the in-repo engine (IC-20/21
  template expansion included).
"""

from repro.qb.constraints import (
    ConstraintCheck,
    ConstraintReport,
    check_constraint,
    check_graph,
)
from repro.qb.dataset import Observation, QBDataSet, find_datasets
from repro.qb.dsd import (
    ComponentSpecification,
    DataStructureDefinition,
    QBSchemaError,
    dsd_for_dataset,
    find_dsds,
)
from repro.qb.normalize import is_normalized, normalize_graph
from repro.qb.validator import (
    ALL_CHECKS,
    Violation,
    is_well_formed,
    validate_graph,
)

__all__ = [
    "ALL_CHECKS",
    "ComponentSpecification",
    "ConstraintCheck",
    "ConstraintReport",
    "DataStructureDefinition",
    "Observation",
    "QBDataSet",
    "QBSchemaError",
    "Violation",
    "check_constraint",
    "check_graph",
    "dsd_for_dataset",
    "find_datasets",
    "find_dsds",
    "is_normalized",
    "is_well_formed",
    "normalize_graph",
    "validate_graph",
]
