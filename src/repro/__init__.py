"""QB2OLAP reproduction: OLAP on statistical Linked Open Data.

A from-scratch Python implementation of the QB2OLAP system (Varga et
al., ICDE 2016): RDF + SPARQL substrate, the QB and QB4OLAP vocabulary
layers, the three QB2OLAP modules (Enrichment, Exploration, Querying
with the QL language), a native OLAP baseline engine, and a synthetic
Eurostat-style data generator.
"""

__version__ = "1.0.0"
