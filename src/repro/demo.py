"""The paper's demo scenario, packaged end to end.

Everything §IV demonstrates, as one-call helpers: load the asylum cube,
play Mary's enrichment choices (continent for citizenship, month →
quarter → year for time, attributes everywhere), generate the QB4OLAP
triples, and expose a ready :class:`~repro.ql.executor.QLEngine`.

>>> from repro.demo import prepare_enriched_demo, MARY_QL
>>> demo = prepare_enriched_demo(observations=2000)
>>> result = demo.engine.execute(MARY_QL)
>>> result.report.rows >= 0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.rdf.namespace import SDMX_DIMENSION
from repro.rdf.terms import IRI
from repro.sparql.endpoint import LocalEndpoint
from repro.qb4olap.model import CubeSchema
from repro.data import build_demo_endpoint, small_demo
from repro.data.loader import DemoData
from repro.data.namespaces import PROPERTY, SCHEMA
from repro.enrichment import EnrichmentConfig, EnrichmentSession
from repro.enrichment.generation import GenerationReport
from repro.ql import QLEngine

#: The paper's names for the six dimensions (Fig. 4, §IV).
PAPER_DIMENSION_NAMES: Dict[IRI, str] = {
    PROPERTY.citizen: "citizenshipDim",
    PROPERTY.geo: "destinationDim",
    SDMX_DIMENSION.refPeriod: "timeDim",
    PROPERTY.sex: "sexDim",
    PROPERTY.age: "ageDim",
    PROPERTY.asyl_app: "asylappDim",
}

#: Mary's preference when choosing among discovered candidates: the
#: geographic chain for citizenship, the calendar chain for time.
MARY_PREFERENCES: Sequence[str] = ("continent", "quarter", "year")

#: Mary's demo query (§IV): applications per year by citizens of
#: African countries whose destination is France.
MARY_QL = """
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
PREFIX property: <http://eurostat.linked-statistics.org/property#>;
PREFIX ref-prop: <http://reference.example.org/property#>;
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := ROLLUP ($C3, schema:citizenshipDim, schema:continent);
$C5 := ROLLUP ($C4, schema:timeDim, schema:year);
$C6 := DICE ($C5, (schema:citizenshipDim|schema:continent|ref-prop:continentName = "Africa"));
$C7 := DICE ($C6, schema:destinationDim|property:geo|ref-prop:countryName = "France");
"""

#: The political-organization extension scenario from §I: analyze
#: migration by the government kind of the *host* countries.
POLITICAL_QL = """
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := SLICE ($C3, schema:citizenshipDim);
$C5 := ROLLUP ($C4, schema:destinationDim, schema:politicalOrganization);
$C6 := ROLLUP ($C5, schema:timeDim, schema:year);
"""


@dataclass
class EnrichedDemo:
    """A fully enriched demo endpoint, ready for exploration/querying."""

    data: DemoData
    session: EnrichmentSession
    schema: CubeSchema
    generation: GenerationReport
    engine: QLEngine

    @property
    def endpoint(self) -> LocalEndpoint:
        return self.data.endpoint


def enrich(demo: DemoData,
           config: Optional[EnrichmentConfig] = None,
           max_depth: int = 3,
           political_extension: bool = True,
           prefer: Optional[Sequence[str]] = None) -> EnrichedDemo:
    """Run Mary's enrichment choices over a loaded demo endpoint.

    ``political_extension`` additionally rolls the destination
    dimension up to the government kind (the §I extension scenario).
    """
    session = EnrichmentSession(
        demo.endpoint, demo.dataset, demo.dsd,
        config=config, dimension_names=PAPER_DIMENSION_NAMES)
    session.redefine()
    preferences = list(prefer if prefer is not None else MARY_PREFERENCES)
    if political_extension:
        preferences.append("politicalOrganization")
    schema = session.auto_enrich(max_depth=max_depth, add_attributes=True,
                                 prefer=preferences)
    generation = session.generate()
    engine = QLEngine(demo.endpoint, schema)
    return EnrichedDemo(data=demo, session=session, schema=schema,
                        generation=generation, engine=engine)


def prepare_enriched_demo(observations: int = 80_000, seed: int = 42,
                          noise_rate: float = 0.0,
                          small: bool = False,
                          config: Optional[EnrichmentConfig] = None
                          ) -> EnrichedDemo:
    """Load + enrich in one call.

    ``small=True`` loads the stratified test-sized subset instead of the
    paper-sized cube.
    """
    if small:
        demo = small_demo(observations=observations, noise_rate=noise_rate)
    else:
        demo = build_demo_endpoint(observations=observations, seed=seed,
                                   noise_rate=noise_rate)
    return enrich(demo, config=config)


#: Levels minted by the demo enrichment (handy in tests/benches).
CONTINENT_LEVEL = SCHEMA.continent
QUARTER_LEVEL = SCHEMA.quarter
YEAR_LEVEL = SCHEMA.year
POLITICAL_LEVEL = SCHEMA.politicalOrganization
CITIZENSHIP_DIM = SCHEMA.citizenshipDim
DESTINATION_DIM = SCHEMA.destinationDim
TIME_DIM = SCHEMA.timeDim
SEX_DIM = SCHEMA.sexDim
AGE_DIM = SCHEMA.ageDim
ASYLAPP_DIM = SCHEMA.asylappDim
DECISION_DIM = SCHEMA.decisionDim


# ---------------------------------------------------------------------------
# The two-cube (drill-across) scenario
# ---------------------------------------------------------------------------

#: Dimension names for the decisions cube: the five conformed
#: dimensions keep the applications cube's names; the decision outcome
#: dimension is new.
DECISIONS_DIMENSION_NAMES: Dict[IRI, str] = {
    PROPERTY.citizen: "citizenshipDim",
    PROPERTY.geo: "destinationDim",
    SDMX_DIMENSION.refPeriod: "timeDim",
    PROPERTY.sex: "sexDim",
    PROPERTY.age: "ageDim",
    PROPERTY.decision: "decisionDim",
}

#: Applications per continent and year (drill-across left input).
APPLICATIONS_BY_CONTINENT_YEAR_QL = """
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := SLICE ($C3, schema:destinationDim);
$C5 := ROLLUP ($C4, schema:citizenshipDim, schema:continent);
$C6 := ROLLUP ($C5, schema:timeDim, schema:year);
"""

#: Decisions per continent and year (drill-across right input).
DECISIONS_BY_CONTINENT_YEAR_QL = """
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := SLICE (data:migr_asydcfstq, schema:decisionDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := SLICE ($C3, schema:destinationDim);
$C5 := ROLLUP ($C4, schema:citizenshipDim, schema:continent);
$C6 := ROLLUP ($C5, schema:timeDim, schema:year);
"""


@dataclass
class TwoCubeDemo:
    """Both demo cubes enriched in one endpoint, ready to drill across."""

    applications: EnrichedDemo
    decisions: EnrichedDemo

    @property
    def endpoint(self) -> LocalEndpoint:
        return self.applications.endpoint


def prepare_two_cube_demo(observations: int = 10_000,
                          decision_observations: int = 5_000,
                          small: bool = True,
                          config: Optional[EnrichmentConfig] = None
                          ) -> TwoCubeDemo:
    """Load + enrich applications *and* decisions in one endpoint.

    Both enrichment sessions share the schema namespace and graphs, so
    the two QB4OLAP cubes end up with *conformed* dimensions (identical
    dimension/level IRIs) — the precondition for
    :func:`repro.ql.drillacross.drill_across`.
    """
    from repro.data.loader import add_decisions_cube

    if small:
        data = small_demo(observations=observations)
    else:
        data = build_demo_endpoint(observations=observations)
    applications = enrich(data, config=config)

    decisions_data = add_decisions_cube(
        data, observations=decision_observations, small=small)
    decisions_session = EnrichmentSession(
        data.endpoint, decisions_data.dataset, decisions_data.dsd,
        config=config, dimension_names=DECISIONS_DIMENSION_NAMES)
    decisions_session.redefine()
    decisions_schema = decisions_session.auto_enrich(
        max_depth=3, add_attributes=True, prefer=MARY_PREFERENCES)
    decisions_generation = decisions_session.generate()
    decisions_engine = QLEngine(data.endpoint, decisions_schema)
    decisions = EnrichedDemo(
        data=DemoData(endpoint=data.endpoint,
                      dataset=decisions_data.dataset,
                      dsd=decisions_data.dsd,
                      observations=decisions_data.observations),
        session=decisions_session,
        schema=decisions_schema,
        generation=decisions_generation,
        engine=decisions_engine)
    return TwoCubeDemo(applications=applications, decisions=decisions)
