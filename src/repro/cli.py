"""Command-line front end: the QB2OLAP tool without the GUI.

Drives the same workflow as the paper's demo, against a self-contained
session directory: the endpoint state is rebuilt from seeded generators
(deterministic), enriched, and queried.

Subcommands::

    python -m repro demo                    # full §IV storyline
    python -m repro enrich [--noise R]      # enrichment + tree view
    python -m repro explore                 # catalog + clusters + stats
    python -m repro query  [--ql FILE] [--variant direct|optimized|auto]
    python -m repro sparql --query FILE     # raw SPARQL on the endpoint
    python -m repro validate                # QB + QB4OLAP validators

All subcommands accept ``--observations`` (default 5000) and ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.data.namespaces import SCHEMA
from repro.demo import MARY_QL, prepare_enriched_demo
from repro.enrichment import EnrichmentConfig


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--observations", type=int, default=5_000,
                        help="synthetic cube size (paper subset: 80000)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--noise", type=float, default=0.0,
                        help="reference-graph noise rate (quasi-FDs)")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="quasi-FD error threshold for discovery")
    parser.add_argument("--full-size", action="store_true",
                        help="use the full country tables instead of the "
                             "stratified small subset")


def _prepare(args: argparse.Namespace):
    config = EnrichmentConfig(quasi_fd_threshold=args.threshold)
    return prepare_enriched_demo(
        observations=args.observations,
        seed=args.seed,
        noise_rate=args.noise,
        small=not args.full_size,
        config=config,
    )


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the full §IV storyline: enrichment tree + Mary's query."""
    demo = _prepare(args)
    print(demo.session.describe())
    print()
    result = demo.engine.execute(MARY_QL)
    print(f"Mary's query — variant {result.report.variant}, "
          f"{result.report.sparql_lines} SPARQL lines, "
          f"{result.report.execute_seconds:.2f}s:")
    print(result.cube.to_text())
    return 0


def cmd_enrich(args: argparse.Namespace) -> int:
    """Enrich the QB cube; print the schema tree and the action log."""
    demo = _prepare(args)
    print(demo.session.describe())
    print()
    report = demo.generation
    print(f"generated: {report.schema_triples} schema triples, "
          f"{report.instance_triples} instance triples")
    for entry in demo.session.log:
        print(f"  [{entry.action}] {entry.detail}")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Print the catalog, schema tree, clusters and statistics."""
    from repro.exploration import (
        CubeExplorer,
        CubeStatistics,
        InstanceBrowser,
        list_cubes,
    )

    demo = _prepare(args)
    for info in list_cubes(demo.endpoint):
        print(f"cube: {info}")
    explorer = CubeExplorer(demo.endpoint, demo.data.dataset)
    browser = InstanceBrowser(demo.endpoint, explorer.schema)
    print()
    print(explorer.describe())
    print()
    print(browser.render_clusters(SCHEMA.citizenshipDim, SCHEMA.continent,
                                  max_members=5))
    print()
    print(CubeStatistics(demo.endpoint, explorer.schema).summary_text())
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Execute a QL program (Mary's by default) and print the cube."""
    demo = _prepare(args)
    if args.ql:
        with open(args.ql) as handle:
            text = handle.read()
    else:
        text = MARY_QL
    result = demo.engine.execute(text, variant=args.variant)
    if args.show_sparql:
        print("-- direct translation " + "-" * 40)
        print(result.translation.direct)
        print("-- optimized translation " + "-" * 37)
        print(result.translation.optimized)
        print("-" * 62)
    print(result.cube.to_text())
    print(f"[{result.report.variant}: {result.report.rows} rows in "
          f"{result.report.execute_seconds:.2f}s]")
    return 0


def cmd_sparql(args: argparse.Namespace) -> int:
    """Run raw SPARQL; supports W3C output formats and EXPLAIN."""
    from repro.rdf.graph import Graph
    from repro.sparql.serializers import (
        boolean_to_json,
        boolean_to_xml,
        results_to_csv,
        results_to_json,
        results_to_tsv,
        results_to_xml,
    )

    demo = _prepare(args)
    with open(args.query) as handle:
        text = handle.read()
    if args.explain:
        print(demo.endpoint.explain(text))
        return 0
    result = demo.endpoint.query(text)
    if isinstance(result, bool):
        if args.format == "json":
            print(boolean_to_json(result, indent=2))
        elif args.format == "xml":
            print(boolean_to_xml(result))
        else:
            print("yes" if result else "no")
        return 0
    if isinstance(result, Graph):
        print(result.serialize("turtle"))
        return 0
    if args.format == "json":
        print(results_to_json(result, indent=2))
    elif args.format == "xml":
        print(results_to_xml(result))
    elif args.format == "csv":
        print(results_to_csv(result), end="")
    elif args.format == "tsv":
        print(results_to_tsv(result), end="")
    else:
        print(result.to_text(max_rows=args.limit))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Run the QB/QB4OLAP validators (optionally the W3C IC suite)."""
    from repro.data.namespaces import QB_GRAPH
    from repro.qb import check_graph, validate_graph
    from repro.qb.normalize import normalize_graph
    from repro.qb4olap import validate_instances, validate_schema

    demo = _prepare(args)
    qb_violations = validate_graph(demo.endpoint.graph(QB_GRAPH))
    print(f"QB integrity constraints: {len(qb_violations)} violations")
    for violation in qb_violations[:10]:
        print(f"  {violation}")
    if args.ic_suite:
        probe = demo.endpoint.graph(QB_GRAPH).copy()
        added = normalize_graph(probe)
        print(f"W3C IC suite (after normalization, +{added} triples):")
        report = check_graph(probe)
        for line in str(report).splitlines():
            print(f"  {line}")
        if not report.well_formed:
            return 1
    schema_violations = validate_schema(demo.schema)
    print(f"QB4OLAP schema checks:    {len(schema_violations)} violations")
    union = demo.endpoint.dataset.union()
    report = validate_instances(union, demo.schema,
                                functional_tolerance=args.tolerance)
    print(f"QB4OLAP instance checks:  {len(report.violations)} violations")
    for violation in report.violations[:10]:
        print(f"  {violation}")
    return 1 if (qb_violations or schema_violations
                 or report.violations) else 0


def cmd_drillacross(args: argparse.Namespace) -> int:
    """Run the two-cube drill-across demo and print the joined cube."""
    from repro.demo import (
        APPLICATIONS_BY_CONTINENT_YEAR_QL,
        DECISIONS_BY_CONTINENT_YEAR_QL,
        prepare_two_cube_demo,
    )
    from repro.exploration.catalog import list_cubes
    from repro.ql.drillacross import execute_drill_across

    demo = prepare_two_cube_demo(
        observations=args.observations,
        decision_observations=max(args.observations // 2, 100),
        small=not args.full_size)
    for info in list_cubes(demo.endpoint):
        print(f"cube: {info}")
    print()
    result = execute_drill_across(
        demo.applications.engine, demo.decisions.engine,
        APPLICATIONS_BY_CONTINENT_YEAR_QL,
        DECISIONS_BY_CONTINENT_YEAR_QL,
        suffixes=("_apps", "_dec"))
    print(result.cube.to_text(max_rows=args.limit))
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    """Emit Graphviz DOT for the schema or instance-graph views."""
    from repro.exploration import InstanceBrowser, instance_graph_dot, schema_dot

    demo = _prepare(args)
    if args.view == "schema":
        print(schema_dot(demo.schema))
        return 0
    browser = InstanceBrowser(demo.endpoint, demo.schema)
    dimension = SCHEMA[args.dimension] if args.dimension \
        else SCHEMA.citizenshipDim
    print(instance_graph_dot(browser, dimension,
                             max_members_per_level=args.max_members))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo_parser = subparsers.add_parser(
        "demo", help="run the full §IV storyline")
    _add_common(demo_parser)
    demo_parser.set_defaults(handler=cmd_demo)

    enrich_parser = subparsers.add_parser(
        "enrich", help="enrich the QB cube and show the schema tree")
    _add_common(enrich_parser)
    enrich_parser.set_defaults(handler=cmd_enrich)

    explore_parser = subparsers.add_parser(
        "explore", help="catalog, schema tree, clusters, statistics")
    _add_common(explore_parser)
    explore_parser.set_defaults(handler=cmd_explore)

    query_parser = subparsers.add_parser(
        "query", help="run a QL program (default: Mary's query)")
    _add_common(query_parser)
    query_parser.add_argument("--ql", help="file with a QL program")
    query_parser.add_argument("--variant", default="auto",
                              choices=["direct", "optimized", "auto"])
    query_parser.add_argument("--show-sparql", action="store_true")
    query_parser.set_defaults(handler=cmd_query)

    sparql_parser = subparsers.add_parser(
        "sparql", help="run raw SPARQL against the demo endpoint")
    _add_common(sparql_parser)
    sparql_parser.add_argument("--query", required=True,
                               help="file with a SELECT/ASK/CONSTRUCT/"
                                    "DESCRIBE query")
    sparql_parser.add_argument("--limit", type=int, default=25)
    sparql_parser.add_argument(
        "--format", default="text",
        choices=["text", "json", "xml", "csv", "tsv"],
        help="result serialization (W3C formats)")
    sparql_parser.add_argument("--explain", action="store_true",
                               help="print the query plan instead of "
                                    "running the query")
    sparql_parser.set_defaults(handler=cmd_sparql)

    validate_parser = subparsers.add_parser(
        "validate", help="run QB + QB4OLAP validators over the endpoint")
    _add_common(validate_parser)
    validate_parser.add_argument(
        "--tolerance", type=float, default=0.0,
        help="functional tolerance for instance validation "
             "(independent of the discovery threshold)")
    validate_parser.add_argument(
        "--ic-suite", action="store_true",
        help="additionally run the 21 W3C integrity constraints as "
             "SPARQL ASK queries (normalizes a copy of the graph first)")
    validate_parser.set_defaults(handler=cmd_validate)

    drill_parser = subparsers.add_parser(
        "drillacross",
        help="two-cube demo: applications ⋈ decisions per continent/year")
    _add_common(drill_parser)
    drill_parser.add_argument("--limit", type=int, default=25)
    drill_parser.set_defaults(handler=cmd_drillacross)

    render_parser = subparsers.add_parser(
        "render", help="emit Graphviz DOT for the Fig. 4/5 views")
    _add_common(render_parser)
    render_parser.add_argument("--view", default="instances",
                               choices=["instances", "schema"])
    render_parser.add_argument("--dimension",
                               help="dimension local name "
                                    "(default citizenshipDim)")
    render_parser.add_argument("--max-members", type=int, default=12)
    render_parser.set_defaults(handler=cmd_render)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
