"""Synthetic generator for the ``migr_asyappctzm`` QB data set.

Reproduces the *structure* of the Eurostat asylum-applications cube the
paper demos on: six dimensions (reference period, citizenship,
destination geo, sex, age group, application type), one measure
(``sdmx-measure:obsValue``), published as plain QB — i.e. **without**
hierarchies, aggregate functions or level attributes.  The paper's
subset holds ~80 000 observations over 2013–2014; the generator is
seeded and deterministic so experiments are repeatable.

Observation counts follow a heavy-tailed country weighting (Syria,
Afghanistan, Eritrea, ... dominated the real 2013–2014 filings) so
group-bys produce realistically skewed aggregates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, RDFS, SDMX_DIMENSION, SDMX_MEASURE
from repro.rdf.terms import IRI, Literal
from repro.qb import vocabulary as qb
from repro.data import geography as geo
from repro.data.namespaces import (
    DATA,
    DIC_AGE,
    DIC_ASYL,
    DIC_CITIZEN,
    DIC_GEO,
    DIC_SEX,
    DIC_TIME,
    DSD,
    PROPERTY,
)

DATASET_IRI = DATA.migr_asyappctzm
DSD_IRI = DSD.migr_asyappctzm

#: the six dimension component properties, in DSD order
DIMENSION_PROPERTIES: Tuple[IRI, ...] = (
    SDMX_DIMENSION.refPeriod,
    PROPERTY.citizen,
    PROPERTY.geo,
    PROPERTY.sex,
    PROPERTY.age,
    PROPERTY.asyl_app,
)

MEASURE_PROPERTY = SDMX_MEASURE.obsValue


@dataclass
class GeneratorConfig:
    """Tuning knobs for the synthetic data set."""

    observations: int = 80_000
    seed: int = 42
    months: Sequence[str] = field(default_factory=lambda: list(geo.MONTHS))
    citizenship: Sequence[geo.Country] = field(
        default_factory=lambda: list(geo.CITIZENSHIP_COUNTRIES))
    destinations: Sequence[geo.Country] = field(
        default_factory=lambda: list(geo.DESTINATION_COUNTRIES))
    max_count: int = 500


def member_iris(config: Optional[GeneratorConfig] = None
                ) -> Dict[IRI, List[IRI]]:
    """Dictionary-member IRIs per dimension property."""
    config = config or GeneratorConfig()
    return {
        SDMX_DIMENSION.refPeriod: [
            DIC_TIME[m] for m in config.months],
        PROPERTY.citizen: [
            DIC_CITIZEN[c.code] for c in config.citizenship],
        PROPERTY.geo: [
            DIC_GEO[c.code] for c in config.destinations],
        PROPERTY.sex: [DIC_SEX[code] for code, _ in geo.SEX_CODES],
        PROPERTY.age: [DIC_AGE[code] for code, _ in geo.AGE_CODES],
        PROPERTY.asyl_app: [
            DIC_ASYL[code] for code, _ in geo.APPLICATION_CODES],
    }


def build_dsd(graph: Graph) -> None:
    """Emit the plain-QB data structure definition (paper §II snippet).

    Component nodes get *fixed* blank-node labels so two runs of the
    generator emit byte-identical graphs (benchmark reproducibility).
    """
    from repro.rdf.terms import BNode

    graph.add(DSD_IRI, RDF.type, qb.DataStructureDefinition)
    for position, prop in enumerate(DIMENSION_PROPERTIES, start=1):
        node = BNode(f"comp_{prop.local_name()}")
        graph.add(DSD_IRI, qb.component, node)
        graph.add(node, qb.dimension, prop)
        graph.add(node, qb.order, Literal(position))
    measure_node = BNode("comp_obsValue")
    graph.add(DSD_IRI, qb.component, measure_node)
    graph.add(measure_node, qb.measure, MEASURE_PROPERTY)
    graph.add(DATASET_IRI, RDF.type, qb.DataSet)
    graph.add(DATASET_IRI, qb.structure, DSD_IRI)
    graph.add(DATASET_IRI, RDFS.label,
              Literal("Asylum and first time asylum applicants by "
                      "citizenship, age and sex (monthly data)",
                      language="en"))


def _country_weights(countries: Sequence[geo.Country]) -> List[float]:
    """Heavy-tailed origin weighting: conflict countries dominate."""
    hot = {"SY": 30.0, "AF_C": 12.0, "ER": 8.0, "RS": 8.0, "IQ": 6.0,
           "XK": 6.0, "PK": 5.0, "SO": 5.0, "NG": 4.0, "RU": 4.0,
           "AL": 4.0, "ML": 3.0, "GM": 3.0, "BD": 3.0, "UA": 3.0}
    return [hot.get(country.code, 1.0) for country in countries]


def _destination_weights(countries: Sequence[geo.Country]) -> List[float]:
    hot = {"DE": 25.0, "FR": 12.0, "SE": 12.0, "IT": 9.0, "UK": 6.0,
           "HU": 6.0, "AT": 4.0, "NL": 4.0, "BE": 4.0, "CH": 4.0}
    return [hot.get(country.code, 1.0) for country in countries]


def generate_observations(graph: Graph,
                          config: Optional[GeneratorConfig] = None) -> int:
    """Append seeded observations to ``graph``; returns how many.

    Coordinates are sampled without replacement from the cross product
    of dimension members, so no two observations collide (QB IC-12).
    """
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)
    members = member_iris(config)

    axes = [members[prop] for prop in DIMENSION_PROPERTIES]
    space = 1
    for axis in axes:
        space *= len(axis)
    wanted = min(config.observations, space)

    # Weighted axis index choices for citizenship/destination; uniform
    # elsewhere.  Rejection-sample unique coordinate tuples.  Cumulative
    # weights are precomputed once; random.choices would otherwise
    # rebuild them on every draw.
    import itertools as _it
    citizenship_cum = list(_it.accumulate(
        _country_weights(config.citizenship)))
    destination_cum = list(_it.accumulate(
        _destination_weights(config.destinations)))
    citizenship_range = range(len(axes[1]))
    destination_range = range(len(axes[2]))
    month_count = len(axes[0])

    seen: set = set()
    produced = 0
    attempts = 0
    max_attempts = wanted * 50
    while produced < wanted and attempts < max_attempts:
        attempts += 1
        coordinate = (
            rng.randrange(month_count),
            rng.choices(citizenship_range, cum_weights=citizenship_cum,
                        k=1)[0],
            rng.choices(destination_range, cum_weights=destination_cum,
                        k=1)[0],
            rng.randrange(len(axes[3])),
            rng.randrange(len(axes[4])),
            rng.randrange(len(axes[5])),
        )
        if coordinate in seen:
            continue
        seen.add(coordinate)
        observation = DATA[f"migr_asyappctzm/OBS_{produced:06d}"]
        graph.add(observation, RDF.type, qb.Observation)
        graph.add(observation, qb.dataSet, DATASET_IRI)
        for axis, prop, index in zip(axes, DIMENSION_PROPERTIES, coordinate):
            graph.add(observation, prop, axis[index])
        value = int(rng.paretovariate(1.2))
        graph.add(observation, MEASURE_PROPERTY,
                  Literal(min(value, config.max_count)))
        produced += 1
    return produced


def build_qb_graph(config: Optional[GeneratorConfig] = None) -> Graph:
    """The full plain-QB graph: DSD + data set + observations."""
    from repro.data.namespaces import DEMO_PREFIXES

    graph = Graph()
    for prefix, namespace in DEMO_PREFIXES.items():
        graph.bind(prefix, namespace)
    build_dsd(graph)
    generate_observations(graph, config)
    return graph
