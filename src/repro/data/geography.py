"""Static geographic reference tables for the synthetic Eurostat cube.

The tables model what the real linked-data sources provide around the
``migr_asyappctzm`` data set: citizenship countries with their
continents, destination (EU/EFTA) countries with political metadata,
and the time dimension's month → quarter → year containments.

Values are real-world (2014-era) facts where it matters for realism
(continent membership, EU membership, government form), but none of the
benchmarks depend on their exactness — only on their *functional
structure* (country → continent is many-to-one, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Country:
    """One country row of the reference table."""

    code: str          # ISO-3166-ish alpha-2 code (Eurostat dictionary key)
    name: str
    continent: str     # continent key into CONTINENTS
    population: int    # approximate, thousands
    government: str    # government-form key into GOVERNMENT_KINDS
    eu_member: bool = False


#: continent key → human-readable name
CONTINENTS: Dict[str, str] = {
    "AF": "Africa",
    "AS": "Asia",
    "EU": "Europe",
    "NA": "North America",
    "SA": "South America",
    "OC": "Oceania",
}

#: government-form key → human-readable name
GOVERNMENT_KINDS: Dict[str, str] = {
    "REP": "Republic",
    "CMO": "Constitutional monarchy",
    "AMO": "Absolute monarchy",
    "FED": "Federal republic",
    "OTH": "Other",
}

#: Citizenship countries: origins of asylum applicants (plus a few
#: European ones so the dimension is not continent-degenerate).
CITIZENSHIP_COUNTRIES: List[Country] = [
    # Africa
    Country("NG", "Nigeria", "AF", 177000, "FED"),
    Country("ER", "Eritrea", "AF", 6500, "REP"),
    Country("SO", "Somalia", "AF", 10800, "FED"),
    Country("GM", "Gambia", "AF", 1900, "REP"),
    Country("ML", "Mali", "AF", 17000, "REP"),
    Country("SN", "Senegal", "AF", 14500, "REP"),
    Country("CD", "DR Congo", "AF", 74000, "REP"),
    Country("GN", "Guinea", "AF", 12000, "REP"),
    Country("CI", "Ivory Coast", "AF", 22000, "REP"),
    Country("DZ", "Algeria", "AF", 39000, "REP"),
    Country("MA", "Morocco", "AF", 34000, "CMO"),
    Country("TN", "Tunisia", "AF", 11000, "REP"),
    Country("EG", "Egypt", "AF", 87000, "REP"),
    Country("SD", "Sudan", "AF", 38000, "FED"),
    Country("ET", "Ethiopia", "AF", 97000, "FED"),
    Country("GH", "Ghana", "AF", 27000, "REP"),
    Country("CM", "Cameroon", "AF", 23000, "REP"),
    Country("LY", "Libya", "AF", 6300, "OTH"),
    # Asia / Middle East
    Country("SY", "Syria", "AS", 22000, "REP"),
    Country("AF_C", "Afghanistan", "AS", 31000, "REP"),
    Country("IQ", "Iraq", "AS", 35000, "FED"),
    Country("IR", "Iran", "AS", 78000, "REP"),
    Country("PK", "Pakistan", "AS", 185000, "FED"),
    Country("BD", "Bangladesh", "AS", 159000, "REP"),
    Country("LK", "Sri Lanka", "AS", 21000, "REP"),
    Country("IN", "India", "AS", 1267000, "FED"),
    Country("CN", "China", "AS", 1364000, "REP"),
    Country("VN", "Vietnam", "AS", 91000, "REP"),
    Country("GE", "Georgia", "AS", 3700, "REP"),
    Country("AM", "Armenia", "AS", 3000, "REP"),
    Country("LB", "Lebanon", "AS", 5900, "REP"),
    Country("JO", "Jordan", "AS", 7600, "CMO"),
    Country("SA_C", "Saudi Arabia", "AS", 30800, "AMO"),
    Country("TR", "Turkey", "AS", 77000, "REP"),
    # Europe (non-EU origins)
    Country("RS", "Serbia", "EU", 7100, "REP"),
    Country("AL", "Albania", "EU", 2900, "REP"),
    Country("XK", "Kosovo", "EU", 1800, "REP"),
    Country("MK", "North Macedonia", "EU", 2100, "REP"),
    Country("BA", "Bosnia and Herzegovina", "EU", 3800, "REP"),
    Country("UA", "Ukraine", "EU", 45000, "REP"),
    Country("RU", "Russia", "EU", 143000, "FED"),
    Country("MD", "Moldova", "EU", 3600, "REP"),
    Country("ME", "Montenegro", "EU", 620, "REP"),
    # Americas
    Country("HT", "Haiti", "NA", 10600, "REP"),
    Country("CU", "Cuba", "NA", 11300, "REP"),
    Country("MX", "Mexico", "NA", 124000, "FED"),
    Country("CO", "Colombia", "SA", 48000, "REP"),
    Country("VE", "Venezuela", "SA", 30000, "FED"),
    Country("PE", "Peru", "SA", 31000, "REP"),
    Country("BR", "Brazil", "SA", 202000, "FED"),
    # Oceania
    Country("FJ", "Fiji", "OC", 890, "REP"),
    Country("PG", "Papua New Guinea", "OC", 7500, "CMO"),
]

#: Destination countries: the EU/EFTA states receiving applications.
DESTINATION_COUNTRIES: List[Country] = [
    Country("DE", "Germany", "EU", 80900, "FED", eu_member=True),
    Country("FR", "France", "EU", 66000, "REP", eu_member=True),
    Country("SE", "Sweden", "EU", 9700, "CMO", eu_member=True),
    Country("IT", "Italy", "EU", 60800, "REP", eu_member=True),
    Country("UK", "United Kingdom", "EU", 64600, "CMO", eu_member=True),
    Country("HU", "Hungary", "EU", 9900, "REP", eu_member=True),
    Country("AT", "Austria", "EU", 8500, "FED", eu_member=True),
    Country("NL", "Netherlands", "EU", 16900, "CMO", eu_member=True),
    Country("BE", "Belgium", "EU", 11200, "CMO", eu_member=True),
    Country("DK", "Denmark", "EU", 5600, "CMO", eu_member=True),
    Country("ES", "Spain", "EU", 46500, "CMO", eu_member=True),
    Country("PL", "Poland", "EU", 38500, "REP", eu_member=True),
    Country("GR", "Greece", "EU", 10900, "REP", eu_member=True),
    Country("FI", "Finland", "EU", 5500, "REP", eu_member=True),
    Country("IE", "Ireland", "EU", 4600, "REP", eu_member=True),
    Country("PT", "Portugal", "EU", 10400, "REP", eu_member=True),
    Country("CZ", "Czechia", "EU", 10500, "REP", eu_member=True),
    Country("RO", "Romania", "EU", 19900, "REP", eu_member=True),
    Country("BG", "Bulgaria", "EU", 7200, "REP", eu_member=True),
    Country("SK", "Slovakia", "EU", 5400, "REP", eu_member=True),
    Country("HR", "Croatia", "EU", 4200, "REP", eu_member=True),
    Country("SI", "Slovenia", "EU", 2100, "REP", eu_member=True),
    Country("LT", "Lithuania", "EU", 2900, "REP", eu_member=True),
    Country("LV", "Latvia", "EU", 2000, "REP", eu_member=True),
    Country("EE", "Estonia", "EU", 1300, "REP", eu_member=True),
    Country("LU", "Luxembourg", "EU", 550, "CMO", eu_member=True),
    Country("CY", "Cyprus", "EU", 860, "REP", eu_member=True),
    Country("MT", "Malta", "EU", 430, "REP", eu_member=True),
    # EFTA (non-EU destinations in the real data set)
    Country("CH", "Switzerland", "EU", 8200, "FED"),
    Country("NO", "Norway", "EU", 5100, "CMO"),
    Country("IS", "Iceland", "EU", 330, "REP"),
    Country("LI", "Liechtenstein", "EU", 37, "CMO"),
]

#: sex dimension codes (Eurostat dictionary)
SEX_CODES: List[Tuple[str, str]] = [
    ("T", "Total"),
    ("M", "Males"),
    ("F", "Females"),
]

#: age-group dimension codes
AGE_CODES: List[Tuple[str, str]] = [
    ("TOTAL", "Total"),
    ("Y_LT14", "Less than 14 years"),
    ("Y14-17", "From 14 to 17 years"),
    ("Y18-34", "From 18 to 34 years"),
    ("Y35-64", "From 35 to 64 years"),
    ("Y_GE65", "65 years or over"),
]

#: application-type dimension codes (asylum applicant kinds)
APPLICATION_CODES: List[Tuple[str, str]] = [
    ("ASY_APP", "Asylum applicant"),
    ("ASY_APP_F", "First-time asylum applicant"),
]

#: months of the paper's demo subset: 2013-01 .. 2014-12
MONTHS: List[str] = [
    f"{year}M{month:02d}"
    for year in (2013, 2014)
    for month in range(1, 13)
]


def month_to_quarter(month_code: str) -> str:
    """``2013M05`` → ``2013Q2``."""
    year, month = month_code.split("M")
    quarter = (int(month) - 1) // 3 + 1
    return f"{year}Q{quarter}"


def quarter_to_year(quarter_code: str) -> str:
    """``2013Q2`` → ``2013``."""
    return quarter_code.split("Q")[0]


QUARTERS: List[str] = sorted({month_to_quarter(m) for m in MONTHS})
YEARS: List[str] = sorted({quarter_to_year(q) for q in QUARTERS})


def citizenship_by_code() -> Dict[str, Country]:
    """Citizenship countries indexed by their dictionary code."""
    return {country.code: country for country in CITIZENSHIP_COUNTRIES}


def destination_by_code() -> Dict[str, Country]:
    """Destination countries indexed by their dictionary code."""
    return {country.code: country for country in DESTINATION_COUNTRIES}
