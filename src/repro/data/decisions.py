"""Synthetic generator for a second QB cube: asylum *decisions*.

The paper's Exploration module "allows to choose a data cube
(represented in QB4OLAP) among a **collection of cubes** stored in an
endpoint" (§III-B).  This module provides the second cube of that
collection, modelled on Eurostat's ``migr_asydcfstq`` (first-instance
decisions on asylum applications): the five conformed dimensions of the
applications cube (reference period, citizenship, destination geo, sex,
age group) plus a *decision* dimension, and the same
``sdmx-measure:obsValue`` measure.

Because the two cubes share dimension dictionaries, results over them
can be combined — the Cube Algebra DRILL-ACROSS operation implemented
in :mod:`repro.ql.drillacross` (e.g. acceptance rates per continent and
year join decisions onto applications).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespace import Namespace, RDF, RDFS, SDMX_DIMENSION
from repro.rdf.terms import BNode, IRI, Literal
from repro.qb import vocabulary as qb
from repro.data import geography as geo
from repro.data.eurostat import MEASURE_PROPERTY
from repro.data.namespaces import (
    DATA,
    DIC_AGE,
    DIC_CITIZEN,
    DIC_GEO,
    DIC_SEX,
    DIC_TIME,
    DSD,
    ESTAT,
    PROPERTY,
)

DATASET_IRI = DATA.migr_asydcfstq
DSD_IRI = DSD.migr_asydcfstq

DIC_DECISION = Namespace(ESTAT + "dic/decision#")

#: decision outcomes (Eurostat first-instance decision breakdown)
DECISION_CODES: List[Tuple[str, str]] = [
    ("TOTAL_POS", "Total positive decisions"),
    ("GENCONV", "Geneva Convention status"),
    ("HUMSTAT", "Humanitarian status"),
    ("SUBS_PROT", "Subsidiary protection status"),
    ("REJECTED", "Rejected"),
]

#: the six dimension component properties, in DSD order
DIMENSION_PROPERTIES: Tuple[IRI, ...] = (
    SDMX_DIMENSION.refPeriod,
    PROPERTY.citizen,
    PROPERTY.geo,
    PROPERTY.sex,
    PROPERTY.age,
    PROPERTY.decision,
)


@dataclass
class DecisionsConfig:
    """Tuning knobs for the decisions data set."""

    observations: int = 20_000
    seed: int = 97
    months: Sequence[str] = field(default_factory=lambda: list(geo.MONTHS))
    citizenship: Sequence[geo.Country] = field(
        default_factory=lambda: list(geo.CITIZENSHIP_COUNTRIES))
    destinations: Sequence[geo.Country] = field(
        default_factory=lambda: list(geo.DESTINATION_COUNTRIES))
    max_count: int = 400
    #: probability mass of positive outcomes (tunes acceptance rates)
    positive_share: float = 0.45


def member_iris(config: Optional[DecisionsConfig] = None
                ) -> Dict[IRI, List[IRI]]:
    """Dictionary-member IRIs per dimension property."""
    config = config or DecisionsConfig()
    return {
        SDMX_DIMENSION.refPeriod: [DIC_TIME[m] for m in config.months],
        PROPERTY.citizen: [DIC_CITIZEN[c.code] for c in config.citizenship],
        PROPERTY.geo: [DIC_GEO[c.code] for c in config.destinations],
        PROPERTY.sex: [DIC_SEX[code] for code, _ in geo.SEX_CODES],
        PROPERTY.age: [DIC_AGE[code] for code, _ in geo.AGE_CODES],
        PROPERTY.decision: [
            DIC_DECISION[code] for code, _ in DECISION_CODES],
    }


def build_dsd(graph: Graph) -> None:
    """Emit the plain-QB DSD of the decisions cube."""
    graph.add(DSD_IRI, RDF.type, qb.DataStructureDefinition)
    for position, prop in enumerate(DIMENSION_PROPERTIES, start=1):
        node = BNode(f"dec_comp_{prop.local_name()}")
        graph.add(DSD_IRI, qb.component, node)
        graph.add(node, qb.dimension, prop)
        graph.add(node, qb.order, Literal(position))
    measure_node = BNode("dec_comp_obsValue")
    graph.add(DSD_IRI, qb.component, measure_node)
    graph.add(measure_node, qb.measure, MEASURE_PROPERTY)
    graph.add(DATASET_IRI, RDF.type, qb.DataSet)
    graph.add(DATASET_IRI, qb.structure, DSD_IRI)
    graph.add(DATASET_IRI, RDFS.label,
              Literal("First instance decisions on asylum applications "
                      "by citizenship, age and sex (monthly data)",
                      language="en"))


def build_decision_labels(graph: Graph) -> None:
    """Label the decision dictionary members (skos-style labels)."""
    for code, label in DECISION_CODES:
        graph.add(DIC_DECISION[code], RDFS.label, Literal(label,
                                                          language="en"))


def generate_observations(graph: Graph,
                          config: Optional[DecisionsConfig] = None) -> int:
    """Append seeded decision observations; returns how many.

    Outcome sampling splits mass between positive outcomes and
    rejections via ``positive_share`` so acceptance-rate analyses over
    the drill-across result show a meaningful split.
    """
    config = config or DecisionsConfig()
    rng = random.Random(config.seed)
    members = member_iris(config)
    axes = [members[prop] for prop in DIMENSION_PROPERTIES]
    space = 1
    for axis in axes:
        space *= len(axis)
    wanted = min(config.observations, space)

    positive = [index for index, (code, _) in enumerate(DECISION_CODES)
                if code != "REJECTED"]
    rejected = [index for index, (code, _) in enumerate(DECISION_CODES)
                if code == "REJECTED"]

    seen: set = set()
    produced = 0
    attempts = 0
    max_attempts = wanted * 50
    while produced < wanted and attempts < max_attempts:
        attempts += 1
        if rng.random() < config.positive_share:
            decision_index = rng.choice(positive)
        else:
            decision_index = rng.choice(rejected)
        coordinate = (
            rng.randrange(len(axes[0])),
            rng.randrange(len(axes[1])),
            rng.randrange(len(axes[2])),
            rng.randrange(len(axes[3])),
            rng.randrange(len(axes[4])),
            decision_index,
        )
        if coordinate in seen:
            continue
        seen.add(coordinate)
        observation = DATA[f"migr_asydcfstq/OBS_{produced:06d}"]
        graph.add(observation, RDF.type, qb.Observation)
        graph.add(observation, qb.dataSet, DATASET_IRI)
        for axis, prop, index in zip(axes, DIMENSION_PROPERTIES, coordinate):
            graph.add(observation, prop, axis[index])
        value = int(rng.paretovariate(1.4))
        graph.add(observation, MEASURE_PROPERTY,
                  Literal(min(value, config.max_count)))
        produced += 1
    return produced


def build_decisions_graph(config: Optional[DecisionsConfig] = None) -> Graph:
    """The full plain-QB decisions graph: DSD + data set + observations."""
    from repro.data.namespaces import DEMO_PREFIXES

    graph = Graph()
    for prefix, namespace in DEMO_PREFIXES.items():
        graph.bind(prefix, namespace)
    graph.bind("dic-decision", DIC_DECISION)
    build_dsd(graph)
    build_decision_labels(graph)
    generate_observations(graph, config)
    return graph
