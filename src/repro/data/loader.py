"""One-call assembly of demo endpoints.

:func:`build_demo_endpoint` stands up the scenario from the paper's
§I/§IV: a local endpoint holding the plain-QB asylum cube (named graph
``graphs:qb``) and the linked reference data (``graphs:reference``).
The Enrichment module then writes its output into ``graphs:schema`` and
``graphs:instances``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.rdf.terms import IRI
from repro.sparql.endpoint import LocalEndpoint
from repro.data import geography as geo
from repro.data.eurostat import (
    DATASET_IRI,
    DSD_IRI,
    GeneratorConfig,
    build_qb_graph,
)
from repro.data.namespaces import (
    DEMO_PREFIXES,
    QB_GRAPH,
    REFERENCE_GRAPH,
)
from repro.data.reference import ReferenceConfig, build_reference_graph


@dataclass
class DemoData:
    """Handle onto a loaded demo endpoint."""

    endpoint: LocalEndpoint
    dataset: IRI
    dsd: IRI
    observations: int


def build_demo_endpoint(observations: int = 80_000,
                        seed: int = 42,
                        noise_rate: float = 0.0,
                        include_reference: bool = True,
                        endpoint: Optional[LocalEndpoint] = None) -> DemoData:
    """Load the synthetic Eurostat cube (+ reference data) into an endpoint."""
    endpoint = endpoint or LocalEndpoint()
    for prefix, namespace in DEMO_PREFIXES.items():
        endpoint.dataset.namespace_manager.bind(prefix, namespace)

    qb_graph = build_qb_graph(GeneratorConfig(
        observations=observations, seed=seed))
    loaded = endpoint.insert_triples(qb_graph, graph=QB_GRAPH)

    if include_reference:
        reference = build_reference_graph(
            ReferenceConfig(noise_rate=noise_rate))
        endpoint.insert_triples(reference, graph=REFERENCE_GRAPH)

    observation_count = endpoint.graph(QB_GRAPH).count(
        (None, None, None))  # cheap sanity touch
    del observation_count, loaded
    return DemoData(
        endpoint=endpoint,
        dataset=DATASET_IRI,
        dsd=DSD_IRI,
        observations=observations,
    )


def small_demo_config(observations: int = 2_000,
                      seed: int = 11) -> GeneratorConfig:
    """The stratified generator configuration behind :func:`small_demo`.

    Strides through the tables so every continent / government kind is
    represented even in the small subset; France must be present for
    the paper's demo query to have matches.
    """
    destinations = list(geo.DESTINATION_COUNTRIES[::4])
    if all(country.code != "FR" for country in destinations):
        destinations.insert(1, geo.destination_by_code()["FR"])
    return GeneratorConfig(
        observations=observations,
        seed=seed,
        citizenship=geo.CITIZENSHIP_COUNTRIES[::3],
        destinations=destinations,
    )


def small_demo(observations: int = 2_000, seed: int = 11,
               noise_rate: float = 0.0) -> DemoData:
    """A test-sized variant (~2k observations, full reference graph)."""
    config = small_demo_config(observations, seed)
    endpoint = LocalEndpoint()
    for prefix, namespace in DEMO_PREFIXES.items():
        endpoint.dataset.namespace_manager.bind(prefix, namespace)
    qb_graph = build_qb_graph(config)
    endpoint.insert_triples(qb_graph, graph=QB_GRAPH)
    reference = build_reference_graph(ReferenceConfig(
        noise_rate=noise_rate,
        citizenship=config.citizenship,
        destinations=config.destinations,
    ))
    endpoint.insert_triples(reference, graph=REFERENCE_GRAPH)
    return DemoData(endpoint=endpoint, dataset=DATASET_IRI, dsd=DSD_IRI,
                    observations=observations)


@dataclass
class DecisionsData:
    """Handle onto the second (decisions) cube in an endpoint."""

    endpoint: LocalEndpoint
    dataset: IRI
    dsd: IRI
    observations: int


def add_decisions_cube(demo: DemoData,
                       observations: int = 20_000,
                       seed: int = 97,
                       small: bool = False) -> DecisionsData:
    """Load the asylum-*decisions* cube next to the applications cube.

    The decisions cube shares the citizenship/destination/time/sex/age
    dictionaries with the applications cube (conformed dimensions), so
    the endpoint then holds the "collection of cubes" the Exploration
    module chooses from, and drill-across analyses become possible.
    ``small=True`` restricts the dictionaries exactly like
    :func:`small_demo_config` so the two cubes stay aligned in tests.
    """
    from repro.data.decisions import (
        DATASET_IRI as DECISIONS_DATASET,
        DSD_IRI as DECISIONS_DSD,
        DecisionsConfig,
        build_decisions_graph,
    )

    if small:
        base = small_demo_config(seed=seed)
        config = DecisionsConfig(
            observations=observations, seed=seed,
            citizenship=base.citizenship, destinations=base.destinations)
    else:
        config = DecisionsConfig(observations=observations, seed=seed)
    graph = build_decisions_graph(config)
    demo.endpoint.insert_triples(graph, graph=QB_GRAPH)
    return DecisionsData(
        endpoint=demo.endpoint,
        dataset=DECISIONS_DATASET,
        dsd=DECISIONS_DSD,
        observations=observations,
    )
