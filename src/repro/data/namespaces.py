"""IRIs and namespaces of the synthetic Eurostat data set.

Mirrors the layout of ``http://eurostat.linked-statistics.org/`` that
the paper's demo uses: a ``data`` namespace for data sets and
observations, ``dsd`` for structure definitions, ``property`` for the
component properties, and ``dic`` dictionaries for coded dimension
members.  The ``schema`` namespace matches the paper's enriched-cube
namespace, and ``ref`` plays the role of the external linked sources
(DBpedia and friends).
"""

from __future__ import annotations

from repro.rdf.namespace import Namespace

ESTAT = "http://eurostat.linked-statistics.org/"

DATA = Namespace(ESTAT + "data/")
DSD = Namespace(ESTAT + "dsd/")
PROPERTY = Namespace(ESTAT + "property#")
DIC_CITIZEN = Namespace(ESTAT + "dic/citizen#")
DIC_GEO = Namespace(ESTAT + "dic/geo#")
DIC_TIME = Namespace(ESTAT + "dic/time#")
DIC_SEX = Namespace(ESTAT + "dic/sex#")
DIC_AGE = Namespace(ESTAT + "dic/age#")
DIC_ASYL = Namespace(ESTAT + "dic/asyl_app#")

#: the paper's enrichment schema namespace
SCHEMA = Namespace("http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#")

#: simulated external linked data (DBpedia stand-in)
REF = Namespace("http://reference.example.org/resource/")
REF_PROP = Namespace("http://reference.example.org/property#")

#: named graphs inside the local endpoint
GRAPHS = Namespace("http://example.org/graphs/")
QB_GRAPH = GRAPHS.qb
REFERENCE_GRAPH = GRAPHS.reference
SCHEMA_GRAPH = GRAPHS.schema
INSTANCE_GRAPH = GRAPHS.instances

#: well-known prefix bindings for endpoints holding the demo data
DEMO_PREFIXES = {
    "data": DATA,
    "dsd": DSD,
    "property": PROPERTY,
    "dic-citizen": DIC_CITIZEN,
    "dic-geo": DIC_GEO,
    "dic-time": DIC_TIME,
    "dic-sex": DIC_SEX,
    "dic-age": DIC_AGE,
    "dic-asyl": DIC_ASYL,
    "schema": SCHEMA,
    "ref": REF,
    "ref-prop": REF_PROP,
}
