"""Synthetic data generators: the Eurostat-style asylum cubes
(applications + decisions) and the linked reference graph that stands
in for external Linked Data sources.
"""

from repro.data.decisions import DecisionsConfig, build_decisions_graph
from repro.data.eurostat import (
    DATASET_IRI,
    DIMENSION_PROPERTIES,
    DSD_IRI,
    GeneratorConfig,
    MEASURE_PROPERTY,
    build_qb_graph,
)
from repro.data.loader import (
    DecisionsData,
    DemoData,
    add_decisions_cube,
    build_demo_endpoint,
    small_demo,
)
from repro.data.reference import ReferenceConfig, build_reference_graph

__all__ = [
    "DATASET_IRI",
    "DIMENSION_PROPERTIES",
    "DSD_IRI",
    "DecisionsConfig",
    "DecisionsData",
    "DemoData",
    "GeneratorConfig",
    "MEASURE_PROPERTY",
    "ReferenceConfig",
    "add_decisions_cube",
    "build_decisions_graph",
    "build_demo_endpoint",
    "build_qb_graph",
    "build_reference_graph",
    "small_demo",
]
