"""The simulated linked reference graph (external-source stand-in).

In the paper, candidate roll-up properties come from the Linked Data
cloud: Eurostat dictionaries and external data sets such as DBpedia
("our tool is able to extract dimensional information from other data
sets").  Offline, this module synthesizes an equivalent graph:

* citizenship members carry ``ref-prop:continent`` (functional, few
  distinct values → a sound *level* candidate), ``ref-prop:countryName``
  (one distinct value per member → an *attribute* candidate),
  ``ref-prop:population`` (literal attribute) and
  ``ref-prop:governmentKind`` (second level candidate);
* destination members additionally carry ``ref-prop:euMembership`` and
  ``ref-prop:politicalOrganization`` — the paper's "kind of political
  organization of the host countries" scenario;
* time members roll up month → quarter → year via ``ref-prop:quarter``
  and ``ref-prop:year`` (exercises the *iterative* enrichment loop);
* sex / age / application members have labels only (negative case: no
  hierarchy should be discovered).

A configurable noise rate degrades the functional links (dropping some,
doubling others) to produce the *quasi-FD* situations the Enrichment
module's error threshold is designed for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.terms import IRI, Literal
from repro.data import geography as geo
from repro.data.namespaces import (
    DEMO_PREFIXES,
    DIC_AGE,
    DIC_ASYL,
    DIC_CITIZEN,
    DIC_GEO,
    DIC_SEX,
    DIC_TIME,
    REF,
    REF_PROP,
)


@dataclass
class ReferenceConfig:
    """Noise knobs for quasi-FD experiments.

    ``noise_rate`` is the fraction of citizenship countries whose
    ``noisy_properties`` links get degraded; half of the affected
    members lose the link entirely, the other half gain a second,
    conflicting link.
    """

    seed: int = 7
    noise_rate: float = 0.0
    noisy_properties: Tuple[str, ...] = ("continent",)
    citizenship: Sequence[geo.Country] = field(
        default_factory=lambda: list(geo.CITIZENSHIP_COUNTRIES))
    destinations: Sequence[geo.Country] = field(
        default_factory=lambda: list(geo.DESTINATION_COUNTRIES))
    months: Sequence[str] = field(default_factory=lambda: list(geo.MONTHS))


def continent_iri(key: str) -> IRI:
    """The reference-graph IRI of a continent by name."""
    return REF[f"continent/{key}"]


def government_iri(key: str) -> IRI:
    """The reference-graph IRI of a government kind by name."""
    return REF[f"government/{key}"]


def group_iri(key: str) -> IRI:
    """The reference-graph IRI of a country group by name."""
    return REF[f"group/{key}"]


def quarter_iri(code: str) -> IRI:
    """The reference-graph IRI of a calendar quarter (e.g. 2013-Q1)."""
    return REF[f"quarter/{code}"]


def year_iri(code: str) -> IRI:
    """The reference-graph IRI of a calendar year."""
    return REF[f"year/{code}"]


def build_reference_graph(config: Optional[ReferenceConfig] = None) -> Graph:
    """Build the full reference graph."""
    config = config or ReferenceConfig()
    rng = random.Random(config.seed)
    graph = Graph()
    for prefix, namespace in DEMO_PREFIXES.items():
        graph.bind(prefix, namespace)

    _add_continents(graph)
    _add_governments(graph)
    _add_groups(graph)
    _add_time(graph, config.months)

    noisy: Dict[str, Set[str]] = {
        prop: set() for prop in config.noisy_properties}
    if config.noise_rate > 0:
        for prop in config.noisy_properties:
            count = int(round(config.noise_rate * len(config.citizenship)))
            codes = [c.code for c in config.citizenship]
            noisy[prop] = set(rng.sample(codes, min(count, len(codes))))

    for country in config.citizenship:
        member = DIC_CITIZEN[country.code]
        _add_country(graph, member, country, rng, noisy)

    for country in config.destinations:
        member = DIC_GEO[country.code]
        _add_country(graph, member, country, rng, noisy={})
        graph.add(member, REF_PROP.euMembership,
                  group_iri("EU" if country.eu_member else "EFTA"))
        graph.add(member, REF_PROP.politicalOrganization,
                  government_iri(country.government))

    _add_coded_labels(graph, DIC_SEX, geo.SEX_CODES)
    _add_coded_labels(graph, DIC_AGE, geo.AGE_CODES)
    _add_coded_labels(graph, DIC_ASYL, geo.APPLICATION_CODES)
    return graph


def _add_country(graph: Graph, member: IRI, country: geo.Country,
                 rng: random.Random, noisy: Dict[str, Set[str]]) -> None:
    graph.add(member, RDFS.label, Literal(country.name, language="en"))
    graph.add(member, REF_PROP.countryName, Literal(country.name))
    graph.add(member, REF_PROP.population, Literal(country.population))

    continent_noise = noisy.get("continent", set())
    if country.code in continent_noise:
        if rng.random() < 0.5:
            pass  # drop the link entirely
        else:
            others = [key for key in geo.CONTINENTS if key != country.continent]
            graph.add(member, REF_PROP.continent,
                      continent_iri(country.continent))
            graph.add(member, REF_PROP.continent,
                      continent_iri(rng.choice(others)))
    else:
        graph.add(member, REF_PROP.continent, continent_iri(country.continent))

    government_noise = noisy.get("governmentKind", set())
    if country.code in government_noise:
        if rng.random() < 0.5:
            pass
        else:
            others = [key for key in geo.GOVERNMENT_KINDS
                      if key != country.government]
            graph.add(member, REF_PROP.governmentKind,
                      government_iri(country.government))
            graph.add(member, REF_PROP.governmentKind,
                      government_iri(rng.choice(others)))
    else:
        graph.add(member, REF_PROP.governmentKind,
                  government_iri(country.government))


def _add_continents(graph: Graph) -> None:
    for key, name in geo.CONTINENTS.items():
        node = continent_iri(key)
        graph.add(node, RDF.type, REF.Continent)
        graph.add(node, RDFS.label, Literal(name, language="en"))
        graph.add(node, REF_PROP.continentName, Literal(name))


def _add_governments(graph: Graph) -> None:
    for key, name in geo.GOVERNMENT_KINDS.items():
        node = government_iri(key)
        graph.add(node, RDF.type, REF.GovernmentKind)
        graph.add(node, RDFS.label, Literal(name, language="en"))
        graph.add(node, REF_PROP.governmentName, Literal(name))


def _add_groups(graph: Graph) -> None:
    for key, name in (("EU", "European Union"),
                      ("EFTA", "European Free Trade Association")):
        node = group_iri(key)
        graph.add(node, RDF.type, REF.CountryGroup)
        graph.add(node, RDFS.label, Literal(name, language="en"))
        graph.add(node, REF_PROP.groupName, Literal(name))


def _add_time(graph: Graph, months: Sequence[str]) -> None:
    quarters: Set[str] = set()
    for month_code in months:
        member = DIC_TIME[month_code]
        graph.add(member, RDFS.label, Literal(month_code))
        quarter_code = geo.month_to_quarter(month_code)
        graph.add(member, REF_PROP.quarter, quarter_iri(quarter_code))
        quarters.add(quarter_code)
    years: Set[str] = set()
    for quarter_code in sorted(quarters):
        node = quarter_iri(quarter_code)
        graph.add(node, RDF.type, REF.Quarter)
        graph.add(node, RDFS.label, Literal(quarter_code))
        graph.add(node, REF_PROP.quarterName, Literal(quarter_code))
        year_code = geo.quarter_to_year(quarter_code)
        graph.add(node, REF_PROP.year, year_iri(year_code))
        years.add(year_code)
    for year_code in sorted(years):
        node = year_iri(year_code)
        graph.add(node, RDF.type, REF.Year)
        graph.add(node, RDFS.label, Literal(year_code))
        graph.add(node, REF_PROP.yearName, Literal(year_code))
        graph.add(node, REF_PROP.yearNumber, Literal(int(year_code)))


def _add_coded_labels(graph: Graph, namespace, codes) -> None:
    for code, name in codes:
        member = namespace[code]
        graph.add(member, RDFS.label, Literal(name, language="en"))
