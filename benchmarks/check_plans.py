#!/usr/bin/env python
"""Guard the cost-based planner against plan-quality regressions.

Translates the E3/E6 query workload to SPARQL, plans every BGP with
the cost-based optimizer, and compares each query's **estimated plan
cost** (Σ of estimated intermediate rows across its BGPs) against a
committed baseline.  A plan whose estimated cost grows by more than
the allowed factor (default 2×) means the planner started choosing a
worse join order for that shape — the build fails before the slowdown
ever reaches a wall clock.

The default run also gates **constant-aware planning** (statistics
v2): a skewed-constant query family — the same shape probed with the
*hottest* and a *cold* destination member — must (a) plan different
join orders or trigger a bracket replan, and (b) touch measurably
fewer index entries under value-aware costing than under the
average-only model it replaced.  Skew results are written to
``benchmarks/results/skew_planning.txt``.

Usage::

    PYTHONPATH=src REPRO_BENCH_OBS=2000 python benchmarks/check_plans.py
    PYTHONPATH=src python benchmarks/check_plans.py --update  # re-baseline
    PYTHONPATH=src python benchmarks/check_plans.py --sharing-report

``--sharing-report`` additionally measures what parameterized plan
sharing is worth during cube materialization: it replays the
per-member-IRI query workload of the enrichment phase with the plan
cache keyed on exact constants vs. constant-lifted signatures, and
writes the miss counts to ``benchmarks/results/plan_sharing.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

BASELINE_PATH = pathlib.Path(__file__).parent / "plan_baseline.json"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OBSERVATIONS = int(os.environ.get("REPRO_BENCH_OBS", "2000"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))
ALLOWED_FACTOR = float(os.environ.get("REPRO_PLAN_TOLERANCE", "2.0"))
#: costs below this are planner noise, not plan shape
COST_FLOOR = 100.0


def _collect_bgps(node):
    from repro.sparql.algebra import (
        BGP, Extend, Filter, GraphNode, Join, LeftJoin, Minus,
        SubSelectNode, Union)

    result = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, BGP):
            result.append(current)
        elif isinstance(current, (Join, LeftJoin, Union, Minus)):
            stack.extend((current.left, current.right))
        elif isinstance(current, (Filter, Extend, GraphNode)):
            stack.append(current.child)
        elif isinstance(current, SubSelectNode):
            stack.append(current.query.pattern)
    return result


def query_plan_cost(sparql_text: str, dataset) -> float:
    """Σ estimated plan cost over every BGP of one SPARQL query."""
    from repro.sparql.evaluator import DatasetContext
    from repro.sparql.optimizer import plan_physical
    from repro.sparql.parser import parse_query

    query = parse_query(sparql_text)
    source = DatasetContext(dataset).default_source()
    total = 0.0
    for bgp in _collect_bgps(query.pattern):
        total += plan_physical(bgp.patterns, source).cost
    return total


def measure(demo, skew=None) -> dict:
    """Estimated plan cost per E3/E6 workload query."""
    from repro.demo import MARY_QL
    from benchmarks.bench_e3_querying import PREDEFINED

    dataset = demo.endpoint.dataset
    costs = {}
    workload = dict(PREDEFINED)
    for name in sorted(workload):
        translation = demo.engine.prepare(workload[name])[3]
        costs[f"e3/{name}/direct"] = round(
            query_plan_cost(translation.direct, dataset), 1)
        costs[f"e3/{name}/optimized"] = round(
            query_plan_cost(translation.optimized, dataset), 1)
    translation = demo.engine.prepare(MARY_QL)[3]
    costs["e6/mary/direct"] = round(
        query_plan_cost(translation.direct, dataset), 1)
    hot_text, cold_text, _hot, _cold = skew or skew_queries(demo)
    costs["skew/hot"] = round(query_plan_cost(hot_text, dataset), 1)
    costs["skew/cold"] = round(query_plan_cost(cold_text, dataset), 1)
    return costs


# -- skewed-constant planning gate (statistics v2) ---------------------------


def skew_queries(demo):
    """``(hot_text, cold_text, hot_member, cold_member)`` — one query
    shape, probed with the busiest and an unpopular destination.

    The synthetic cube weights destinations heavy-tailed (Germany
    receives ~25x an average country's observations), so the hottest
    member is exactly the kind of constant the average-only cost model
    mispriced.  Members are picked from the live data, not hardcoded,
    so the gate holds at any scale/seed.
    """
    from repro.data.namespaces import PROPERTY
    from repro.rdf.namespace import SDMX_DIMENSION

    union = demo.endpoint.dataset.union()
    counts = sorted(
        ((union.count((None, PROPERTY.geo, member)), member.value)
         for member in set(union.objects(predicate=PROPERTY.geo))))
    nonzero = [(count, iri) for count, iri in counts if count > 0]
    hot = nonzero[-1][1]
    cold = nonzero[0][1]
    month = min(member.value
                for member in union.objects(
                    predicate=SDMX_DIMENSION.refPeriod))

    def text(member: str) -> str:
        return f"""SELECT ?o ?v WHERE {{
            ?o <{PROPERTY.geo.value}> <{member}> .
            ?o <{SDMX_DIMENSION.refPeriod.value}> <{month}> .
            ?o <http://purl.org/linked-data/sdmx/2009/measure#obsValue> ?v .
        }}"""

    return text(hot), text(cold), hot, cold


def _first_step(plan_text: str) -> str:
    """The pattern of a rendered plan's first join step."""
    line = next(l for l in plan_text.splitlines() if "[0]" in l)
    return line.split("(est.")[0].strip()


def _count_probes(endpoint, text: str) -> int:
    from repro.sparql.evaluator import PROBE_COUNTER

    with PROBE_COUNTER:
        endpoint.select(text)
        return PROBE_COUNTER.entries


def skew_gate(demo, skew=None) -> list:
    """Gate the constant-aware planner on the skewed-destination family.

    Returns a list of failure strings (empty = pass).  Checks:

    * hot and cold constants on the same shape produce different join
      orders, or at least a bracket-triggered replan (two cache
      entries for one shape);
    * executing the hot-constant query touches measurably fewer index
      entries than the same query planned by the average-only model
      (the pre-statistics-v2 baseline, replayed via
      ``optimizer.CONSTANT_AWARE = False``).
    """
    from repro.sparql import optimizer
    from repro.sparql.explain import explain

    hot_text, cold_text, hot, cold = skew or skew_queries(demo)
    endpoint = demo.endpoint
    dataset = endpoint.dataset
    failures = []

    optimizer.PLAN_CACHE.clear()
    hot_plan = explain(hot_text, dataset)
    cold_plan = explain(cold_text, dataset)
    replans = optimizer.PLAN_CACHE.bracket_replans
    orders_differ = _first_step(hot_plan) != _first_step(cold_plan)
    if not orders_differ and replans == 0:
        failures.append(
            "skew: hot and cold constants got identical plans and no "
            "bracket replan was recorded")

    optimizer.PLAN_CACHE.clear()
    optimizer.CONSTANT_AWARE = False
    try:
        avg_probes = _count_probes(endpoint, hot_text)
    finally:
        optimizer.CONSTANT_AWARE = True
    optimizer.PLAN_CACHE.clear()
    aware_probes = _count_probes(endpoint, hot_text)
    if aware_probes >= avg_probes:
        failures.append(
            f"skew: constant-aware planning did not reduce hot-constant "
            f"probes ({aware_probes} vs {avg_probes} average-only)")

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"# skew_planning — observations={OBSERVATIONS}",
        "hot vs cold constant on one query shape (destination member)",
        f"{'hot member':34s} {hot}",
        f"{'cold member':34s} {cold}",
        f"{'join orders differ':34s} {str(orders_differ):>8s}",
        f"{'bracket replans':34s} {replans:8d}",
        f"{'hot probes, average-only model':34s} {avg_probes:8d}",
        f"{'hot probes, constant-aware model':34s} {aware_probes:8d}",
        f"{'probe reduction':34s} "
        f"{avg_probes / max(1, aware_probes):7.1f}x",
    ]
    path = RESULTS_DIR / "skew_planning.txt"
    path.write_text("\n".join(lines) + "\n")
    print()
    print("\n".join(lines))
    print(f"\nwritten to {path}")
    return failures


def sharing_report(demo) -> int:
    """Measure plan-cache misses of the materialization workload with
    and without parameterized plan sharing; write the committed report."""
    from repro.enrichment.instances import (
        collect_bottom_members, member_properties)
    from repro.sparql.optimizer import PLAN_CACHE

    # the enrichment phase's member-at-a-time property walk — the
    # workload the paper describes as "a query is run for each level
    # instance" — replayed over every dimension of the demo cube
    members = []
    for dimension in demo.schema.dimensions:
        bottom = demo.schema.bottom_level(dimension.iri)
        members.extend(collect_bottom_members(
            demo.endpoint, demo.schema.dataset, bottom))

    def run(parameterized: bool) -> dict:
        PLAN_CACHE.clear()
        PLAN_CACHE.parameterized = parameterized
        for member in members:
            member_properties(demo.endpoint, member)
        stats = PLAN_CACHE.statistics()
        PLAN_CACHE.parameterized = True
        return stats

    exact = run(parameterized=False)
    shared = run(parameterized=True)
    improvement = exact["misses"] / max(1, shared["misses"])

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"# plan_sharing — observations={OBSERVATIONS}",
        "cube-materialization member walk: plan-cache misses",
        f"{'member queries issued':34s} {len(members):8d}",
        f"{'misses, exact-constant plans':34s} {exact['misses']:8d}",
        f"{'misses, parameterized plans':34s} {shared['misses']:8d}",
        f"{'parameterized hits':34s} "
        f"{shared['hits_parameterized']:8d}",
        f"{'miss reduction':34s} {improvement:7.1f}x",
    ]
    path = RESULTS_DIR / "plan_sharing.txt"
    path.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"\nwritten to {path}")
    if improvement < 10.0:
        print("FAIL: parameterized sharing below the 10x target",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=BASELINE_PATH)
    parser.add_argument("--update", action="store_true",
                        help="write the fresh costs as the new baseline")
    parser.add_argument("--sharing-report", action="store_true",
                        help="write benchmarks/results/plan_sharing.txt")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))
    from repro.demo import prepare_enriched_demo

    demo = prepare_enriched_demo(observations=OBSERVATIONS, seed=SEED)

    if args.sharing_report:
        return sharing_report(demo)

    skew = skew_queries(demo)  # discovered once, shared by both gates
    fresh = measure(demo, skew)
    scale_key = str(OBSERVATIONS)
    stored = {}
    if args.baseline.exists():
        stored = json.loads(args.baseline.read_text())

    if args.update:
        stored[scale_key] = fresh
        args.baseline.write_text(json.dumps(stored, indent=2) + "\n")
        print(f"plan baseline updated for obs={OBSERVATIONS}: "
              f"{args.baseline}")
        return 0

    baseline = stored.get(scale_key)
    if baseline is None:
        print(f"no plan baseline for obs={OBSERVATIONS} in "
              f"{args.baseline}; run with --update first", file=sys.stderr)
        return 2

    failures = []
    print(f"{'query':32s} {'baseline':>12s} {'fresh':>12s} {'ratio':>7s}")
    for metric, reference in sorted(baseline.items()):
        current = fresh.get(metric)
        if current is None:
            continue
        ratio = current / reference if reference else float("inf")
        flag = ""
        if (current > reference * ALLOWED_FACTOR
                and max(current, reference) >= COST_FLOOR):
            flag = "  REGRESSION"
            failures.append(metric)
        print(f"{metric:32s} {reference:12.1f} {current:12.1f} "
              f"{ratio:6.2f}x{flag}")

    skew_failures = skew_gate(demo, skew)

    if failures:
        print(f"\n{len(failures)} plan(s) regressed estimated cost by "
              f"more than {ALLOWED_FACTOR:.0f}x: {', '.join(failures)}",
              file=sys.stderr)
    for message in skew_failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures or skew_failures:
        return 1
    print(f"\nno plan cost regression beyond {ALLOWED_FACTOR:.0f}x; "
          f"skewed-constant gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
