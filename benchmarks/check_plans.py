#!/usr/bin/env python
"""Guard the cost-based planner against plan-quality regressions.

Translates the E3/E6 query workload to SPARQL, plans every BGP with
the cost-based optimizer, and compares each query's **estimated plan
cost** (Σ of estimated intermediate rows across its BGPs) against a
committed baseline.  A plan whose estimated cost grows by more than
the allowed factor (default 2×) means the planner started choosing a
worse join order for that shape — the build fails before the slowdown
ever reaches a wall clock.

Usage::

    PYTHONPATH=src REPRO_BENCH_OBS=2000 python benchmarks/check_plans.py
    PYTHONPATH=src python benchmarks/check_plans.py --update  # re-baseline
    PYTHONPATH=src python benchmarks/check_plans.py --sharing-report

``--sharing-report`` additionally measures what parameterized plan
sharing is worth during cube materialization: it replays the
per-member-IRI query workload of the enrichment phase with the plan
cache keyed on exact constants vs. constant-lifted signatures, and
writes the miss counts to ``benchmarks/results/plan_sharing.txt``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

BASELINE_PATH = pathlib.Path(__file__).parent / "plan_baseline.json"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OBSERVATIONS = int(os.environ.get("REPRO_BENCH_OBS", "2000"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))
ALLOWED_FACTOR = float(os.environ.get("REPRO_PLAN_TOLERANCE", "2.0"))
#: costs below this are planner noise, not plan shape
COST_FLOOR = 100.0


def _collect_bgps(node):
    from repro.sparql.algebra import (
        BGP, Extend, Filter, GraphNode, Join, LeftJoin, Minus,
        SubSelectNode, Union)

    result = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, BGP):
            result.append(current)
        elif isinstance(current, (Join, LeftJoin, Union, Minus)):
            stack.extend((current.left, current.right))
        elif isinstance(current, (Filter, Extend, GraphNode)):
            stack.append(current.child)
        elif isinstance(current, SubSelectNode):
            stack.append(current.query.pattern)
    return result


def query_plan_cost(sparql_text: str, dataset) -> float:
    """Σ estimated plan cost over every BGP of one SPARQL query."""
    from repro.sparql.evaluator import DatasetContext
    from repro.sparql.optimizer import plan_physical
    from repro.sparql.parser import parse_query

    query = parse_query(sparql_text)
    source = DatasetContext(dataset).default_source()
    total = 0.0
    for bgp in _collect_bgps(query.pattern):
        total += plan_physical(bgp.patterns, source).cost
    return total


def measure(demo) -> dict:
    """Estimated plan cost per E3/E6 workload query."""
    from repro.demo import MARY_QL
    from benchmarks.bench_e3_querying import PREDEFINED

    dataset = demo.endpoint.dataset
    costs = {}
    workload = dict(PREDEFINED)
    for name in sorted(workload):
        translation = demo.engine.prepare(workload[name])[3]
        costs[f"e3/{name}/direct"] = round(
            query_plan_cost(translation.direct, dataset), 1)
        costs[f"e3/{name}/optimized"] = round(
            query_plan_cost(translation.optimized, dataset), 1)
    translation = demo.engine.prepare(MARY_QL)[3]
    costs["e6/mary/direct"] = round(
        query_plan_cost(translation.direct, dataset), 1)
    return costs


def sharing_report(demo) -> int:
    """Measure plan-cache misses of the materialization workload with
    and without parameterized plan sharing; write the committed report."""
    from repro.enrichment.instances import (
        collect_bottom_members, member_properties)
    from repro.sparql.optimizer import PLAN_CACHE

    # the enrichment phase's member-at-a-time property walk — the
    # workload the paper describes as "a query is run for each level
    # instance" — replayed over every dimension of the demo cube
    members = []
    for dimension in demo.schema.dimensions:
        bottom = demo.schema.bottom_level(dimension.iri)
        members.extend(collect_bottom_members(
            demo.endpoint, demo.schema.dataset, bottom))

    def run(parameterized: bool) -> dict:
        PLAN_CACHE.clear()
        PLAN_CACHE.parameterized = parameterized
        for member in members:
            member_properties(demo.endpoint, member)
        stats = PLAN_CACHE.statistics()
        PLAN_CACHE.parameterized = True
        return stats

    exact = run(parameterized=False)
    shared = run(parameterized=True)
    improvement = exact["misses"] / max(1, shared["misses"])

    RESULTS_DIR.mkdir(exist_ok=True)
    lines = [
        f"# plan_sharing — observations={OBSERVATIONS}",
        "cube-materialization member walk: plan-cache misses",
        f"{'member queries issued':34s} {len(members):8d}",
        f"{'misses, exact-constant plans':34s} {exact['misses']:8d}",
        f"{'misses, parameterized plans':34s} {shared['misses']:8d}",
        f"{'parameterized hits':34s} "
        f"{shared['hits_parameterized']:8d}",
        f"{'miss reduction':34s} {improvement:7.1f}x",
    ]
    path = RESULTS_DIR / "plan_sharing.txt"
    path.write_text("\n".join(lines) + "\n")
    print("\n".join(lines))
    print(f"\nwritten to {path}")
    if improvement < 10.0:
        print("FAIL: parameterized sharing below the 10x target",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=BASELINE_PATH)
    parser.add_argument("--update", action="store_true",
                        help="write the fresh costs as the new baseline")
    parser.add_argument("--sharing-report", action="store_true",
                        help="write benchmarks/results/plan_sharing.txt")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))
    from repro.demo import prepare_enriched_demo

    demo = prepare_enriched_demo(observations=OBSERVATIONS, seed=SEED)

    if args.sharing_report:
        return sharing_report(demo)

    fresh = measure(demo)
    scale_key = str(OBSERVATIONS)
    stored = {}
    if args.baseline.exists():
        stored = json.loads(args.baseline.read_text())

    if args.update:
        stored[scale_key] = fresh
        args.baseline.write_text(json.dumps(stored, indent=2) + "\n")
        print(f"plan baseline updated for obs={OBSERVATIONS}: "
              f"{args.baseline}")
        return 0

    baseline = stored.get(scale_key)
    if baseline is None:
        print(f"no plan baseline for obs={OBSERVATIONS} in "
              f"{args.baseline}; run with --update first", file=sys.stderr)
        return 2

    failures = []
    print(f"{'query':32s} {'baseline':>12s} {'fresh':>12s} {'ratio':>7s}")
    for metric, reference in sorted(baseline.items()):
        current = fresh.get(metric)
        if current is None:
            continue
        ratio = current / reference if reference else float("inf")
        flag = ""
        if (current > reference * ALLOWED_FACTOR
                and max(current, reference) >= COST_FLOOR):
            flag = "  REGRESSION"
            failures.append(metric)
        print(f"{metric:32s} {reference:12.1f} {current:12.1f} "
              f"{ratio:6.2f}x{flag}")

    if failures:
        print(f"\n{len(failures)} plan(s) regressed estimated cost by "
              f"more than {ALLOWED_FACTOR:.0f}x: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nno plan cost regression beyond {ALLOWED_FACTOR:.0f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
