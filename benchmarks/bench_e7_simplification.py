"""E7 — §III-B ablation: the Query Simplification Phase.

Programs padded with k redundant roll-up/drill-down zigzags must (a)
canonicalize to the same small pipeline, and (b) avoid the cost a
naive executor would pay.  The naive cost model mirrors what
simplification prevents: materializing every intermediate cube with
one SPARQL aggregation per operation, instead of one fused query.
"""

import time

import pytest

from repro.data.namespaces import SCHEMA
from repro.demo import QUARTER_LEVEL, YEAR_LEVEL
from repro.ql import QLBuilder, simplify_with_report

PADDING = [0, 2, 4, 8]


def padded_program(schema, zigzags: int):
    builder = (QLBuilder(schema.dataset)
               .slice(SCHEMA.asylappDim)
               .slice(SCHEMA.sexDim)
               .slice(SCHEMA.ageDim)
               .slice(SCHEMA.destinationDim)
               .slice(SCHEMA.citizenshipDim))
    builder.rollup(SCHEMA.timeDim, QUARTER_LEVEL)
    for _ in range(zigzags // 2):
        builder.rollup(SCHEMA.timeDim, YEAR_LEVEL)
        builder.drilldown(SCHEMA.timeDim, QUARTER_LEVEL)
    return builder.build()


@pytest.mark.parametrize("zigzags", PADDING)
def test_e7_op_reduction(demo, benchmark, zigzags, save_rows):
    program = padded_program(demo.schema, zigzags)
    simplified, report = benchmark(
        simplify_with_report, program, demo.schema)
    save_rows(f"E7_ops_k{zigzags}",
              "operation-count reduction",
              [f"k={zigzags}: {report.original_operations} ops -> "
               f"{report.simplified_operations} ops "
               f"(removed {report.removed})"])
    assert report.simplified_operations == 6  # 5 slices + 1 rollup
    assert simplified.rollups[SCHEMA.timeDim] == QUARTER_LEVEL


def test_e7_results_invariant_under_padding(demo, benchmark):
    def run():
        baseline = demo.engine.execute(padded_program(demo.schema, 0))
        padded = demo.engine.execute(padded_program(demo.schema, 8))
        return baseline, padded

    baseline, padded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sorted(map(str, baseline.table.rows)) == \
        sorted(map(str, padded.table.rows))


def test_e7_fused_vs_naive_execution(demo, benchmark, save_rows):
    """Simplification executes ONE fused query; a naive evaluator runs
    one aggregation per (non-dice) operation.  Measure both."""
    zigzags = 4
    program = padded_program(demo.schema, zigzags)
    operations = program.operations()

    def fused():
        return demo.engine.execute(program, variant="direct")

    result = benchmark.pedantic(fused, rounds=1, iterations=1)
    fused_seconds = result.report.execute_seconds

    # naive: one aggregation round-trip per pipeline prefix
    started = time.perf_counter()
    naive_queries = 0
    for cut in range(1, len(operations) + 1):
        builder = QLBuilder(demo.schema.dataset)
        for operation in operations[:cut]:
            from repro.ql import Dice, RollUp, Slice, DrillDown
            if isinstance(operation, Slice):
                builder.slice(operation.target)
            elif isinstance(operation, RollUp):
                builder.rollup(operation.dimension, operation.level)
            elif isinstance(operation, DrillDown):
                builder.drilldown(operation.dimension, operation.level)
            elif isinstance(operation, Dice):
                builder.dice(operation.condition)
        demo.engine.execute(builder.build(), variant="direct")
        naive_queries += 1
    naive_seconds = time.perf_counter() - started

    rows = [
        f"fused (simplified)      1 query    {fused_seconds:7.2f}s",
        f"naive (per-operation)  {naive_queries:2d} queries  "
        f"{naive_seconds:7.2f}s",
        f"speedup                           "
        f"{naive_seconds / max(fused_seconds, 1e-9):6.1f}x",
    ]
    save_rows("E7_fused_vs_naive", f"execution with k={zigzags} redundant "
              "operations", rows)
    assert naive_seconds > fused_seconds
