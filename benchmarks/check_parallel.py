#!/usr/bin/env python
"""Gate the morsel-driven parallel executor's speedup and correctness.

Builds a paper-scale observation set (``REPRO_BENCH_OBS``, default
100k), compacts it into one columnar generation, and runs the same
aggregation workload — a two-pattern BGP with a grouped COUNT, the
E3-shaped scan the paper's OLAP translations lean on — through two
endpoints over the *same* dataset:

* **serial** — the ordinary single-process evaluator;
* **parallel** — ``parallel=4`` morsel execution: the first-step scan
  is split into morsels, workers join and COUNT at the id level over
  shared-memory column views, and the parent merges tiny per-group
  partials (see ``docs/parallel.md``).

Both are warmed up once (the parallel warm-up pays the one-time
per-epoch export and per-worker attach/build costs), then timed
best-of-``RUNS``.  The gate asserts:

* the parallel path completes at least ``REPRO_BENCH_PARALLEL_FACTOR``
  (default 2.0; target 3.0) times faster than serial;
* the parallel result is checksum-identical to the serial one;
* the query actually ran parallel (no silent decline);
* after ``close()`` the shared-memory registry is empty and no
  ``/dev/shm`` segment created by this process remains.

Usage::

    REPRO_BENCH_OBS=100000 PYTHONPATH=src python benchmarks/check_parallel.py
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import time

OBSERVATIONS = int(os.environ.get("REPRO_BENCH_OBS", "100000"))
WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))
FACTOR = float(os.environ.get("REPRO_BENCH_PARALLEL_FACTOR", "2.0"))
TARGET = 3.0
RUNS = int(os.environ.get("REPRO_BENCH_PARALLEL_RUNS", "3"))
GROUPS = 24

EX = "http://example.org/bench/parallel/"

QUERY = f"""
    SELECT ?g (COUNT(?o) AS ?n) WHERE {{
        ?o <{EX}value> ?v .
        ?o <{EX}group> ?g
    }} GROUP BY ?g
"""


def build_dataset():
    from repro.rdf.graph import Dataset
    from repro.rdf.terms import IRI, Literal

    dataset = Dataset()
    value, group = IRI(EX + "value"), IRI(EX + "group")
    groups = [IRI(EX + f"g{k}") for k in range(GROUPS)]
    rows = []
    for i in range(OBSERVATIONS):
        obs = IRI(EX + f"obs{i}")
        rows.append((obs, value, Literal(i % 997)))
        rows.append((obs, group, groups[i % GROUPS]))
    dataset.default.add_all(rows)
    dataset.default.compact()
    return dataset


def checksum(table) -> list:
    return sorted(repr(row) for row in table.rows)


def best_of(endpoint, runs: int = RUNS) -> float:
    elapsed = []
    for _ in range(runs):
        start = time.perf_counter()
        endpoint.select(QUERY)
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    sys.path.insert(0, "src")

    from repro.rdf.concurrency import SHM_SEGMENTS
    from repro.rdf.shm import SEGMENT_PREFIX
    from repro.sparql.endpoint import LocalEndpoint

    print(f"parallel gate: obs={OBSERVATIONS} workers={WORKERS} "
          f"runs=best-of-{RUNS} gate={FACTOR:.1f}x target={TARGET:.1f}x")

    dataset = build_dataset()
    serial = LocalEndpoint(dataset)
    parallel = LocalEndpoint(dataset, parallel=WORKERS,
                             parallel_threshold=1)

    serial_table = serial.select(QUERY)       # warm-up + reference
    parallel_table = parallel.select(QUERY)   # warm-up: export + attach

    executor = parallel.parallel_executor
    if executor.telemetry["queries"] == 0:
        print(f"FAIL: query declined parallel execution "
              f"({executor.last_decline})", file=sys.stderr)
        return 1
    print(f"fan-out: {executor.telemetry['morsels']} morsels across "
          f"{WORKERS} workers")

    if checksum(parallel_table) != checksum(serial_table):
        print("FAIL: parallel result diverged from serial", file=sys.stderr)
        return 1
    print(f"correctness: parallel == serial "
          f"({len(serial_table)} groups)")

    serial_best = best_of(serial)
    parallel_best = best_of(parallel)
    speedup = serial_best / max(parallel_best, 1e-9)
    print(f"serial   best: {serial_best * 1000:8.1f} ms")
    print(f"parallel best: {parallel_best * 1000:8.1f} ms")
    print(f"speedup: {speedup:.2f}x")

    parallel.close()
    serial.close()
    if not SHM_SEGMENTS.empty:
        print(f"FAIL: leaked shared-memory registrations: "
              f"{SHM_SEGMENTS.segment_names()}", file=sys.stderr)
        return 1
    if os.path.isdir("/dev/shm"):
        leaked = sorted(glob.glob(
            f"/dev/shm/{SEGMENT_PREFIX}{os.getpid()}_*"))
        if leaked:
            print(f"FAIL: leaked /dev/shm segments: {leaked}",
                  file=sys.stderr)
            return 1
    print("hygiene: zero leaked segments after close")

    if speedup < FACTOR:
        print(f"FAIL: expected at least {FACTOR:.1f}x", file=sys.stderr)
        return 1
    print(f"ok: >= {FACTOR:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
