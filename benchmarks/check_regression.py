#!/usr/bin/env python
"""Guard the experiment hot paths against performance regressions.

Runs the E3/E6 query workload (the same executions
``bench_e3_querying.py`` and ``bench_e6_demo_query.py`` time), the
E2 enrichment phases, the E5 exploration operations, the E4 discovery
refresh, the E10 validation suite (normalization + non-expensive IC
checks) and the E11 drill-across join at the scale given by
``REPRO_BENCH_OBS`` and compares wall-clock numbers against a
committed baseline JSON.  Exits non-zero when any metric regresses
more than the allowed factor (default +20%).

Usage::

    PYTHONPATH=src REPRO_BENCH_OBS=2000 python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --update   # re-baseline

The committed baseline (``benchmarks/baseline.json``) keys metrics by
observation count, so smoke runs at 2000 observations and full runs at
20000 use their own reference numbers.  Tiny timings (< 50 ms) are
ignored: at that scale the noise floor, not the engine, is measured.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

BASELINE_PATH = pathlib.Path(__file__).parent / "baseline.json"
OBSERVATIONS = int(os.environ.get("REPRO_BENCH_OBS", "2000"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))
ALLOWED_FACTOR = float(os.environ.get("REPRO_BENCH_TOLERANCE", "1.20"))
NOISE_FLOOR_SECONDS = 0.05


def best_of(workload, rounds: int = 3) -> float:
    """Best wall-clock of ``rounds`` runs — the noise-robust figure for
    metrics whose single-run variance exceeds the gate tolerance."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - started)
    return best


def measure() -> dict:
    """One fresh run of the guarded experiment workloads, in seconds."""
    from repro.demo import (
        MARY_PREFERENCES,
        MARY_QL,
        PAPER_DIMENSION_NAMES,
        prepare_enriched_demo,
    )
    from benchmarks.bench_e3_querying import PREDEFINED

    started = time.perf_counter()
    demo = prepare_enriched_demo(observations=OBSERVATIONS, seed=SEED)
    build_seconds = time.perf_counter() - started

    metrics = {"prepare_demo": round(build_seconds, 4)}
    for name in sorted(PREDEFINED):
        result = demo.engine.execute(PREDEFINED[name], variant="optimized")
        metrics[f"e3/{name}"] = round(result.report.execute_seconds, 4)
    result = demo.engine.execute(MARY_QL, variant="direct")
    metrics["e6/mary_direct"] = round(result.report.execute_seconds, 4)

    # E2 — enrichment phases, on a pristine (un-enriched) endpoint
    from repro.data import small_demo
    from repro.enrichment import EnrichmentSession

    data = small_demo(observations=OBSERVATIONS)
    session = EnrichmentSession(data.endpoint, data.dataset, data.dsd,
                                dimension_names=PAPER_DIMENSION_NAMES)
    started = time.perf_counter()
    session.redefine()
    metrics["e2/redefinition"] = round(time.perf_counter() - started, 4)

    # E4 — candidate discovery for the citizenship dimension (one
    # warm-up, then a forced refresh: the per-member SELECT workload)
    from repro.data.namespaces import PROPERTY as ESTAT_PROPERTY
    session.suggestions(ESTAT_PROPERTY.citizen)
    started = time.perf_counter()
    session.suggestions(ESTAT_PROPERTY.citizen, refresh=True)
    metrics["e4/discovery_refresh"] = round(
        time.perf_counter() - started, 4)

    started = time.perf_counter()
    session.auto_enrich(max_depth=3, prefer=list(MARY_PREFERENCES))
    metrics["e2/enrichment"] = round(time.perf_counter() - started, 4)
    started = time.perf_counter()
    session.generate()
    metrics["e2/generation"] = round(time.perf_counter() - started, 4)

    # E10 — validation: normalization plus the non-expensive IC suite
    # over a freshly generated cube (IC-12/17 stay delegated to the
    # native checks exactly as check_graph does)
    from repro.data.eurostat import GeneratorConfig, build_qb_graph
    from repro.qb.constraints import STATIC_CONSTRAINTS, check_constraint
    from repro.qb.normalize import normalize_graph

    cube = build_qb_graph(GeneratorConfig(observations=OBSERVATIONS,
                                          seed=SEED))
    # flush any pending gen-2 sweep of the (large, long-lived) demo
    # heap: this window is ~20ms single-shot, so a deterministic GC
    # pause landing inside it would read as a 2-3x phantom regression
    import gc
    gc.collect()
    started = time.perf_counter()
    normalize_graph(cube)
    metrics["e10/normalize"] = round(time.perf_counter() - started, 4)

    def ic_suite() -> None:
        for check in STATIC_CONSTRAINTS:
            if not check.expensive:
                check_constraint(cube, check)

    metrics["e10/ic_suite"] = round(best_of(ic_suite), 4)

    # E11 — drill-across: both cube queries plus the client-side join
    from repro.demo import (
        APPLICATIONS_BY_CONTINENT_YEAR_QL,
        DECISIONS_BY_CONTINENT_YEAR_QL,
        prepare_two_cube_demo,
    )
    from repro.ql.drillacross import drill_across

    two = prepare_two_cube_demo(observations=OBSERVATIONS,
                                decision_observations=OBSERVATIONS // 2,
                                small=True)

    def drill() -> None:
        left = two.applications.engine.execute(
            APPLICATIONS_BY_CONTINENT_YEAR_QL)
        right = two.decisions.engine.execute(
            DECISIONS_BY_CONTINENT_YEAR_QL)
        drill_across(left.cube, right.cube, suffixes=("_apps", "_dec"))

    metrics["e11/drill_across"] = round(best_of(drill), 4)

    # E5 — exploration operations over the enriched demo
    from repro.data.namespaces import PROPERTY, SCHEMA
    from repro.demo import CONTINENT_LEVEL
    from repro.exploration import CubeExplorer, InstanceBrowser

    explorer = CubeExplorer(demo.endpoint, demo.data.dataset)
    browser = InstanceBrowser(demo.endpoint, explorer.schema)
    started = time.perf_counter()
    browser.cluster_by_level(SCHEMA.citizenshipDim, CONTINENT_LEVEL)
    metrics["e5/cluster_by_continent"] = round(
        time.perf_counter() - started, 4)
    started = time.perf_counter()
    browser.rollup_edges(PROPERTY.citizen, CONTINENT_LEVEL)
    metrics["e5/rollup_edges"] = round(time.perf_counter() - started, 4)
    started = time.perf_counter()
    browser.members(PROPERTY.citizen)
    metrics["e5/member_listing"] = round(time.perf_counter() - started, 4)
    return metrics


#: The streaming-gate workload: the two algebra shapes the translated
#: E3/E6/E8 queries lean on — a DISTINCT dimension walk and an
#: OPTIONAL label lookup, both under LIMIT.
STREAM_QUERIES = {
    "distinct_limit": """
        SELECT DISTINCT ?c WHERE {
            ?obs <http://eurostat.linked-statistics.org/property#citizen> ?c
        } LIMIT 10
    """,
    "optional_limit": """
        SELECT ?obs ?label WHERE {
            ?obs <http://eurostat.linked-statistics.org/property#citizen> ?c
            OPTIONAL {
                ?c <http://www.w3.org/2000/01/rdf-schema#label> ?label
            }
        } LIMIT 50
    """,
}


def measure_stream() -> dict:
    """Streamed-row and probe counts for the streaming-gate queries.

    Counts, not timings, so the gate is deterministic: a fresh run
    failing the 2x factor means the streaming pipeline genuinely pulls
    more index entries / solutions than it used to (or stopped
    streaming entirely — ``streamed`` dropping to 0 trips the ratio on
    the probe metrics).  Each query's streamed results are also checked
    against materialized execution, so the gate doubles as an
    end-to-end correctness probe at benchmark scale.
    """
    import repro.sparql.evaluator as evaluator_module
    from repro.data import small_demo
    from repro.sparql.evaluator import PROBE_COUNTER, STREAM_TELEMETRY

    endpoint = small_demo(observations=OBSERVATIONS).endpoint
    metrics: dict = {}
    for name, query in STREAM_QUERIES.items():
        before = STREAM_TELEMETRY.snapshot()
        with PROBE_COUNTER as counter:
            streamed = endpoint.select(query)
        # PROBE_COUNTER is a singleton: save entries before reusing it
        streamed_probes = counter.entries
        after = STREAM_TELEMETRY.snapshot()
        evaluator_module.STREAMING_ENABLED = False
        try:
            with PROBE_COUNTER as counter:
                materialized = endpoint.select(query)
        finally:
            evaluator_module.STREAMING_ENABLED = True
        if streamed.rows != materialized.rows:
            raise AssertionError(
                f"streamed and materialized rows differ for {name}")
        metrics[f"stream/{name}/streamed"] = after["queries"] - \
            before["queries"]
        metrics[f"stream/{name}/probes"] = streamed_probes
        metrics[f"stream/{name}/rows_pulled"] = after["rows"] - \
            before["rows"]
        metrics[f"stream/{name}/full_probes"] = counter.entries
    return metrics


def run_stream_gate(args) -> int:
    """The ``make bench-stream`` gate: count metrics, 2x tolerance."""
    factor = float(os.environ.get("REPRO_BENCH_STREAM_TOLERANCE", "2.0"))
    fresh = measure_stream()
    scale_key = f"stream/{OBSERVATIONS}"

    stored = {}
    if args.baseline.exists():
        stored = json.loads(args.baseline.read_text())

    if args.update:
        stored[scale_key] = fresh
        args.baseline.write_text(json.dumps(stored, indent=2) + "\n")
        print(f"stream baseline updated for obs={OBSERVATIONS}: "
              f"{args.baseline}")
        return 0

    baseline = stored.get(scale_key)
    if baseline is None:
        print(f"no stream baseline for obs={OBSERVATIONS} in "
              f"{args.baseline}; run with --stream --update first",
              file=sys.stderr)
        return 2

    failures = []
    print(f"{'metric':40s} {'baseline':>10s} {'fresh':>10s} {'ratio':>7s}")
    for metric, reference in sorted(baseline.items()):
        current = fresh.get(metric)
        if current is None:
            # fail closed: a metric the fresh run no longer produces
            # means the gate would otherwise pass without checking it
            print(f"{metric:40s} {reference:10d} {'MISSING':>10s}")
            failures.append(metric)
            continue
        ratio = current / reference if reference else float("inf")
        flag = ""
        if current > reference * factor:
            flag = "  REGRESSION"
            failures.append(metric)
        elif metric.endswith("/streamed") and current < reference:
            flag = "  STOPPED STREAMING"
            failures.append(metric)
        print(f"{metric:40s} {reference:10d} {current:10d} "
              f"{ratio:6.2f}x{flag}")

    if failures:
        print(f"\n{len(failures)} streaming metric(s) regressed beyond "
              f"{factor:.1f}x: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"\nno streaming regression beyond {factor:.1f}x tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=BASELINE_PATH)
    parser.add_argument("--update", action="store_true",
                        help="write the fresh numbers as the new baseline")
    parser.add_argument("--stream", action="store_true",
                        help="run the streaming gate (probe / streamed-row "
                             "counts) instead of the timing workload")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))
    if args.stream:
        return run_stream_gate(args)
    fresh = measure()
    scale_key = str(OBSERVATIONS)

    stored = {}
    if args.baseline.exists():
        stored = json.loads(args.baseline.read_text())

    if args.update:
        stored[scale_key] = fresh
        args.baseline.write_text(json.dumps(stored, indent=2) + "\n")
        print(f"baseline updated for obs={OBSERVATIONS}: "
              f"{args.baseline}")
        return 0

    baseline = stored.get(scale_key)
    if baseline is None:
        print(f"no baseline for obs={OBSERVATIONS} in {args.baseline}; "
              f"run with --update first", file=sys.stderr)
        return 2

    failures = []
    print(f"{'metric':24s} {'baseline':>10s} {'fresh':>10s} {'ratio':>7s}")
    for metric, reference in sorted(baseline.items()):
        current = fresh.get(metric)
        if current is None:
            continue
        ratio = current / reference if reference else float("inf")
        flag = ""
        if (current > reference * ALLOWED_FACTOR
                and max(current, reference) >= NOISE_FLOOR_SECONDS):
            flag = "  REGRESSION"
            failures.append(metric)
        print(f"{metric:24s} {reference:9.3f}s {current:9.3f}s "
              f"{ratio:6.2f}x{flag}")

    if failures:
        print(f"\n{len(failures)} metric(s) regressed more than "
              f"{(ALLOWED_FACTOR - 1) * 100:.0f}%: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("\nno regression beyond "
          f"{(ALLOWED_FACTOR - 1) * 100:.0f}% tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
