"""E11 — extension: drill-across over the two-cube collection.

The Exploration module's premise is a *collection* of cubes in one
endpoint (§III-B); QL's basis (Ciferri et al.'s Cube Algebra) includes
DRILL-ACROSS.  This bench regenerates the acceptance-rate scenario:
applications ⋈ decisions at continent × year.

Shapes to reproduce:

* the client-side join is negligible next to the two SPARQL
  executions (it runs over ~12 aggregated cells, not 10⁴ observations);
* the joined cube is exactly as wide as the two inputs combined and
  no larger than the smaller input (inner join);
* each input cube's measures survive the join unchanged.
"""

import time

import pytest

from repro.demo import (
    APPLICATIONS_BY_CONTINENT_YEAR_QL,
    DECISIONS_BY_CONTINENT_YEAR_QL,
    prepare_two_cube_demo,
)
from repro.ql.drillacross import drill_across

OBSERVATIONS = 6_000
DECISION_OBSERVATIONS = 4_000


@pytest.fixture(scope="module")
def two_cubes():
    return prepare_two_cube_demo(
        observations=OBSERVATIONS,
        decision_observations=DECISION_OBSERVATIONS, small=True)


def test_e11_drill_across_cost_breakdown(two_cubes, benchmark, save_rows):
    demo = two_cubes

    def run():
        started = time.perf_counter()
        left = demo.applications.engine.execute(
            APPLICATIONS_BY_CONTINENT_YEAR_QL)
        left_seconds = time.perf_counter() - started
        started = time.perf_counter()
        right = demo.decisions.engine.execute(
            DECISIONS_BY_CONTINENT_YEAR_QL)
        right_seconds = time.perf_counter() - started
        started = time.perf_counter()
        joined = drill_across(left.cube, right.cube,
                              suffixes=("_apps", "_dec"))
        join_seconds = time.perf_counter() - started
        return (left, right, joined,
                left_seconds, right_seconds, join_seconds)

    (left, right, joined, left_seconds, right_seconds,
     join_seconds) = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        f"left QL (applications):  {left.report.rows:4d} cells  "
        f"{left_seconds:7.3f}s",
        f"right QL (decisions):    {right.report.rows:4d} cells  "
        f"{right_seconds:7.3f}s",
        f"drill-across join:       {len(joined):4d} cells  "
        f"{join_seconds:7.3f}s "
        f"({join_seconds / (left_seconds + right_seconds):8.2%} of query "
        "time)",
    ]
    save_rows("E11_drillacross",
              f"applications({OBSERVATIONS}) ⋈ "
              f"decisions({DECISION_OBSERVATIONS}) at continent×year", rows)

    # shapes: join is cheap; inner-join size bounded by smaller input
    assert join_seconds < (left_seconds + right_seconds) / 10
    assert len(joined) <= min(len(left.cube), len(right.cube))
    assert len(joined.measures) == 2


def test_e11_join_preserves_measures(two_cubes, benchmark, save_rows):
    demo = two_cubes
    left = demo.applications.engine.execute(
        APPLICATIONS_BY_CONTINENT_YEAR_QL)
    right = demo.decisions.engine.execute(DECISIONS_BY_CONTINENT_YEAR_QL)
    joined = benchmark.pedantic(
        lambda: drill_across(left.cube, right.cube,
                             suffixes=("_apps", "_dec")),
        rounds=1, iterations=1)

    apps_measure, dec_measure = list(joined.measures)
    checked = 0
    for coordinate in joined.coordinates():
        left_value = left.cube.value(
            next(iter(left.cube.measures)), *coordinate)
        joined_value = joined.value(apps_measure, *coordinate)
        assert joined_value == left_value
        right_value = right.cube.value(
            next(iter(right.cube.measures)), *coordinate)
        assert joined.value(dec_measure, *coordinate) == right_value
        checked += 1
    save_rows("E11_correctness",
              "joined cells verified against both input cubes",
              [f"verified {checked} cells: all measures preserved"])
    assert checked == len(joined)
