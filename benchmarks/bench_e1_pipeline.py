"""E1 — Fig. 1 (architecture): the full QB2OLAP pipeline, end to end.

Regenerates the architecture walk: load QB data into the endpoint →
Enrichment module (3 phases) → Exploration → Querying, reporting
per-module wall time.  The paper's figure is qualitative; the shape to
reproduce is *which stages dominate* (observation loading and query
execution scale with the data; enrichment scales with members only).
"""

import time

import pytest

from repro.data import small_demo
from repro.data.namespaces import SCHEMA
from repro.demo import MARY_QL, enrich
from repro.exploration import CubeExplorer, InstanceBrowser, list_cubes


def run_pipeline(observations: int):
    timings = {}
    started = time.perf_counter()
    data = small_demo(observations=observations)
    timings["load QB data"] = time.perf_counter() - started

    started = time.perf_counter()
    enriched = enrich(data)
    timings["enrichment (3 phases)"] = time.perf_counter() - started

    started = time.perf_counter()
    cubes = list_cubes(enriched.endpoint)
    explorer = CubeExplorer(enriched.endpoint, data.dataset)
    browser = InstanceBrowser(enriched.endpoint, explorer.schema)
    clusters = browser.cluster_by_level(SCHEMA.citizenshipDim,
                                        SCHEMA.continent)
    timings["exploration"] = time.perf_counter() - started

    started = time.perf_counter()
    result = enriched.engine.execute(MARY_QL)
    timings["QL query (Mary)"] = time.perf_counter() - started

    assert len(cubes) == 1
    assert clusters
    return timings, result


def test_e1_full_pipeline(benchmark, save_rows):
    observations = 5_000  # per-round pipeline rebuild must stay snappy

    def pipeline():
        return run_pipeline(observations)

    timings, result = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    total = sum(timings.values())
    rows = [
        f"{stage:24s} {seconds:8.3f}s  ({seconds / total:5.1%})"
        for stage, seconds in timings.items()
    ]
    rows.append(f"{'TOTAL':24s} {total:8.3f}s")
    rows.append(f"result rows: {result.report.rows}")
    save_rows("E1_pipeline", f"stage (obs={observations})          "
              "seconds   share", rows)
    benchmark.extra_info.update(
        {stage: round(seconds, 3) for stage, seconds in timings.items()})
