#!/usr/bin/env python
"""Gate the columnar OLAP fact pipeline: ETL speedup, parallel
aggregate speedup, cross-engine checksums, and shm hygiene.

Builds a paper-scale QB4OLAP cube (``REPRO_BENCH_OBS`` observations,
default 100k; two-level geography dimension, one SUM measure) and
checks the three legs of the pipeline:

* **vectorized ETL** — ``extract_star_schema`` must build the fact
  table at least ``REPRO_BENCH_OLAP_ETL_FACTOR`` (default 5.0) times
  faster than the member-at-a-time reference extractor, with
  byte-identical coordinates and measures;
* **parallel aggregation** — the morsel-parallel SPARQL executor's
  SUM/AVG partial pushdown must answer the star-shaped grouped
  aggregate at least ``REPRO_BENCH_OLAP_PARALLEL_FACTOR`` (default
  2.0) times faster than the serial evaluator, checksum-equal, and
  must actually engage the pushdown (no silent full-row fallback);
* **shared fact snapshot** — ``ParallelStarAggregator`` (workers map
  the pinned ``FactColumns`` export zero-copy) must produce cells
  identical to the serial ``NativeOLAPEngine``, and after ``close()``
  the registry must be empty with no ``/dev/shm`` residue.

Usage::

    REPRO_BENCH_OBS=100000 PYTHONPATH=src python benchmarks/check_olap.py
"""

from __future__ import annotations

import argparse
import glob
import math
import os
import sys
import time

OBSERVATIONS = int(os.environ.get("REPRO_BENCH_OBS", "100000"))
WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))
ETL_FACTOR = float(os.environ.get("REPRO_BENCH_OLAP_ETL_FACTOR", "5.0"))
PAR_FACTOR = float(os.environ.get("REPRO_BENCH_OLAP_PARALLEL_FACTOR", "2.0"))
RUNS = int(os.environ.get("REPRO_BENCH_PARALLEL_RUNS", "3"))
CITIES = 240
REGIONS = 24

EX = "http://example.org/bench/olap/"

QUERY = f"""
    SELECT ?c (SUM(?v) AS ?total) (AVG(?v) AS ?mean) WHERE {{
        ?o <{EX}city> ?c .
        ?o <{EX}amount> ?v
    }} GROUP BY ?c
"""


def build_cube():
    from repro.qb import vocabulary as qb
    from repro.qb4olap import vocabulary as qb4o
    from repro.qb4olap.model import (
        CubeSchema, Dimension, Hierarchy, HierarchyStep, Measure)
    from repro.rdf.namespace import SKOS
    from repro.rdf.terms import IRI, Literal
    from repro.sparql.endpoint import LocalEndpoint

    ns = lambda name: IRI(EX + name)  # noqa: E731 - local shorthand
    schema = CubeSchema(dsd=ns("dsd"), dataset=ns("ds"))
    hierarchy = Hierarchy(ns("geoHier"), ns("geoDim"),
                          levels=[ns("city"), ns("region")],
                          steps=[HierarchyStep(ns("city"), ns("region"))])
    schema.dimensions.append(Dimension(ns("geoDim"), [hierarchy]))
    schema.dimension_levels[ns("geoDim")] = ns("city")
    schema.measures.append(Measure(ns("amount"), qb4o.SUM))

    endpoint = LocalEndpoint()
    graph = endpoint.dataset.default
    rows = []
    cities = [ns(f"city{k}") for k in range(CITIES)]
    regions = [ns(f"region{k}") for k in range(REGIONS)]
    for k, city in enumerate(cities):
        rows.append((city, qb4o.memberOf, ns("city")))
        rows.append((city, SKOS.broader, regions[k % REGIONS]))
    for region in regions:
        rows.append((region, qb4o.memberOf, ns("region")))
    for i in range(OBSERVATIONS):
        obs = ns(f"obs{i}")
        rows.append((obs, qb.dataSet, ns("ds")))
        rows.append((obs, IRI(EX + "city"), cities[i % CITIES]))
        rows.append((obs, IRI(EX + "amount"), Literal(i % 997)))
    graph.add_all(rows)
    graph.compact()
    return endpoint, schema


def checksum(table) -> list:
    return sorted(repr(row) for row in table.rows)


def best_of(endpoint, runs: int = RUNS) -> float:
    elapsed = []
    for _ in range(runs):
        start = time.perf_counter()
        endpoint.select(QUERY)
        elapsed.append(time.perf_counter() - start)
    return min(elapsed)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    sys.path.insert(0, "src")

    import numpy as np

    from repro.rdf.concurrency import SHM_SEGMENTS
    from repro.rdf.shm import SEGMENT_PREFIX
    from repro.sparql.endpoint import LocalEndpoint
    from repro.ql import QLBuilder, simplify
    from repro.olap import NativeOLAPEngine, extract_star_schema
    from repro.olap.parallel import ParallelStarAggregator

    print(f"olap gate: obs={OBSERVATIONS} workers={WORKERS} "
          f"etl-gate={ETL_FACTOR:.1f}x parallel-gate={PAR_FACTOR:.1f}x")
    endpoint, schema = build_cube()

    # -- leg 1: vectorized ETL -------------------------------------------------
    star, fast_report = extract_star_schema(endpoint, schema)
    _, refast = extract_star_schema(endpoint, schema)  # warm best-of-2
    slow, slow_report = extract_star_schema(endpoint, schema,
                                            vectorized=False)
    fast_seconds = min(fast_report.seconds, refast.seconds)
    for iri, codes in star.facts.coordinates.items():
        if not np.array_equal(codes, slow.facts.coordinates[iri]):
            print("FAIL: vectorized coordinates diverge", file=sys.stderr)
            return 1
    for iri, values in star.facts.measures.items():
        if not np.array_equal(values, slow.facts.measures[iri],
                              equal_nan=True):
            print("FAIL: vectorized measures diverge", file=sys.stderr)
            return 1
    etl_speedup = slow_report.seconds / max(fast_seconds, 1e-9)
    print(f"etl reference: {slow_report.seconds * 1000:8.1f} ms "
          f"({slow_report.facts} facts)")
    print(f"etl vectorized: {fast_seconds * 1000:7.1f} ms")
    print(f"etl speedup: {etl_speedup:.2f}x (identical fact tables)")

    # -- leg 2: parallel SPARQL aggregation -----------------------------------
    serial = LocalEndpoint(endpoint.dataset)
    parallel = LocalEndpoint(endpoint.dataset, parallel=WORKERS,
                             parallel_threshold=1)
    serial_table = serial.select(QUERY)       # warm-up + reference
    parallel_table = parallel.select(QUERY)   # warm-up: export + attach
    executor = parallel.parallel_executor
    if executor.telemetry["queries"] == 0:
        print(f"FAIL: query declined parallel execution "
              f"({executor.last_decline})", file=sys.stderr)
        return 1
    if executor.telemetry["agg_pushdown"] == 0:
        print("FAIL: aggregate pushdown did not engage", file=sys.stderr)
        return 1
    if checksum(parallel_table) != checksum(serial_table):
        print("FAIL: parallel result diverged from serial", file=sys.stderr)
        return 1
    print(f"correctness: parallel == serial ({len(serial_table)} groups, "
          f"SUM+AVG partials pushed down)")
    serial_best = best_of(serial)
    parallel_best = best_of(parallel)
    speedup = serial_best / max(parallel_best, 1e-9)
    print(f"serial   best: {serial_best * 1000:8.1f} ms")
    print(f"parallel best: {parallel_best * 1000:8.1f} ms")
    print(f"aggregate speedup: {speedup:.2f}x")

    # -- leg 3: shared fact snapshot ------------------------------------------
    from repro.rdf.terms import IRI

    program = (QLBuilder(schema.dataset)
               .rollup(IRI(EX + "geoDim"), IRI(EX + "region"))
               .build())
    simplified = simplify(program, schema)
    native = NativeOLAPEngine(star).evaluate(simplified)
    aggregator = ParallelStarAggregator(star, workers=WORKERS)
    shared = aggregator.evaluate(simplified)
    aggregator.close()
    if set(native.cells) != set(shared.cells) or any(
            set(native.cells[key]) != set(shared.cells[key])
            or any(not math.isclose(value, shared.cells[key][measure],
                                    rel_tol=1e-9, abs_tol=1e-9)
                   for measure, value in native.cells[key].items())
            for key in native.cells):
        print("FAIL: shared-snapshot cells diverged from serial engine",
              file=sys.stderr)
        return 1
    print(f"fact snapshot: {len(shared.cells)} cells identical via "
          f"{star.fact_columns().nbytes} shared bytes")

    parallel.close()
    serial.close()
    endpoint.close()
    if not SHM_SEGMENTS.empty:
        print(f"FAIL: leaked shared-memory registrations: "
              f"{SHM_SEGMENTS.segment_names()}", file=sys.stderr)
        return 1
    if os.path.isdir("/dev/shm"):
        leaked = sorted(glob.glob(
            f"/dev/shm/{SEGMENT_PREFIX}{os.getpid()}_*"))
        if leaked:
            print(f"FAIL: leaked /dev/shm segments: {leaked}",
                  file=sys.stderr)
            return 1
    print("hygiene: zero leaked segments after close")

    if etl_speedup < ETL_FACTOR:
        print(f"FAIL: expected ETL at least {ETL_FACTOR:.1f}x",
              file=sys.stderr)
        return 1
    if speedup < PAR_FACTOR:
        print(f"FAIL: expected parallel aggregate at least "
              f"{PAR_FACTOR:.1f}x", file=sys.stderr)
        return 1
    print(f"ok: etl >= {ETL_FACTOR:.1f}x, parallel >= {PAR_FACTOR:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
