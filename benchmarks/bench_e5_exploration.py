"""E5 — Fig. 5 (Exploration example): instance browsing operations.

Regenerates the exploration interactions: clustering dimension
instances by level value (the figure's node/edge view), roll-up edge
retrieval, member listing and cube statistics.  Shape to reproduce:
all exploration operations touch *dimension* data only, so they stay
interactive (≪ 1 s) regardless of the observation count — that is what
makes the GUI viable on big cubes.
"""

import pytest

from repro.data.namespaces import PROPERTY, SCHEMA
from repro.demo import CONTINENT_LEVEL, YEAR_LEVEL
from repro.exploration import CubeExplorer, CubeStatistics, InstanceBrowser


@pytest.fixture(scope="module")
def explorer(demo):
    return CubeExplorer(demo.endpoint, demo.data.dataset)


@pytest.fixture(scope="module")
def browser(demo, explorer):
    return InstanceBrowser(demo.endpoint, explorer.schema)


def test_e5_cluster_by_continent(demo, browser, benchmark, save_rows):
    clusters = benchmark(
        browser.cluster_by_level, SCHEMA.citizenshipDim, CONTINENT_LEVEL)
    rows = [
        f"{browser.member_label(ancestor):20s} {len(members):3d} countries"
        for ancestor, members in sorted(
            clusters.items(), key=lambda kv: -len(kv[1]))
    ]
    save_rows("E5_clusters", "citizenship clustered by continent", rows)
    assert sum(len(m) for m in clusters.values()) == \
        browser.member_count(PROPERTY.citizen)


def test_e5_rollup_edges(browser, benchmark):
    edges = benchmark(browser.rollup_edges, PROPERTY.citizen,
                      CONTINENT_LEVEL)
    assert len(edges) == browser.member_count(PROPERTY.citizen)


def test_e5_member_listing(browser, benchmark):
    members = benchmark(browser.members, PROPERTY.citizen)
    assert len(members) > 10


def test_e5_schema_navigation(demo, benchmark):
    def navigate():
        explorer = CubeExplorer(demo.endpoint, demo.data.dataset)
        targets = explorer.rollup_targets(SCHEMA.timeDim)
        return explorer, targets

    explorer, targets = benchmark(navigate)
    assert YEAR_LEVEL in targets


def test_e5_statistics(demo, explorer, benchmark, save_rows):
    stats = CubeStatistics(demo.endpoint, explorer.schema)

    def summarize():
        return stats.members_per_level()

    counts = benchmark.pedantic(summarize, rounds=1, iterations=1)
    rows = [f"{level.local_name():16s} {count:6d} members"
            for level, count in counts.items()]
    save_rows("E5_members_per_level", "level            members", rows)
    assert counts[YEAR_LEVEL] == 2
