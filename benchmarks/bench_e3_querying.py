"""E3 — Fig. 3 (Querying workflow): per-phase costs of QL processing.

Regenerates the workflow stages for Mary's query plus a set of
predefined queries (the demo ships predefined queries the audience can
modify).  Shape to reproduce: parsing/simplification/translation are
sub-millisecond — *SPARQL execution dominates*, which is exactly why
the module optimizes the generated query rather than its own pipeline.
"""

import pytest

from repro.data.namespaces import SCHEMA
from repro.demo import MARY_QL, POLITICAL_QL

#: the predefined query library of the demo
PREDEFINED = {
    "mary": MARY_QL,
    "political": POLITICAL_QL,
    "continent_by_year": """
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := SLICE ($C3, schema:destinationDim);
$C5 := ROLLUP ($C4, schema:citizenshipDim, schema:continent);
$C6 := ROLLUP ($C5, schema:timeDim, schema:year);
""",
    "quarterly_by_sex": """
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:citizenshipDim);
$C4 := SLICE ($C3, schema:destinationDim);
$C5 := ROLLUP ($C4, schema:timeDim, schema:quarter);
""",
    "busy_destinations": """
PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>;
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asylappDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := SLICE ($C3, schema:citizenshipDim);
$C5 := SLICE ($C4, schema:timeDim);
$C6 := DICE ($C5, sdmx-measure:obsValue > 500);
""",
}


def test_e3_phase_breakdown(demo, benchmark, save_rows):
    def run():
        return demo.engine.execute(MARY_QL, variant="direct")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = result.report
    rows = [
        f"{'parse QL':22s} {report.parse_seconds * 1000:9.2f} ms",
        f"{'simplify':22s} {report.simplify_seconds * 1000:9.2f} ms",
        f"{'translate to SPARQL':22s} "
        f"{report.translate_seconds * 1000:9.2f} ms",
        f"{'execute on endpoint':22s} "
        f"{report.execute_seconds * 1000:9.2f} ms",
        f"{'rows':22s} {report.rows:9d}",
    ]
    save_rows("E3_phase_breakdown", "Querying-module phase       time", rows)
    # shape: execution dominates the pipeline
    front = (report.parse_seconds + report.simplify_seconds
             + report.translate_seconds)
    assert report.execute_seconds > 10 * front


@pytest.mark.parametrize("name", sorted(PREDEFINED))
def test_e3_predefined_queries(demo, benchmark, name, save_rows):
    text = PREDEFINED[name]

    def run():
        return demo.engine.execute(text, variant="optimized")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_rows(f"E3_query_{name}",
              "query                 rows   sparql-lines   exec",
              [f"{name:20s} {result.report.rows:6d} "
               f"{result.report.sparql_lines:12d} "
               f"{result.report.execute_seconds:8.3f}s"])
    assert result.report.rows >= 0
