#!/usr/bin/env python
"""Gate the columnar storage tier: scan speedup, join throughput,
compaction latency, and the 1M-observation load.

Three checks, all over synthetic observation-shaped data (one
``qb:Observation``-like subject with a measure literal and a group
IRI, the shape every E1–E11 workload scans):

1. **Scan speedup** — triple-pattern scan throughput of the compacted
   columnar backend must be at least ``REPRO_BENCH_JOIN_FACTOR``
   (default 5x) that of the legacy dict-of-dict-of-set backend at
   ``REPRO_BENCH_JOIN_OBS`` (default 100 000) observations, across the
   bound-predicate, bound-subject, bound-object and fully-bound
   pattern shapes.
2. **Compaction latency** — folding a 25%-of-base delta overlay into a
   fresh column generation must finish within
   ``REPRO_BENCH_COMPACT_CEILING`` seconds (default 5).
3. **1M gate** — a 1 000 000-observation bulk load plus an E3-shaped
   grouped aggregation over the resulting two-million-triple graph
   must complete within the governor's default deadline
   (``REPRO_BENCH_JOIN_DEADLINE``, default 60 s; the query runs under
   a :class:`~repro.sparql.governor.QueryGovernor` carrying that
   deadline, so an overrun surfaces as ``QueryTimeout``, not just a
   slow gate).  Skipped when ``REPRO_BENCH_JOIN_FULL=0``.

Merge-join throughput and compaction latency are recorded alongside
``baseline.json`` in ``benchmarks/join_baseline.json`` (``--update``
refreshes it); the recorded numbers are informational history — the
pass/fail gates above are ratio- and ceiling-based, so a fresh
checkout gates identically with or without the baseline file.

Usage::

    PYTHONPATH=src python benchmarks/check_join.py
    PYTHONPATH=src python benchmarks/check_join.py --update
    PYTHONPATH=src REPRO_BENCH_JOIN_FULL=0 python benchmarks/check_join.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

BASELINE_PATH = pathlib.Path(__file__).parent / "join_baseline.json"
OBSERVATIONS = int(os.environ.get("REPRO_BENCH_JOIN_OBS", "100000"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))
SPEEDUP_FACTOR = float(os.environ.get("REPRO_BENCH_JOIN_FACTOR", "5"))
COMPACT_CEILING = float(os.environ.get("REPRO_BENCH_COMPACT_CEILING", "5"))
DEADLINE_SECONDS = float(os.environ.get("REPRO_BENCH_JOIN_DEADLINE", "60"))
FULL_GATE = os.environ.get("REPRO_BENCH_JOIN_FULL", "1") != "0"

GROUPS = 50
VALUES = 1000

E3_QUERY = """
    SELECT ?g (SUM(?v) AS ?total) WHERE {
        ?o <http://example.org/value> ?v .
        ?o <http://example.org/inGroup> ?g
    } GROUP BY ?g
"""


def observation_ids(graph, observations: int):
    """Dictionary-encode the synthetic observation workload: parallel
    ``(s, p, o)`` id arrays, two triples per observation."""
    from repro.rdf.terms import IRI, Literal

    encode = graph.dictionary.encode
    obs = np.array([encode(IRI(f"http://example.org/obs{i}"))
                    for i in range(observations)], dtype=np.int64)
    p_value = encode(IRI("http://example.org/value"))
    p_group = encode(IRI("http://example.org/inGroup"))
    groups = np.array([encode(IRI(f"http://example.org/g{k}"))
                       for k in range(GROUPS)], dtype=np.int64)
    values = np.array([encode(Literal(v)) for v in range(VALUES)],
                      dtype=np.int64)
    rng = np.random.default_rng(SEED)
    s = np.concatenate([obs, obs])
    p = np.concatenate([np.full(observations, p_value),
                        np.full(observations, p_group)])
    o = np.concatenate([values[rng.integers(0, VALUES, observations)],
                        groups[rng.integers(0, GROUPS, observations)]])
    return s, p, o, p_value, p_group


def dict_backend(observations: int):
    """A graph on the legacy dict tier only (compaction disabled)."""
    from repro.rdf import graph as graph_module
    from repro.rdf.graph import Graph

    graph = Graph()
    s, p, o, p_value, p_group = observation_ids(graph, observations)
    never = 1 << 60
    saved = (graph_module.COMPACT_WRITE_THRESHOLD,
             graph_module.COMPACT_PUBLISH_THRESHOLD)
    graph_module.COMPACT_WRITE_THRESHOLD = never
    graph_module.COMPACT_PUBLISH_THRESHOLD = never
    try:
        decode = graph.dictionary.decode
        graph.add_all((decode(si), decode(pi), decode(oi))
                      for si, pi, oi in zip(s.tolist(), p.tolist(),
                                            o.tolist()))
    finally:
        (graph_module.COMPACT_WRITE_THRESHOLD,
         graph_module.COMPACT_PUBLISH_THRESHOLD) = saved
    assert graph._columns is None, "dict backend unexpectedly compacted"
    return graph, p_value, p_group


def columnar_backend(observations: int):
    """The same content bulk-loaded into the columnar tier."""
    from repro.rdf.graph import Dataset

    dataset = Dataset()
    graph = dataset.default
    s, p, o, p_value, p_group = observation_ids(graph, observations)
    started = time.perf_counter()
    graph.bulk_load_ids(s, p, o)
    load_seconds = time.perf_counter() - started
    return dataset, graph, p_value, p_group, load_seconds


def scan_patterns(graph, p_value, p_group):
    """The gated triple-pattern shapes, as id patterns."""
    some_subject, _, some_object = next(
        iter(graph.triples_ids((None, p_group, None))))
    return {
        "bound_predicate": (None, p_value, None),
        "bound_subject": (some_subject, None, None),
        "bound_object": (None, None, some_object),
        "bound_pair": (None, p_group, some_object),
    }


def scan_throughput(graph, patterns, rounds: int = 3):
    """Best-of-``rounds`` scanned triples/second across ``patterns``,
    where every matched entry is both produced and consumed.

    Consumption is a full pass over all three positions of every match
    (an id checksum), computed the way each backend's evaluator path
    does: the columnar backend serves a binary-search range as
    positional columns and reduces them in bulk — the same
    whole-column form the vectorized scan/hash-build/mask steps
    operate on — while the dict backend can only walk per-triple
    tuples.  That asymmetry *is* the tentpole.  The checksum is
    returned alongside the rate so the caller can assert both backends
    scanned the identical match set.
    """
    best = 0.0
    checksum = 0
    for _ in range(rounds):
        scanned = 0
        checksum = 0
        started = time.perf_counter()
        for pattern in patterns.values():
            arrays = graph.match_arrays(pattern)
            if arrays is not None:
                scanned += len(arrays[0])
                checksum += sum(int(column.sum()) for column in arrays)
            else:
                for si, pi, oi in graph.triples_ids(pattern):
                    scanned += 1
                    checksum += si + pi + oi
        elapsed = time.perf_counter() - started
        best = max(best, scanned / elapsed)
    return best, checksum


def join_throughput(dataset, observations: int) -> float:
    """Output rows/second of the E3-shaped grouped aggregation (scan +
    merge-grouped hash join + aggregate) on a snapshot-isolated
    endpoint."""
    from repro.sparql.endpoint import LocalEndpoint

    endpoint = LocalEndpoint(dataset)
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        table = endpoint.select(E3_QUERY)
        best = min(best, time.perf_counter() - started)
        assert len(table) == GROUPS
    return observations / best


def compaction_latency(graph) -> float:
    """Seconds to fold a 25%-of-base delta overlay (worst realistic
    publish-boundary fold: reSort of base + delta)."""
    from repro.rdf import graph as graph_module
    from repro.rdf.terms import IRI, Literal

    never = 1 << 60
    saved = (graph_module.COMPACT_WRITE_THRESHOLD,
             graph_module.COMPACT_PUBLISH_THRESHOLD)
    graph_module.COMPACT_WRITE_THRESHOLD = never
    graph_module.COMPACT_PUBLISH_THRESHOLD = never
    try:
        extra = max(1, len(graph) // 8)
        for i in range(extra):
            graph.add(IRI(f"http://example.org/late{i}"),
                      IRI("http://example.org/value"),
                      Literal(i % VALUES))
    finally:
        (graph_module.COMPACT_WRITE_THRESHOLD,
         graph_module.COMPACT_PUBLISH_THRESHOLD) = saved
    assert graph._delta_size == extra
    started = time.perf_counter()
    graph.compact()
    elapsed = time.perf_counter() - started
    assert graph._delta_size == 0
    return elapsed


def run_full_gate() -> dict:
    """The 1M-observation load + E3 query, under a governed deadline."""
    from repro.sparql.endpoint import LocalEndpoint
    from repro.sparql.governor import QueryGovernor, QueryLimits

    started = time.perf_counter()
    dataset, graph, _, _, load_seconds = columnar_backend(1_000_000)
    build_seconds = time.perf_counter() - started
    governor = QueryGovernor(
        defaults=QueryLimits(deadline_seconds=DEADLINE_SECONDS))
    endpoint = LocalEndpoint(dataset, governor=governor)
    started = time.perf_counter()
    table = endpoint.select(E3_QUERY)  # raises QueryTimeout on overrun
    query_seconds = time.perf_counter() - started
    assert len(table) == GROUPS
    return {
        "load_1m/triples": len(graph),
        "load_1m/build_seconds": round(build_seconds, 3),
        "load_1m/bulk_load_seconds": round(load_seconds, 3),
        "e3_1m/query_seconds": round(query_seconds, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=BASELINE_PATH)
    parser.add_argument("--update", action="store_true",
                        help="record the fresh numbers in the baseline")
    args = parser.parse_args(argv)
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))

    failures = []
    metrics: dict = {"observations": OBSERVATIONS}

    print(f"building dict backend at {OBSERVATIONS} observations ...")
    dict_graph, p_value, p_group = dict_backend(OBSERVATIONS)
    print(f"building columnar backend at {OBSERVATIONS} observations ...")
    dataset, col_graph, _, _, load_seconds = columnar_backend(OBSERVATIONS)
    metrics["load/bulk_load_seconds"] = round(load_seconds, 3)

    patterns = scan_patterns(col_graph, p_value, p_group)
    dict_tps, dict_sum = scan_throughput(dict_graph, patterns)
    col_tps, col_sum = scan_throughput(col_graph, patterns)
    assert dict_sum == col_sum, "backends scanned different match sets"
    speedup = col_tps / dict_tps
    metrics["scan/dict_triples_per_s"] = round(dict_tps)
    metrics["scan/columnar_triples_per_s"] = round(col_tps)
    metrics["scan/speedup"] = round(speedup, 2)
    flag = ""
    if speedup < SPEEDUP_FACTOR:
        flag = "  BELOW GATE"
        failures.append(
            f"scan speedup {speedup:.2f}x < {SPEEDUP_FACTOR:.1f}x")
    print(f"scan throughput: dict {dict_tps:,.0f}/s, "
          f"columnar {col_tps:,.0f}/s -> {speedup:.2f}x{flag}")

    rows_per_s = join_throughput(dataset, OBSERVATIONS)
    metrics["join/rows_per_s"] = round(rows_per_s)
    print(f"merge-join throughput (E3 aggregation): {rows_per_s:,.0f} "
          f"obs/s")

    fold_seconds = compaction_latency(col_graph)
    metrics["compaction/seconds"] = round(fold_seconds, 4)
    flag = ""
    if fold_seconds > COMPACT_CEILING:
        flag = "  ABOVE CEILING"
        failures.append(
            f"compaction {fold_seconds:.2f}s > {COMPACT_CEILING:.1f}s")
    print(f"compaction latency (25% delta fold): {fold_seconds:.3f}s"
          f"{flag}")

    if FULL_GATE:
        print(f"running 1M-observation gate "
              f"(deadline {DEADLINE_SECONDS:.0f}s) ...")
        full = run_full_gate()
        metrics.update(full)
        total = full["load_1m/build_seconds"] + full["e3_1m/query_seconds"]
        flag = ""
        if total > DEADLINE_SECONDS:
            flag = "  OVER DEADLINE"
            failures.append(
                f"1M load+query {total:.1f}s > {DEADLINE_SECONDS:.0f}s")
        print(f"1M gate: load {full['load_1m/build_seconds']:.1f}s + "
              f"E3 query {full['e3_1m/query_seconds']:.1f}s = "
              f"{total:.1f}s{flag}")
    else:
        print("1M gate skipped (REPRO_BENCH_JOIN_FULL=0)")

    if args.update or not args.baseline.exists():
        stored = {}
        if args.baseline.exists():
            stored = json.loads(args.baseline.read_text())
        stored[str(OBSERVATIONS)] = metrics
        args.baseline.write_text(json.dumps(stored, indent=2) + "\n")
        print(f"join baseline recorded: {args.baseline}")
    else:
        stored = json.loads(args.baseline.read_text())
        previous = stored.get(str(OBSERVATIONS))
        if previous:
            prev_join = previous.get("join/rows_per_s")
            if prev_join:
                print(f"recorded join throughput (previous run): "
                      f"{prev_join:,.0f} obs/s "
                      f"({rows_per_s / prev_join:.2f}x)")

    if failures:
        print(f"\n{len(failures)} join gate failure(s): "
              f"{'; '.join(failures)}", file=sys.stderr)
        return 1
    print("\njoin gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
