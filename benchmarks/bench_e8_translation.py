"""E8 — §III-B ablation: direct vs alternative (optimized) translation.

Across query shapes (roll-up depth, dice selectivity), both variants
must return identical rows; the alternative variant additionally
*works where the direct one cannot* — on endpoints without HAVING
support (the "typical limitations of SPARQL endpoints" the paper's
heuristics target, emulated via ``EndpointLimits.forbid_having``).
"""

import pytest

from repro.data.namespaces import PROPERTY, REF_PROP, SCHEMA
from repro.demo import CONTINENT_LEVEL, QUARTER_LEVEL, YEAR_LEVEL
from repro.rdf.namespace import SDMX_MEASURE
from repro.sparql.errors import EndpointError
from repro.ql import QLBuilder, attr, measure


def shapes(schema):
    base = lambda: (QLBuilder(schema.dataset)
                    .slice(SCHEMA.asylappDim)
                    .slice(SCHEMA.sexDim)
                    .slice(SCHEMA.ageDim))
    return {
        "depth0_bottom": base()
        .slice(SCHEMA.citizenshipDim)
        .slice(SCHEMA.timeDim)
        .build(),
        "depth1_continent": base()
        .slice(SCHEMA.timeDim)
        .slice(SCHEMA.destinationDim)
        .rollup(SCHEMA.citizenshipDim, CONTINENT_LEVEL)
        .build(),
        "depth2_year": base()
        .slice(SCHEMA.citizenshipDim)
        .slice(SCHEMA.destinationDim)
        .rollup(SCHEMA.timeDim, YEAR_LEVEL)
        .build(),
        "selective_dice": base()
        .slice(SCHEMA.timeDim)
        .slice(SCHEMA.destinationDim)
        .rollup(SCHEMA.citizenshipDim, CONTINENT_LEVEL)
        .dice(attr(SCHEMA.citizenshipDim, CONTINENT_LEVEL,
                   REF_PROP.continentName) == "Oceania")
        .build(),
        "measure_dice": base()
        .slice(SCHEMA.timeDim)
        .slice(SCHEMA.destinationDim)
        .rollup(SCHEMA.citizenshipDim, CONTINENT_LEVEL)
        .dice(measure(SDMX_MEASURE.obsValue) > 100)
        .build(),
    }


SHAPE_NAMES = ["depth0_bottom", "depth1_continent", "depth2_year",
               "selective_dice", "measure_dice"]


@pytest.mark.parametrize("shape", SHAPE_NAMES)
def test_e8_variant_equivalence_and_timing(demo, benchmark, shape,
                                           save_rows):
    program = shapes(demo.schema)[shape]

    def run_both():
        return demo.engine.execute_both(program)

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    direct = results["direct"]
    optimized = results["optimized"]
    identical = sorted(map(str, direct.table.rows)) == \
        sorted(map(str, optimized.table.rows))
    save_rows(f"E8_shape_{shape}",
              "variant     rows    exec      lines",
              [f"direct    {direct.report.rows:5d} "
               f"{direct.report.execute_seconds:8.2f}s "
               f"{direct.report.sparql_lines:5d}",
               f"optimized {optimized.report.rows:5d} "
               f"{optimized.report.execute_seconds:8.2f}s "
               f"{optimized.report.sparql_lines:5d}",
               f"identical: {identical}"])
    assert identical


def test_e8_optimized_survives_having_free_endpoint(demo, benchmark,
                                                    save_rows):
    program = shapes(demo.schema)["measure_dice"]
    translation = demo.engine.prepare(program)[3]

    def constrained_run():
        demo.endpoint.limits.forbid_having = True
        try:
            with pytest.raises(EndpointError):
                demo.endpoint.select(translation.direct)
            table = demo.endpoint.select(translation.optimized)
            auto = demo.engine.execute(program, variant="auto")
        finally:
            demo.endpoint.limits.forbid_having = False
        return table, auto

    table, auto = benchmark.pedantic(constrained_run, rounds=1,
                                     iterations=1)
    save_rows("E8_endpoint_limitation",
              "HAVING-free endpoint (Virtuoso-era limitation emulation)",
              [f"direct translation: rejected (uses HAVING)",
               f"optimized translation: {len(table)} rows",
               f"auto mode fell back to: {auto.report.variant}"])
    assert "fallback" in auto.report.variant
