"""E2 — Fig. 2 (Enrichment workflow): per-phase costs and scaling.

Shape to reproduce: the Enrichment Phase is dominated by the
per-member property queries (one SELECT per level instance, as the
paper describes); the Redefinition Phase is constant; Triple
Generation is linear in *members*, not observations — dimensions are
"orders of magnitude smaller" than the observations.
"""

import time

import pytest

from repro.data import small_demo
from repro.data.namespaces import PROPERTY
from repro.demo import MARY_PREFERENCES, PAPER_DIMENSION_NAMES
from repro.enrichment import EnrichmentSession

SIZES = [2_000, 8_000]


def phase_timings(observations: int):
    data = small_demo(observations=observations)
    session = EnrichmentSession(data.endpoint, data.dataset, data.dsd,
                                dimension_names=PAPER_DIMENSION_NAMES)
    timings = {}
    started = time.perf_counter()
    session.redefine()
    timings["redefinition"] = time.perf_counter() - started

    data.endpoint.reset_statistics()
    started = time.perf_counter()
    session.auto_enrich(max_depth=3, prefer=list(MARY_PREFERENCES))
    timings["enrichment (FD discovery)"] = time.perf_counter() - started
    selects = data.endpoint.statistics.selects

    started = time.perf_counter()
    report = session.generate()
    timings["triple generation"] = time.perf_counter() - started
    return timings, selects, report


@pytest.mark.parametrize("observations", SIZES)
def test_e2_phase_costs(benchmark, observations, save_rows):
    timings, selects, report = benchmark.pedantic(
        phase_timings, args=(observations,), rounds=1, iterations=1)
    rows = [
        f"{phase:28s} {seconds:8.3f}s"
        for phase, seconds in timings.items()
    ]
    rows.append(f"{'SELECT queries issued':28s} {selects:8d}")
    rows.append(f"{'generated schema triples':28s} "
                f"{report.schema_triples:8d}")
    rows.append(f"{'generated instance triples':28s} "
                f"{report.instance_triples:8d}")
    save_rows(f"E2_enrichment_obs{observations}",
              f"phase (obs={observations})              seconds", rows)
    benchmark.extra_info["selects"] = selects

    # paper shape: generation output is tiny vs the observation count
    assert report.instance_triples < observations


def test_e2_generation_scales_with_members_not_observations(benchmark,
                                                             save_rows):
    """Doubling observations must not change generated triple counts
    (members saturate), pinning the 'dimensions are orders of magnitude
    smaller' claim."""
    def sweep():
        results = {}
        for observations in SIZES:
            _, _, report = phase_timings(observations)
            results[observations] = report
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        f"obs={observations:6d}  schema={report.schema_triples:5d}  "
        f"instances={report.instance_triples:6d}"
        for observations, report in results.items()
    ]
    save_rows("E2_generation_scaling", "generated triples per data size",
              rows)
    first, second = (results[s] for s in SIZES)
    assert first.instance_triples == second.instance_triples
