#!/usr/bin/env python
"""Gate the query governor's behavior under injected faults.

Models an unhealthy production mix: interactive analysts with sane
queries share the endpoint with pathological traffic — queries that
hang (injected latency), a bulk loader that crashes mid-batch, and a
burst that exceeds the admission capacity.  Failpoints
(:mod:`repro.testing.faults`) inject every fault deterministically
and **thread-scoped**, so the healthy readers are instrumentation-free.

The gate asserts, within one run (wall-clock ratios are only compared
within the same process, never across machines):

* **containment** — the healthy readers' p99 latency under faults
  stays within ``REPRO_BENCH_RESILIENCE_FACTOR`` (default 3x) of
  their fault-free p99 measured first;
* **typed failure** — every faulted query dies with a governed,
  machine-readable error (``QueryTimeout`` under injected latency,
  ``EndpointOverloaded`` under the admission burst); zero raw
  exceptions escape;
* **write atomicity** — every crashed ``add_all`` rolls back
  completely: the final subject set equals exactly the batches that
  committed;
* **correctness** — a concurrent sample of healthy results matches
  single-threaded re-execution on the final state.

``--update`` records the measured numbers under ``resilience/<obs>``
in ``benchmarks/baseline.json`` for reference; the committed entry
documents the expected shape and magnitude.

Usage::

    PYTHONPATH=src python benchmarks/check_resilience.py
    PYTHONPATH=src python benchmarks/check_resilience.py --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

OBSERVATIONS = int(os.environ.get("REPRO_BENCH_OBS", "2000"))
FACTOR = float(os.environ.get("REPRO_BENCH_RESILIENCE_FACTOR", "3.0"))
HEALTHY_READERS = int(os.environ.get("REPRO_BENCH_RESILIENCE_READERS", "6"))
FAULT_READERS = 3
QUERIES_PER_READER = int(
    os.environ.get("REPRO_BENCH_RESILIENCE_QUERIES", "40"))
WRITER_BATCHES = 60
#: injected per-join-step stall in the fault threads; well above the
#: faulted queries' deadline, so every one of them must time out
STALL_SECONDS = 0.05
FAULT_DEADLINE = 0.02

BASELINE_PATH = Path(__file__).parent / "baseline.json"
BASELINE_KEY = f"resilience/{OBSERVATIONS}"

EX = "http://example.org/bench/resilience/"

HEALTHY_QUERIES = [
    """SELECT DISTINCT ?c WHERE {
        ?obs <http://eurostat.linked-statistics.org/property#citizen> ?c
    } LIMIT 10""",
    """SELECT ?obs ?label WHERE {
        ?obs <http://eurostat.linked-statistics.org/property#citizen> ?c
        OPTIONAL { ?c <http://www.w3.org/2000/01/rdf-schema#label> ?label }
    } LIMIT 50""",
    """SELECT ?c (COUNT(?obs) AS ?n) WHERE {
        ?obs <http://eurostat.linked-statistics.org/property#citizen> ?c
    } GROUP BY ?c""",
]

FAULT_QUERY = HEALTHY_QUERIES[2]  # the aggregation walk, made to hang


def build_endpoint():
    from repro.data import small_demo
    from repro.sparql.governor import QueryGovernor

    endpoint = small_demo(observations=OBSERVATIONS).endpoint
    endpoint.governor = QueryGovernor.for_serving(
        max_concurrent=HEALTHY_READERS + FAULT_READERS + 2,
        max_queue=8, queue_timeout=5.0)
    return endpoint


def percentile(samples, fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       int(fraction * (len(ordered) - 1) + 0.5))]


def run_healthy(endpoint, latencies, errors) -> list:
    """Spawn the healthy reader threads (unchanged in both phases)."""
    def reader(index: int) -> None:
        for k in range(QUERIES_PER_READER):
            query = HEALTHY_QUERIES[(index + k) % len(HEALTHY_QUERIES)]
            started = time.perf_counter()
            try:
                endpoint.select(query)
            except Exception as error:  # noqa: BLE001
                errors.append(error)
                return
            latencies.append(time.perf_counter() - started)

    return [threading.Thread(target=reader, args=(index,),
                             name=f"healthy-{index}")
            for index in range(HEALTHY_READERS)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="record measured numbers in baseline.json")
    args = parser.parse_args(argv)
    sys.path.insert(0, "src")
    sys.setswitchinterval(0.001)

    from repro.rdf.terms import IRI, Literal
    from repro.sparql.errors import (
        EndpointOverloaded,
        GovernedQueryError,
        QueryTimeout,
    )
    from repro.sparql.governor import QueryGovernor, QueryLimits
    from repro.testing import faults

    print(f"resilience gate: obs={OBSERVATIONS} "
          f"healthy={HEALTHY_READERS} faulted={FAULT_READERS} "
          f"factor={FACTOR:.1f}x")
    endpoint = build_endpoint()
    endpoint.dataset.snapshot()  # steady state before measuring

    # -- phase 1: fault-free healthy p99 ------------------------------------
    base_latencies: list = []
    base_errors: list = []
    threads = run_healthy(endpoint, base_latencies, base_errors)
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if base_errors:
        print(f"FAIL: fault-free phase raised {base_errors[:3]}",
              file=sys.stderr)
        return 1
    p99_base = percentile(base_latencies, 0.99)
    print(f"fault-free:   {len(base_latencies):4d} healthy queries, "
          f"p99 {p99_base * 1000:7.2f}ms")

    # -- phase 2: the same healthy load + injected faults -------------------
    healthy_latencies: list = []
    healthy_errors: list = []
    fault_outcomes: list = []
    writer_commits: list = []
    writer_rollbacks: list = []
    untyped: list = []

    def fault_reader(index: int) -> None:
        # this thread's queries stall at every join step (thread-scoped
        # failpoint) and carry a tight deadline: each must die with
        # QueryTimeout, promptly and typed
        for _ in range(8):
            try:
                endpoint.select(FAULT_QUERY, limits=QueryLimits(
                    deadline_seconds=FAULT_DEADLINE))
                fault_outcomes.append("completed")
            except QueryTimeout:
                fault_outcomes.append("timeout")
            except GovernedQueryError as error:
                fault_outcomes.append(type(error).__name__)
            except Exception as error:  # noqa: BLE001
                untyped.append(error)
                return

    def crashing_writer() -> None:
        dim = IRI(EX + "dim")
        graph = endpoint.dataset.default
        for k in range(WRITER_BATCHES):
            batch = [(IRI(f"{EX}s{k}"), dim, Literal(k)),
                     (IRI(f"{EX}s{k}"), IRI(EX + "val"), Literal(k))]
            try:
                graph.add_all(batch)
                writer_commits.append(k)
            except faults.FaultInjected:
                writer_rollbacks.append(k)
            except Exception as error:  # noqa: BLE001
                untyped.append(error)
                return

    fault_threads = [threading.Thread(target=fault_reader, args=(i,),
                                      name=f"faulted-{i}")
                     for i in range(FAULT_READERS)]
    writer = threading.Thread(target=crashing_writer, name="crash-writer")
    healthy_threads = run_healthy(endpoint, healthy_latencies,
                                  healthy_errors)

    faults.FAILPOINTS.arm("evaluator.step", delay=STALL_SECONDS,
                          only_threads=fault_threads)
    faults.FAILPOINTS.arm("graph.add_all.step", raises=True,
                          probability=0.4, seed=7, skip_first=1,
                          only_threads=[writer])
    try:
        for thread in healthy_threads + fault_threads + [writer]:
            thread.start()
        for thread in healthy_threads + fault_threads + [writer]:
            thread.join()
    finally:
        faults.FAILPOINTS.reset()

    if healthy_errors or untyped:
        print(f"FAIL: unexpected errors: "
              f"{(healthy_errors + untyped)[:3]}", file=sys.stderr)
        return 1
    p99_faulted = percentile(healthy_latencies, 0.99)
    timeouts = fault_outcomes.count("timeout")
    print(f"under faults: {len(healthy_latencies):4d} healthy queries, "
          f"p99 {p99_faulted * 1000:7.2f}ms; "
          f"{timeouts}/{len(fault_outcomes)} faulted queries timed out; "
          f"writer: {len(writer_commits)} commits, "
          f"{len(writer_rollbacks)} rolled-back crashes")

    # typed failure: every faulted query died governed (or, legally,
    # completed — impossible here given stall >> deadline, so check)
    if fault_outcomes.count("timeout") != len(fault_outcomes):
        print(f"FAIL: faulted queries ended as {set(fault_outcomes)}, "
              f"expected only timeouts", file=sys.stderr)
        return 1
    if not writer_rollbacks:
        print("FAIL: the writer's fault schedule never fired",
              file=sys.stderr)
        return 1

    # write atomicity: exactly the committed batches are visible
    table = endpoint.select(
        f"SELECT DISTINCT ?s WHERE {{ ?s <{EX}dim> ?o }}")
    if len(table) != len(writer_commits):
        print(f"FAIL: {len(table)} subjects visible, "
              f"{len(writer_commits)} batches committed — a crashed "
              f"batch leaked", file=sys.stderr)
        return 1

    # admission burst: a deliberately tiny governor must shed with
    # EndpointOverloaded, never hang or raise anything untyped
    from repro.sparql.endpoint import LocalEndpoint
    burst = LocalEndpoint(
        endpoint.dataset,
        governor=QueryGovernor.for_serving(max_concurrent=1, max_queue=0))
    burst_outcomes: list = []

    def burst_query() -> None:
        try:
            burst.select(FAULT_QUERY)
            burst_outcomes.append("completed")
        except EndpointOverloaded:
            burst_outcomes.append("shed")
        except Exception as error:  # noqa: BLE001
            untyped.append(error)

    burst_threads = [threading.Thread(target=burst_query)
                     for _ in range(8)]
    for thread in burst_threads:
        thread.start()
    for thread in burst_threads:
        thread.join()
    if untyped:
        print(f"FAIL: burst raised untyped: {untyped[:3]}",
              file=sys.stderr)
        return 1
    if "shed" not in burst_outcomes or "completed" not in burst_outcomes:
        print(f"FAIL: burst outcomes {burst_outcomes} — expected both "
              f"sheds and completions", file=sys.stderr)
        return 1
    print(f"admission burst: {burst_outcomes.count('completed')} served, "
          f"{burst_outcomes.count('shed')} shed (typed)")

    # correctness: concurrent healthy sample == single-threaded rerun
    from concurrent.futures import ThreadPoolExecutor
    reference = [endpoint.select(query).rows for query in HEALTHY_QUERIES]
    with ThreadPoolExecutor(max_workers=HEALTHY_READERS) as pool:
        runs = list(pool.map(
            lambda _: [endpoint.select(query).rows
                       for query in HEALTHY_QUERIES],
            range(HEALTHY_READERS)))
    for run in runs:
        if run != reference:
            print("FAIL: concurrent execution diverged from "
                  "single-threaded", file=sys.stderr)
            return 1
    print("correctness: concurrent == single-threaded on final state")

    ratio = p99_faulted / max(p99_base, 1e-9)
    print(f"healthy p99 under faults: {ratio:.2f}x fault-free")
    measured = {
        "resilience/healthy_queries": len(healthy_latencies),
        "resilience/p99_ratio": round(ratio, 2),
        "resilience/faulted_timeouts": timeouts,
        "resilience/writer_rollbacks": len(writer_rollbacks),
        "resilience/burst_sheds": burst_outcomes.count("shed"),
        "resilience/untyped_errors": 0,
    }

    baseline = json.loads(BASELINE_PATH.read_text()) \
        if BASELINE_PATH.exists() else {}
    if args.update:
        baseline[BASELINE_KEY] = measured
        BASELINE_PATH.write_text(json.dumps(baseline, indent=1) + "\n")
        print(f"baseline updated: {BASELINE_KEY} in {BASELINE_PATH}")
    else:
        committed = baseline.get(BASELINE_KEY)
        if committed is None:
            print(f"FAIL: no {BASELINE_KEY!r} entry in {BASELINE_PATH}; "
                  f"run `make bench-resilience-baseline`", file=sys.stderr)
            return 1
        missing = sorted(set(committed) ^ set(measured))
        if missing:
            print(f"FAIL: baseline schema drift on {missing}",
                  file=sys.stderr)
            return 1

    if ratio > FACTOR:
        print(f"FAIL: healthy p99 degraded {ratio:.2f}x > "
              f"{FACTOR:.1f}x under faults", file=sys.stderr)
        return 1
    print(f"ok: typed failures only, p99 within {FACTOR:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
