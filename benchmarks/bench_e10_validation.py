"""E10 — ablation: spec-fidelity validation vs native validation.

The W3C Data Cube spec defines well-formedness as 21 SPARQL ASK queries
over the *normalized* graph (§10/§11); QB2OLAP must validate its input
cube before enrichment.  This bench regenerates three series:

* normalization cost and added-triple counts as the cube grows —
  linear in observations (each observation gains one type triple);
* the IC suite's per-constraint cost on the demo cube — the
  path-navigating constraints (IC-11/13/14 walk
  ``qb:dataSet/qb:structure/qb:component/...`` per observation)
  dominate;
* the IC-12 ablation: the spec's pairwise SPARQL formulation is
  quadratic in observations, the native hash-based duplicate check
  linear — the reason ``check_graph`` skips the SPARQL form on big
  graphs and delegates to :mod:`repro.qb.validator`.
"""

import time

import pytest

from repro.data.eurostat import GeneratorConfig, build_qb_graph
from repro.qb.constraints import (
    STATIC_CONSTRAINTS,
    check_constraint,
    check_graph,
)
from repro.qb.normalize import normalize_graph
from repro.qb.validator import check_ic12_no_duplicate_observations

NORMALIZE_SIZES = [500, 2_000, 8_000]
IC12_SIZES = [100, 200, 400]


def normalized_cube(observations: int, seed: int = 42):
    graph = build_qb_graph(GeneratorConfig(
        observations=observations, seed=seed))
    added = normalize_graph(graph)
    return graph, added


def test_e10_normalization_scaling(benchmark, save_rows):
    def sweep():
        rows = []
        for size in NORMALIZE_SIZES:
            graph = build_qb_graph(GeneratorConfig(observations=size))
            before = len(graph)
            started = time.perf_counter()
            added = normalize_graph(graph)
            seconds = time.perf_counter() - started
            rows.append(f"obs={size:6d}  triples={before:7d}  "
                        f"added={added:6d}  {seconds:6.2f}s")
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_rows("E10_normalization", "normalization cost scaling", rows)

    # shape: added triples track observations linearly (one implicit
    # qb:Observation type per observation after the generator's types
    # are removed — here types exist, so the adds come from component
    # closure only and stay constant) — assert both runs normalized
    graph, added = normalized_cube(500)
    again = normalize_graph(graph)
    assert again == 0  # idempotent


def test_e10_ic_suite_cost(benchmark, save_rows):
    graph, _ = normalized_cube(2_000)

    def run():
        rows = []
        for check in STATIC_CONSTRAINTS:
            if check.expensive:
                continue
            started = time.perf_counter()
            violated = check_constraint(graph, check)
            seconds = time.perf_counter() - started
            rows.append((check.ic, check.label, violated, seconds))
        return rows

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    total = sum(seconds for _, _, _, seconds in timings)
    rows = [
        f"{ic:6s} {label:42s} {'VIOLATED' if violated else 'ok':9s} "
        f"{seconds:7.3f}s ({seconds / total:5.1%})"
        for ic, label, violated, seconds in timings
    ]
    save_rows("E10_ic_costs",
              "per-constraint cost, 2000-observation cube "
              "(IC-12/17 delegated to native checks)", rows)
    # the raw synthetic cube reproduces the real dump's metadata gap:
    # dimensions lack rdfs:range (IC-4)
    violated_ics = {ic for ic, _, violated, _ in timings if violated}
    assert violated_ics == {"IC-4"}


def test_e10_ic12_native_vs_sparql(benchmark, save_rows):
    ic12 = next(c for c in STATIC_CONSTRAINTS if c.ic == "IC-12")

    def sweep():
        rows = []
        for size in IC12_SIZES:
            graph, _ = normalized_cube(size)
            started = time.perf_counter()
            sparql_violated = check_constraint(graph, ic12)
            sparql_seconds = time.perf_counter() - started
            started = time.perf_counter()
            native = check_ic12_no_duplicate_observations(graph)
            native_seconds = time.perf_counter() - started
            assert sparql_violated == bool(native)
            rows.append((size, sparql_seconds, native_seconds))
        return rows

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        f"obs={size:5d}  spec-SPARQL={sparql_seconds:8.3f}s  "
        f"native={native_seconds:7.4f}s  "
        f"ratio={sparql_seconds / max(native_seconds, 1e-9):8.0f}x"
        for size, sparql_seconds, native_seconds in timings
    ]
    save_rows("E10_ic12_ablation",
              "IC-12 duplicate detection: spec SPARQL vs native", rows)

    # shape: the SPARQL form grows superlinearly, the native one stays
    # cheap; at the largest size native wins by a wide margin
    last = timings[-1]
    assert last[1] > last[2] * 10
    # quadratic-ish growth of the SPARQL form between first and last
    growth = timings[-1][1] / max(timings[0][1], 1e-9)
    size_ratio = IC12_SIZES[-1] / IC12_SIZES[0]
    assert growth > size_ratio  # worse than linear
