"""E4 — Fig. 4 (Enrichment example): candidate discovery under noise.

Regenerates the suggestion list for the citizenship dimension across
reference-data noise levels and quasi-FD thresholds.  Shape to
reproduce: exact-FD discovery (threshold 0) loses the continent
candidate as soon as the linked data degrades, while a tolerant
threshold keeps it available — the fine-tuning story of §III-A.
"""

import time

import pytest

from repro.data import small_demo
from repro.data.namespaces import PROPERTY, REF_PROP
from repro.demo import PAPER_DIMENSION_NAMES
from repro.enrichment import EnrichmentConfig, EnrichmentSession

NOISE_LEVELS = [0.0, 0.05, 0.10, 0.25]
THRESHOLDS = [0.0, 0.15, 0.30]


def discover(noise_rate: float, threshold: float):
    data = small_demo(observations=800, noise_rate=noise_rate)
    session = EnrichmentSession(
        data.endpoint, data.dataset, data.dsd,
        config=EnrichmentConfig(quasi_fd_threshold=threshold),
        dimension_names=PAPER_DIMENSION_NAMES)
    session.redefine()
    started = time.perf_counter()
    candidates = session.suggestions(PROPERTY.citizen)
    seconds = time.perf_counter() - started
    continent = next((c for c in candidates
                      if c.prop == REF_PROP.continent), None)
    return candidates, continent, seconds


def test_e4_noise_threshold_matrix(benchmark, save_rows):
    def sweep():
        rows = []
        for noise in NOISE_LEVELS:
            for threshold in THRESHOLDS:
                candidates, continent, seconds = discover(noise, threshold)
                if continent is None:
                    verdict = "rejected"
                else:
                    verdict = (f"{continent.kind:9s} "
                               f"error={continent.profile.fd_error:5.1%}")
                rows.append(
                    f"noise={noise:5.0%}  threshold={threshold:5.0%}  "
                    f"candidates={len(candidates):2d}  continent: {verdict}")
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_rows("E4_noise_matrix",
              "quasi-FD discovery matrix (citizenship dimension)", rows)

    # shape assertions: clean data always finds the level; dirty data
    # needs the threshold
    _, clean, _ = discover(0.0, 0.0)
    assert clean is not None and clean.kind == "level"
    _, strict_dirty, _ = discover(0.25, 0.0)
    assert strict_dirty is None
    _, tolerant_dirty, _ = discover(0.25, 0.30)
    assert tolerant_dirty is not None


def test_e4_discovery_cost(benchmark, save_rows):
    """Discovery issues one SELECT per member (the paper's workflow);
    cost grows with the member count, not the observation count."""
    data = small_demo(observations=800)
    session = EnrichmentSession(data.endpoint, data.dataset, data.dsd,
                                dimension_names=PAPER_DIMENSION_NAMES)
    session.redefine()
    members = len(session.levels[PROPERTY.citizen].members)
    data.endpoint.reset_statistics()

    def run():
        return session.suggestions(PROPERTY.citizen, refresh=True)

    candidates = benchmark(run)
    selects_per_refresh = data.endpoint.statistics.selects / \
        max(benchmark.stats.stats.rounds * 1.0, 1.0)
    save_rows("E4_discovery_cost",
              "per-member query workload",
              [f"members={members}  candidates={len(candidates)}  "
               f"SELECTs/refresh≈{selects_per_refresh:.0f}"])
    assert selects_per_refresh >= members
