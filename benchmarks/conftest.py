"""Shared benchmark fixtures.

Scale knobs:

* ``REPRO_BENCH_OBS`` (default 20 000 observations) — set to 80000 to
  reproduce the paper's full demo subset;
* ``REPRO_BENCH_SCALE`` (default 1) — a multiplier applied on top of
  ``REPRO_BENCH_OBS``, so one environment variable sweeps the whole
  suite from the smoke default to the columnar store's 100k–1M-row
  range (``REPRO_BENCH_SCALE=50`` → 1M observations) without editing
  fixture code.

All fixtures are session-scoped; enrichment benchmarks that need
pristine endpoints build their own smaller ones.

Each bench also appends its paper-shaped rows to
``benchmarks/results/<exp>.txt`` so the regenerated series survive the
pytest-benchmark table.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.demo import EnrichedDemo, prepare_enriched_demo

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))
BENCH_OBSERVATIONS = int(
    int(os.environ.get("REPRO_BENCH_OBS", "20000")) * BENCH_SCALE)
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def demo() -> EnrichedDemo:
    """The paper-scale enriched demo (built once per session)."""
    return prepare_enriched_demo(
        observations=BENCH_OBSERVATIONS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def star_engine(demo):
    from repro.olap import NativeOLAPEngine, extract_star_schema

    star, report = extract_star_schema(demo.endpoint, demo.schema)
    engine = NativeOLAPEngine(star)
    engine.etl_report = report  # stash for E9
    return engine


@pytest.fixture(scope="session")
def save_rows():
    """Writer for the regenerated per-experiment series."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def writer(experiment: str, header: str, rows: list[str]) -> None:
        path = RESULTS_DIR / f"{experiment}.txt"
        lines = [f"# {experiment} — observations={BENCH_OBSERVATIONS}",
                 header] + rows
        path.write_text("\n".join(lines) + "\n")
        print(f"\n[{experiment}]")
        print(header)
        for row in rows:
            print(row)

    return writer
