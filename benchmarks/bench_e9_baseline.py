"""E9 — the two approaches of §I: RDF-native OLAP vs ETL-to-DW.

QB2OLAP's pitch is *self-service BI*: analyze the published RDF
directly, no warehouse load.  The classic alternative (ref. [2],
Kämpgen & Harth) pays an ETL step once and then answers queries from a
materialized star schema.  Shape to reproduce: the native engine wins
per-query latency by orders of magnitude, but QB2OLAP wins time-to-
first-answer; the crossover is at ETL÷(per-query saving) queries.
"""

import pytest

from repro.data.namespaces import SCHEMA
from repro.demo import CONTINENT_LEVEL, MARY_QL, YEAR_LEVEL
from repro.olap import compare_results
from repro.ql import QLBuilder

QUERY_SET = ["mary", "by_continent", "by_year"]


def programs(schema):
    return {
        "mary": MARY_QL,
        "by_continent": (QLBuilder(schema.dataset)
                         .slice(SCHEMA.asylappDim)
                         .slice(SCHEMA.sexDim)
                         .slice(SCHEMA.ageDim)
                         .slice(SCHEMA.timeDim)
                         .slice(SCHEMA.destinationDim)
                         .rollup(SCHEMA.citizenshipDim, CONTINENT_LEVEL)
                         .build()),
        "by_year": (QLBuilder(schema.dataset)
                    .slice(SCHEMA.asylappDim)
                    .slice(SCHEMA.sexDim)
                    .slice(SCHEMA.ageDim)
                    .slice(SCHEMA.citizenshipDim)
                    .slice(SCHEMA.destinationDim)
                    .rollup(SCHEMA.timeDim, YEAR_LEVEL)
                    .build()),
    }


@pytest.mark.parametrize("name", QUERY_SET)
def test_e9_query_latency(demo, star_engine, benchmark, name, save_rows):
    program = programs(demo.schema)[name]
    sparql_result = demo.engine.execute(program, variant="direct")

    def native_run():
        return star_engine.evaluate(sparql_result.simplified)

    native = benchmark(native_run)
    outcome = compare_results(sparql_result.cube, native)
    assert outcome.equal, outcome.explain()
    speedup = sparql_result.report.execute_seconds / max(native.seconds,
                                                         1e-9)
    save_rows(f"E9_query_{name}",
              "engine        cells    latency",
              [f"QB2OLAP/SPARQL {len(sparql_result.cube):5d} "
               f"{sparql_result.report.execute_seconds:9.3f}s",
               f"native DW      {len(native):5d} "
               f"{native.seconds:9.3f}s",
               f"speedup (post-ETL): {speedup:.0f}x"])
    assert native.seconds < sparql_result.report.execute_seconds


def test_e9_crossover(demo, star_engine, benchmark, save_rows):
    """Where does paying the ETL start to win?"""
    etl_seconds = star_engine.etl_report.seconds

    def sweep():
        per_query = {}
        for name, program in programs(demo.schema).items():
            result = demo.engine.execute(program, variant="direct")
            native = star_engine.evaluate(result.simplified)
            per_query[name] = (result.report.execute_seconds,
                               native.seconds)
        return per_query

    per_query = benchmark.pedantic(sweep, rounds=1, iterations=1)
    avg_sparql = sum(s for s, _ in per_query.values()) / len(per_query)
    avg_native = sum(n for _, n in per_query.values()) / len(per_query)
    saving = avg_sparql - avg_native
    crossover = etl_seconds / saving if saving > 0 else float("inf")
    rows = [
        f"ETL cost (one-time)            {etl_seconds:8.2f}s",
        f"avg SPARQL query               {avg_sparql:8.2f}s",
        f"avg native query               {avg_native:8.4f}s",
        f"crossover after ≈ {crossover:5.1f} queries",
        "=> QB2OLAP wins for exploratory/self-service use;",
        "   the DW wins for repeated reporting workloads.",
    ]
    save_rows("E9_crossover", "two-approaches comparison", rows)
    assert saving > 0
