"""E6 — §IV demo query: QL conciseness and correctness.

The paper's headline usability claim: Mary's analysis is a handful of
QL statements, while "the above query translates to more than 30 lines
of SPARQL".  Regenerates: QL statement count, generated SPARQL line
counts for both variants, execution, and a cell-by-cell correctness
check against the native star-schema oracle.
"""

import pytest

from repro.demo import MARY_QL
from repro.olap import compare_results
from repro.ql import parse_ql


def test_e6_conciseness(demo, benchmark, save_rows):
    program = parse_ql(MARY_QL)
    translation = benchmark.pedantic(
        lambda: demo.engine.prepare(MARY_QL)[3], rounds=1, iterations=1)
    ql_lines = len([line for line in MARY_QL.strip().splitlines()
                    if line.strip() and not line.startswith("PREFIX")
                    and line.strip() != "QUERY"])
    rows = [
        f"QL statements                 {len(program):4d}",
        f"QL lines (sans prefixes)      {ql_lines:4d}",
        f"SPARQL lines (direct)         {translation.direct_lines:4d}",
        f"SPARQL lines (optimized)      {translation.optimized_lines:4d}",
        f"expansion factor              "
        f"{translation.direct_lines / ql_lines:4.1f}x",
    ]
    save_rows("E6_conciseness", "Mary's query: QL vs generated SPARQL",
              rows)
    # the paper's claim
    assert translation.direct_lines > 30


def test_e6_execution_and_correctness(demo, star_engine, benchmark,
                                      save_rows):
    def run():
        return demo.engine.execute(MARY_QL, variant="direct")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    native = star_engine.evaluate(result.simplified)
    outcome = compare_results(result.cube, native)
    rows = [
        f"cells                    {len(result.cube):6d}",
        f"SPARQL execution         {result.report.execute_seconds:6.2f}s",
        f"native oracle            {native.seconds * 1000:6.1f}ms",
        f"results identical        {outcome.equal}",
    ]
    save_rows("E6_correctness", "Mary's query: execution + oracle check",
              rows)
    assert outcome.equal, outcome.explain()


def test_e6_variants_equivalent(demo, benchmark, save_rows):
    results = benchmark.pedantic(
        lambda: demo.engine.execute_both(MARY_QL), rounds=1, iterations=1)
    direct_rows = sorted(map(str, results["direct"].table.rows))
    optimized_rows = sorted(map(str, results["optimized"].table.rows))
    save_rows("E6_variants", "semantic equivalence of the two translations",
              [f"direct rows    = {len(direct_rows)}",
               f"optimized rows = {len(optimized_rows)}",
               f"identical      = {direct_rows == optimized_rows}"])
    assert direct_rows == optimized_rows
