#!/usr/bin/env python
"""Gate the snapshot-isolated endpoint's parallel read throughput.

Models the paper's operating point — interactive analysts querying an
endpoint *while* an enrichment session keeps loading — and runs the
same storm twice within a wall-clock budget:

* **snapshot mode** — readers call ``endpoint.select`` directly; each
  query pins an immutable dataset snapshot and runs without locks,
  while the writer loads observation batches back-to-back under the
  exclusive write lock (the production configuration);
* **serialized control** — one global mutex wraps every read *and*
  every writer batch, emulating the pre-snapshot single-threaded
  endpoint where "one slow materialization walk blocks every other
  reader" (ROADMAP's Concurrency item).

Readers are *interactive*: a small think time separates their queries
(sleeping releases the GIL, exactly like a real client between
requests).  Under the serialized control their queries queue behind
the bulk load's exclusive sections; under snapshot isolation they
interleave with it, so far more of them complete inside the budget.

The gate asserts that snapshot mode completes at least
``REPRO_BENCH_CONCURRENCY_FACTOR`` (default 2.0) times as many reader
queries as the control within the same budget, and — doubling as a
correctness probe — that a sample of concurrent results matches
single-threaded re-execution on the final state.

Usage::

    PYTHONPATH=src python benchmarks/check_concurrency.py
    REPRO_BENCH_CONCURRENCY_BUDGET=5 python benchmarks/check_concurrency.py
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

OBSERVATIONS = int(os.environ.get("REPRO_BENCH_OBS", "2000"))
BUDGET_SECONDS = float(os.environ.get("REPRO_BENCH_CONCURRENCY_BUDGET", "3"))
FACTOR = float(os.environ.get("REPRO_BENCH_CONCURRENCY_FACTOR", "2.0"))
READERS = int(os.environ.get("REPRO_BENCH_CONCURRENCY_READERS", "8"))
#: triples per writer transaction — sized like an enrichment
#: transaction (level instances / schema generation write thousands of
#: triples in one update), i.e. a *slow write* holding the exclusive
#: lock for a noticeable stretch: the ROADMAP's "one slow
#: materialization walk blocks every other reader" situation
WRITE_BATCH = 20_000
#: interactive think time between one reader's queries (seconds);
#: sleeping releases the GIL like a real client between requests
THINK_SECONDS = float(
    os.environ.get("REPRO_BENCH_CONCURRENCY_THINK", "0.01"))

EX = "http://example.org/bench/concurrency/"

#: the reader mix: the two streamed shapes the translated workload
#: leans on plus one full aggregation (the "slow walk" the control
#: serializes everything behind)
READ_QUERIES = [
    """SELECT DISTINCT ?c WHERE {
        ?obs <http://eurostat.linked-statistics.org/property#citizen> ?c
    } LIMIT 10""",
    """SELECT ?obs ?label WHERE {
        ?obs <http://eurostat.linked-statistics.org/property#citizen> ?c
        OPTIONAL { ?c <http://www.w3.org/2000/01/rdf-schema#label> ?label }
    } LIMIT 50""",
    """SELECT ?c (COUNT(?obs) AS ?n) WHERE {
        ?obs <http://eurostat.linked-statistics.org/property#citizen> ?c
    } GROUP BY ?c""",
]


def build_endpoint():
    from repro.data import small_demo
    return small_demo(observations=OBSERVATIONS).endpoint


def run_storm(endpoint, serialize: bool):
    """One budgeted storm; returns (reader_queries_completed, batches).

    ``serialize=True`` wraps every read and every writer batch in one
    global mutex — the control configuration.
    """
    from repro.rdf.terms import IRI, Literal

    gate = threading.Lock() if serialize else None
    stop = threading.Event()
    completed = [0] * READERS
    batches = [0]
    errors: list = []

    dim = IRI(EX + "dim")
    val = IRI(EX + "val")
    graph = endpoint.dataset.default

    # the transaction is pre-built; the writer cycles load → retract →
    # load, emulating an enrichment session that keeps regenerating a
    # derived graph back-to-back (bounded memory, sustained pressure)
    rows = []
    for i in range(WRITE_BATCH // 2):
        s = IRI(f"{EX}s{i}")
        rows.append((s, dim, IRI(EX + f"m{i % 16}")))
        rows.append((s, val, Literal(i)))

    # publish an initial snapshot so the measurement starts from the
    # steady state (first-ever pin is the only blocking one)
    endpoint.dataset.snapshot()
    deadline = time.perf_counter() + BUDGET_SECONDS

    def writer() -> None:
        operations = [
            lambda: graph.add_all(rows),
            lambda: graph.remove((None, dim, None)),
            lambda: graph.remove((None, val, None)),
        ]
        k = 0
        while not stop.is_set() and time.perf_counter() < deadline:
            operation = operations[k % len(operations)]
            try:
                if gate is not None:
                    with gate:
                        operation()
                else:
                    operation()
                batches[0] += 1
            except Exception as error:  # noqa: BLE001
                errors.append(error)
                return
            k += 1

    def reader(index: int) -> None:
        k = 0
        while time.perf_counter() < deadline:
            query = READ_QUERIES[(index + k) % len(READ_QUERIES)]
            try:
                if gate is not None:
                    with gate:
                        endpoint.select(query)
                else:
                    endpoint.select(query)
            except Exception as error:  # noqa: BLE001
                errors.append(error)
                return
            completed[index] += 1
            k += 1
            time.sleep(THINK_SECONDS)

    writer_thread = threading.Thread(target=writer, name="bench-writer")
    reader_threads = [
        threading.Thread(target=reader, args=(index,),
                         name=f"bench-reader-{index}")
        for index in range(READERS)
    ]
    writer_thread.start()
    for thread in reader_threads:
        thread.start()
    for thread in reader_threads:
        thread.join()
    stop.set()
    writer_thread.join()
    if errors:
        raise AssertionError(f"storm raised: {errors[:3]}")
    return sum(completed), batches[0]


def check_correctness(endpoint) -> None:
    """Concurrent results on the final (quiescent) state must equal
    single-threaded re-execution — zero divergence."""
    from concurrent.futures import ThreadPoolExecutor

    reference = [endpoint.select(query).rows for query in READ_QUERIES]
    with ThreadPoolExecutor(max_workers=READERS) as pool:
        runs = list(pool.map(
            lambda _: [endpoint.select(query).rows
                       for query in READ_QUERIES],
            range(READERS)))
    for run in runs:
        for rows, expected in zip(run, reference):
            if rows != expected:
                raise AssertionError(
                    "concurrent execution diverged from single-threaded")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    sys.path.insert(0, "src")
    # finer GIL slicing so waking interactive readers are not also
    # queued behind multi-millisecond interpreter slices; applies to
    # both modes equally
    sys.setswitchinterval(0.001)

    print(f"concurrency gate: obs={OBSERVATIONS} readers={READERS} "
          f"budget={BUDGET_SECONDS:.1f}s factor={FACTOR:.1f}x")

    control_endpoint = build_endpoint()
    control_reads, control_batches = run_storm(
        control_endpoint, serialize=True)
    print(f"serialized control: {control_reads:6d} reads, "
          f"{control_batches:4d} write batches")

    snapshot_endpoint = build_endpoint()
    snapshot_reads, snapshot_batches = run_storm(
        snapshot_endpoint, serialize=False)
    print(f"snapshot mode:      {snapshot_reads:6d} reads, "
          f"{snapshot_batches:4d} write batches")

    check_correctness(snapshot_endpoint)
    print("correctness: concurrent == single-threaded on final state")

    ratio = snapshot_reads / max(1, control_reads)
    print(f"aggregate read throughput: {ratio:.2f}x the serialized control")
    if ratio < FACTOR:
        print(f"FAIL: expected at least {FACTOR:.1f}x", file=sys.stderr)
        return 1
    print(f"ok: >= {FACTOR:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
