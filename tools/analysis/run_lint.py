"""CLI entry point for the repo lint gate.

Usage::

    python tools/analysis/run_lint.py              # lint the repo
    python tools/analysis/run_lint.py src/foo.py   # lint specific files
    python tools/analysis/run_lint.py --update-baseline

Exit status 0 when every finding is baselined and no baseline entry is
stale; 1 otherwise.  ``make lint`` runs this plus the plan-verifier
corpus check and the strict-typing gate.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from analysis.lint import REPO_ROOT, run  # noqa: E402


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files to lint (default: src, tests, "
                             "benchmarks)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="accept all current findings into "
                             "tools/analysis/baseline.json")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="alternate baseline file")
    args = parser.parse_args(argv)
    return run(paths=args.paths or None,
               baseline_path=args.baseline,
               update_baseline=args.update_baseline,
               root=REPO_ROOT)


if __name__ == "__main__":
    raise SystemExit(main())
