"""The repo-aware lint rules.

Each rule encodes one hand-enforced discipline of the engine as a
mechanical check.  They are deliberately scoped to the files whose
conventions they understand (see each rule's ``applies_to``) — this is
a repo linter, not a general-purpose one.

Rule catalog (ids are the ``# repro: allow[...]`` suppression keys):

``lock-discipline``
    Graph/Dataset index state may only be mutated under the write lock
    (``with self._lock`` / a helper documented to hold it).
``snapshot-discipline``
    Endpoint read paths must evaluate against pinned snapshots, never
    the live dataset.
``governor-discipline``
    Evaluator functions that consume scan/match batches must charge
    the governor.
``error-taxonomy``
    No ``except Exception`` and no raw builtin raises on the
    endpoint/evaluator/governor paths outside the sanctioned wrappers.
``columnar-dtype-safety``
    No silent int64->int32 narrowing; no numpy ops on overlay dict
    tiers.
``test-determinism``
    No unseeded global randomness, no wall-clock-dependent assertions
    in tests/benchmarks.
``mutable-default``
    No mutable default arguments anywhere in ``src/``.
``assert-validation``
    No ``assert``-as-validation in non-test code (isinstance
    narrowing excepted).
``parallel-safety``
    Worker-side parallel-executor code (``_worker*`` functions,
    ``_Worker*`` classes, ``attach_*`` helpers) must stay
    shared-nothing: no endpoint, live graph/dataset state, or parent
    module caches.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from analysis.lint import Finding, Rule

# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def ancestors(node: ast.AST,
              parents: Dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    while node in parents:
        node = parents[node]
        yield node


def enclosing_function(node: ast.AST, parents: Dict[ast.AST, ast.AST]
                       ) -> Optional[ast.FunctionDef]:
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_class(node: ast.AST, parents: Dict[ast.AST, ast.AST]
                    ) -> Optional[ast.ClassDef]:
    for ancestor in ancestors(node, parents):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None


def dotted_names(node: ast.AST) -> Set[str]:
    """Every plain and dotted name referenced inside ``node``."""
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
            parts: List[str] = []
            current: ast.AST = sub
            while isinstance(current, ast.Attribute):
                parts.append(current.attr)
                current = current.value
            if isinstance(current, ast.Name):
                parts.append(current.id)
                names.add(".".join(reversed(parts)))
    return names


def called_names(node: ast.AST) -> Set[str]:
    """The (last-attribute or plain) names of every call in ``node``."""
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                names.add(func.attr)
    return names


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else None.

    Restricting to the literal ``self`` receiver keeps the protected-
    attribute rules precise: ``summary.epoch = self.epoch`` mutates a
    per-predicate summary, not graph index state, and must not fire.
    """
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


class LockDisciplineRule(Rule):
    """Index-state mutation only under the write lock.

    The snapshot-epoch protocol (PR 5) requires every mutation of a
    graph's id-keyed index state to happen with the per-dataset write
    lock held: the lock is what makes a mutation call an atomic unit
    w.r.t. snapshot publication.  This rule flags any assignment to, or
    mutating call on, the protected attributes outside a ``with
    self._lock`` / ``locked()`` block — unless the enclosing helper's
    docstring documents the lock contract (``"must hold the lock"`` et
    al.), which is how ``_compact`` / ``_unshare`` are sanctioned.
    """

    id = "lock-discipline"
    title = "graph index state mutated only under the write lock"
    rationale = ("unlocked index mutation tears pinned snapshots and "
                 "breaks the atomic-batch guarantee of add_all/locked()")

    #: attributes making up Graph/Dataset index state
    PROTECTED = {"_spo", "_pos", "_osp", "_tombstones", "_columns",
                 "_delta_size", "_size", "_shared", "_snapshot", "epoch",
                 "_graphs"}
    #: method calls that mutate their receiver
    MUTATORS = {"add", "discard", "remove", "clear", "update", "pop",
                "setdefault", "append", "extend", "add_all"}
    #: free functions that mutate an index passed as their first arg
    INDEX_HELPERS = {"_index_add", "_index_remove"}
    #: docstring markers sanctioning a lock-holding helper
    LOCK_DOC_MARKERS = ("must hold the lock", "under the write lock",
                        "holding the lock", "lock is held",
                        "caller holds the lock")

    def applies_to(self, path: str) -> bool:
        return path.endswith("repro/rdf/graph.py")

    def _holds_lock(self, node: ast.AST,
                    parents: Dict[ast.AST, ast.AST]) -> bool:
        for ancestor in ancestors(node, parents):
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    expr = item.context_expr
                    names = dotted_names(expr)
                    if ("self._lock" in names or "locked" in names
                            or "_lock" in names):
                        return True
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                if ancestor.name == "__init__":
                    return True  # construction precedes publication
                doc = ast.get_docstring(ancestor) or ""
                lowered = doc.lower()
                if any(marker in lowered
                       for marker in self.LOCK_DOC_MARKERS):
                    return True
        return False

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        parents = parent_map(tree)
        findings: List[Finding] = []

        def flag(node: ast.AST, what: str) -> None:
            if not self._holds_lock(node, parents):
                findings.append(self.finding(
                    path, node,
                    f"{what} outside the write lock (wrap in `with "
                    f"self._lock:` or document the lock contract in "
                    f"the helper's docstring)", lines))

        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = _self_attr(target)
                    if attr in self.PROTECTED:
                        flag(node, f"assignment to protected index "
                                   f"state `{attr}`")
                        break
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in self.MUTATORS:
                    attr = _self_attr(func.value)
                    if attr in self.PROTECTED:
                        flag(node, f"mutating call `.{func.attr}()` on "
                                   f"protected index state `{attr}`")
                elif isinstance(func, ast.Name) \
                        and func.id in self.INDEX_HELPERS:
                    for arg in node.args[:1]:
                        attr = _self_attr(arg)
                        if attr in self.PROTECTED:
                            flag(node, f"index helper `{func.id}` on "
                                       f"protected state `{attr}`")
        return findings


# ---------------------------------------------------------------------------
# snapshot-discipline
# ---------------------------------------------------------------------------


class SnapshotDisciplineRule(Rule):
    """Endpoint read paths evaluate pinned snapshots, not live state.

    Every read request must pin a :class:`DatasetSnapshot` (via
    ``self._pin()`` or ``dataset.snapshot()``) and evaluate entirely
    against it — handing the *live* dataset to an evaluation context
    reintroduces torn reads under concurrent writers.  The rule flags
    any use of ``self.dataset`` inside the read-path methods that is
    not a ``.snapshot()`` receiver.
    """

    id = "snapshot-discipline"
    title = "read paths must evaluate against pinned snapshots"
    rationale = ("a live-index read races concurrent writers: results "
                 "can tear mid-query, which snapshot isolation exists "
                 "to prevent")

    READ_METHODS = {"select", "ask", "construct", "describe", "query",
                    "explain"}

    def applies_to(self, path: str) -> bool:
        return path.endswith("repro/sparql/endpoint.py")

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        parents = parent_map(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Attribute)
                    and node.attr == "dataset"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                continue
            function = enclosing_function(node, parents)
            if function is None or function.name not in self.READ_METHODS:
                continue
            # sanctioned shape: self.dataset.snapshot()
            parent = parents.get(node)
            grand = parents.get(parent) if parent is not None else None
            if (isinstance(parent, ast.Attribute)
                    and parent.attr == "snapshot"
                    and isinstance(grand, ast.Call)
                    and grand.func is parent):
                continue
            findings.append(self.finding(
                path, node,
                f"read method `{function.name}` touches the live "
                f"`self.dataset` (pin a snapshot via `self._pin()` / "
                f"`.snapshot()` instead)", lines))
        return findings


# ---------------------------------------------------------------------------
# governor-discipline
# ---------------------------------------------------------------------------


class GovernorDisciplineRule(Rule):
    """Batch-consuming evaluator code must charge the governor.

    Deadlines/budgets are enforced *cooperatively* at batch boundaries
    (PR 6): a new loop that pulls scan or match batches without
    charging the governor is invisible to limits and can run away.
    The rule flags any evaluator function that calls a *raw* batch
    producer — the uncharged id-level reads ``match_ids`` /
    ``match_arrays`` / ``triples_ids`` — without referencing the
    governor (a charge call or ``self._gov``) anywhere in its body.
    Internally-charged producers (``_scan_chunks``, ``_vector_matches``,
    ``stream_tables``) pay at production time, so consuming *them*
    needs no further charge; and functions that merely *delegate* a
    producer (``match_arrays`` forwarding to a member graph) are
    exempt.
    """

    id = "governor-discipline"
    title = "batch consumers must charge the governor"
    rationale = ("an uncharged batch loop escapes deadlines and "
                 "budgets: one such query can hold a slot forever")

    BATCH_PRODUCERS = {"match_arrays", "triples_ids", "match_ids"}
    GOVERNOR_MARKS = {"charge_rows", "charge_scan", "tick_scan", "check",
                      "metered", "_gov", "governor"}

    def applies_to(self, path: str) -> bool:
        return path.endswith("repro/sparql/evaluator.py")

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name in self.BATCH_PRODUCERS:
                continue  # delegation wrapper, charged by its consumer
            produced = called_names(node) & self.BATCH_PRODUCERS
            if not produced:
                continue
            names = dotted_names(node) | called_names(node)
            if names & self.GOVERNOR_MARKS:
                continue
            findings.append(self.finding(
                path, node,
                f"`{node.name}` consumes scan/match batches "
                f"({', '.join(sorted(produced))}) without charging the "
                f"governor (charge_rows/charge_scan/tick_scan or "
                f"metered())", lines))
        return findings


# ---------------------------------------------------------------------------
# error-taxonomy
# ---------------------------------------------------------------------------


class ErrorTaxonomyRule(Rule):
    """Typed errors only on the serving path.

    Callers of the endpoint catch :class:`SPARQLError` subclasses with
    machine-readable codes; a ``except Exception`` handler or a raw
    builtin ``raise`` smuggles untyped failures past that contract.
    The one sanctioned ``except Exception`` is the endpoint's
    ``_mapped_errors`` wrapper — it carries an ``allow`` pragma and a
    comment explaining that it *is* the taxonomy boundary.
    """

    id = "error-taxonomy"
    title = "no bare except/raise on the serving path"
    rationale = ("the endpoint contract is typed SPARQLError subclasses "
                 "with stable codes; bare handlers and builtin raises "
                 "leak engine internals to callers")

    RAW_RAISES = {"Exception", "BaseException", "RuntimeError"}

    def applies_to(self, path: str) -> bool:
        return path.endswith(("repro/sparql/endpoint.py",
                              "repro/sparql/evaluator.py",
                              "repro/sparql/governor.py",
                              "repro/olap/engine.py"))

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                broad = node.type is None or (
                    isinstance(node.type, ast.Name)
                    and node.type.id in ("Exception", "BaseException"))
                if broad:
                    caught = (node.type.id
                              if isinstance(node.type, ast.Name)
                              else "everything")
                    findings.append(self.finding(
                        path, node,
                        f"handler catches bare `{caught}` on the "
                        f"serving path (catch typed SPARQLError "
                        f"subclasses, or pragma the sanctioned "
                        f"wrapper)", lines))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) \
                        and isinstance(exc.func, ast.Name):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name in self.RAW_RAISES:
                    findings.append(self.finding(
                        path, node,
                        f"raw `raise {name}` on the serving path "
                        f"(raise a typed EndpointError subclass with a "
                        f"machine-readable code)", lines))
        return findings


# ---------------------------------------------------------------------------
# columnar-dtype-safety
# ---------------------------------------------------------------------------


class ColumnarDtypeSafetyRule(Rule):
    """No silent int64->int32 narrowing; no numpy over dict tiers.

    The columnar tier stores int32 only after proving every id fits
    (:func:`_dtype_for` via ``np.iinfo``); a hard-coded
    ``astype(np.int32)`` elsewhere silently truncates large
    dictionaries.  And the delta overlay is a dict-of-dict-of-set —
    handing it to a numpy constructor builds an object array that
    *looks* like it works and is quadratically slow / semantically
    wrong.
    """

    id = "columnar-dtype-safety"
    title = "no unguarded int32 narrowing, no numpy over overlay dicts"
    rationale = ("a hard-coded int32 cast truncates ids beyond 2^31 "
                 "silently; numpy applied to the dict overlay builds "
                 "object arrays that scan wrong")

    #: enclosing-function references that prove the cast is guarded
    GUARDS = {"_dtype_for", "iinfo"}
    #: numpy constructors/ops that must not receive a dict tier
    NP_CONSUMERS = {"asarray", "array", "concatenate", "stack", "unique",
                    "sort", "lexsort", "searchsorted"}
    OVERLAY_TIERS = {"_spo", "_pos", "_osp", "overlay", "_tombstones"}

    def applies_to(self, path: str) -> bool:
        return "repro/rdf/" in path or path.endswith(
            "repro/sparql/evaluator.py")

    @staticmethod
    def _is_int32(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "int32":
            return True
        return isinstance(node, ast.Constant) and node.value == "int32"

    @staticmethod
    def _is_zero_length(call: ast.Call) -> bool:
        return bool(call.args) and isinstance(call.args[0], ast.Constant) \
            and call.args[0].value == 0

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        parents = parent_map(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # --- narrowing casts -------------------------------------------
            narrow = False
            if isinstance(func, ast.Attribute) and func.attr == "astype" \
                    and node.args and self._is_int32(node.args[0]):
                narrow = True
            for keyword in node.keywords:
                if keyword.arg == "dtype" and self._is_int32(keyword.value):
                    if not (isinstance(func, ast.Attribute)
                            and func.attr in ("empty", "zeros", "ones")
                            and self._is_zero_length(node)):
                        narrow = True
            if narrow:
                function = enclosing_function(node, parents)
                guard_scope = function if function is not None else tree
                if not (called_names(guard_scope) & self.GUARDS):
                    findings.append(self.finding(
                        path, node,
                        "hard-coded int32 narrowing without a fits "
                        "guard (size the dtype via _dtype_for / "
                        "np.iinfo, or prove the range)", lines))
            # --- numpy over overlay dict tiers -----------------------------
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in ("np", "numpy") \
                    and func.attr in self.NP_CONSUMERS:
                for arg in node.args:
                    attr = _self_attr(arg)
                    if attr in self.OVERLAY_TIERS:
                        findings.append(self.finding(
                            path, node,
                            f"numpy `{func.attr}` applied to overlay "
                            f"dict tier `{attr}` (materialize ids "
                            f"explicitly first — the overlay is a "
                            f"dict-of-dict-of-set, not an array)",
                            lines))
        return findings


# ---------------------------------------------------------------------------
# test-determinism
# ---------------------------------------------------------------------------


class TestDeterminismRule(Rule):
    """Tests and benchmarks must be deterministic.

    Global-RNG calls (``random.random()``, legacy ``np.random.*``)
    derive from process-wide hidden state; a test that flakes under
    them wastes every future CI run.  Wall-clock reads inside
    assertions make results depend on the machine's load and the time
    of day.  Seeded instances (``random.Random(seed)``,
    ``np.random.default_rng(seed)``) are the sanctioned pattern.
    """

    id = "test-determinism"
    title = "no unseeded randomness / wall-clock asserts in tests"
    rationale = ("unseeded randomness makes failures unreproducible; "
                 "wall-clock assertions flake under load")

    RANDOM_FUNCS = {"random", "randint", "randrange", "choice", "choices",
                    "shuffle", "sample", "uniform", "gauss", "betavariate",
                    "expovariate", "normalvariate"}
    NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence"}
    WALL_CLOCK = {"time.time", "datetime.now", "datetime.utcnow",
                  "date.today"}

    def applies_to(self, path: str) -> bool:
        return path.startswith(("tests/", "benchmarks/"))

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and isinstance(func.value, ast.Name):
                    owner, attr = func.value.id, func.attr
                    if owner == "random" and attr in self.RANDOM_FUNCS:
                        findings.append(self.finding(
                            path, node,
                            f"global-RNG call `random.{attr}()` (use a "
                            f"seeded `random.Random(seed)` instance)",
                            lines))
                    elif owner == "random" and attr == "seed" \
                            and not node.args:
                        findings.append(self.finding(
                            path, node,
                            "`random.seed()` without a seed value",
                            lines))
                elif isinstance(func, ast.Attribute) \
                        and isinstance(func.value, ast.Attribute) \
                        and func.value.attr == "random" \
                        and isinstance(func.value.value, ast.Name) \
                        and func.value.value.id in ("np", "numpy") \
                        and func.attr not in self.NP_RANDOM_OK:
                    findings.append(self.finding(
                        path, node,
                        f"legacy global `np.random.{func.attr}` (use "
                        f"`np.random.default_rng(seed)`)", lines))
            elif isinstance(node, ast.Assert):
                clocks = dotted_names(node.test) & self.WALL_CLOCK
                if clocks:
                    findings.append(self.finding(
                        path, node,
                        f"assertion depends on wall clock "
                        f"({', '.join(sorted(clocks))}) — capture "
                        f"times outside the assert or use injected "
                        f"clocks", lines))
        return findings


# ---------------------------------------------------------------------------
# mutable-default
# ---------------------------------------------------------------------------


class MutableDefaultRule(Rule):
    """No mutable default argument values in library code."""

    id = "mutable-default"
    title = "no mutable default arguments"
    rationale = ("a mutable default is shared across every call; state "
                 "leaks between requests on a long-lived endpoint")

    MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict",
                     "Counter", "deque", "bytearray"}

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def _mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self.MUTABLE_CALLS
        return False

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) \
                + [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._mutable(default):
                    findings.append(self.finding(
                        path, default,
                        f"mutable default argument in `{node.name}` "
                        f"(default to None and create inside the "
                        f"body)", lines))
        return findings


# ---------------------------------------------------------------------------
# assert-validation
# ---------------------------------------------------------------------------


class AssertValidationRule(Rule):
    """``assert`` is not validation in library code.

    ``python -O`` strips asserts, so an assert guarding input or state
    silently stops guarding in optimized runs.  The narrow idiom
    ``assert isinstance(x, T)`` is allowed: it encodes a type-narrowing
    fact for readers and checkers, not a runtime contract.
    """

    id = "assert-validation"
    title = "no assert-as-validation outside tests"
    rationale = ("asserts vanish under python -O; real validation must "
                 "raise typed errors")

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assert):
                continue
            test = node.test
            if isinstance(test, ast.Call) \
                    and isinstance(test.func, ast.Name) \
                    and test.func.id == "isinstance":
                continue  # type-narrowing idiom
            findings.append(self.finding(
                path, node,
                "assert used as validation in library code (raise a "
                "typed error instead; asserts vanish under -O)", lines))
        return findings


# ---------------------------------------------------------------------------
# parallel-safety
# ---------------------------------------------------------------------------


class ParallelSafetyRule(Rule):
    """Worker-side parallel code must stay shared-nothing.

    A morsel worker is a *spawned* process: module globals it touches
    are its own private copies, so reading the parent's caches
    (``PLAN_CACHE``, ``STREAM_TELEMETRY``) silently yields stale or
    empty state, and touching endpoint / live-graph classes implies a
    heap that simply is not there.  Everything a worker may use
    arrives through its task dict: SHM manifests, the shipped
    dictionary and the pattern list.  This rule flags any reference to
    parent-process state inside the worker-side scopes — functions
    named ``_worker*`` or ``attach_*`` and methods of ``_Worker*``
    classes — of the parallel executor and the SHM mapping module.
    """

    id = "parallel-safety"
    title = "worker-side code must not touch parent-process state"
    rationale = ("spawned workers see private module globals and no "
                 "parent heap: touching endpoint state or module "
                 "caches from a worker reads stale/empty copies and "
                 "breaks the shared-nothing morsel contract")

    #: parent-process state a worker must never reference: the serving
    #: layer, live graph state, and the parent's module-level caches
    FORBIDDEN = {"LocalEndpoint", "Graph", "Dataset", "DatasetSnapshot",
                 "GraphSnapshot", "PLAN_CACHE", "STREAM_TELEMETRY",
                 "GOVERNOR", "CONCURRENCY", "SHM_SEGMENTS", "FAILPOINTS",
                 "get_plan"}

    def applies_to(self, path: str) -> bool:
        return path.endswith(("repro/sparql/parallel.py",
                              "repro/olap/parallel.py",
                              "repro/rdf/shm.py"))

    @staticmethod
    def _worker_scopes(tree: ast.AST) -> Iterator[ast.FunctionDef]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) \
                    and node.name.lstrip("_").startswith("Worker"):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        yield member
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and (node.name.startswith("_worker")
                         or node.name.startswith("attach_")):
                yield node

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[ast.AST] = set()
        for scope in self._worker_scopes(tree):
            if scope in seen:
                continue
            seen.add(scope)
            touched = (dotted_names(scope) | called_names(scope)) \
                & self.FORBIDDEN
            if touched:
                findings.append(self.finding(
                    path, scope,
                    f"worker-side `{scope.name}` touches parent-process "
                    f"state ({', '.join(sorted(touched))}) — workers are "
                    f"shared-nothing: ship what they need through the "
                    f"task dict / SHM manifests", lines))
        return findings


ALL_RULES: List[Rule] = [
    LockDisciplineRule(),
    SnapshotDisciplineRule(),
    GovernorDisciplineRule(),
    ErrorTaxonomyRule(),
    ColumnarDtypeSafetyRule(),
    TestDeterminismRule(),
    MutableDefaultRule(),
    AssertValidationRule(),
    ParallelSafetyRule(),
]

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
