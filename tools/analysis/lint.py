"""The AST lint engine: findings, suppression pragmas, baselines.

This module is rule-agnostic infrastructure; the repo-aware rules live
in :mod:`analysis.rules`.  Three pieces:

* :class:`Finding` — one violation, with a content-addressed
  *fingerprint* (path + rule + hash of the offending source line) so
  baseline entries survive unrelated line-number churn;
* suppression — a ``# repro: allow[rule-id]`` comment on the flagged
  line or the line directly above silences that rule there (several
  ids may be comma-separated); every suppression is expected to carry
  a neighbouring comment saying *why*;
* :class:`Baseline` — a checked-in JSON set of accepted fingerprints
  (``tools/analysis/baseline.json``): findings in the baseline are
  reported but do not fail the build, new findings do, and stale
  baseline entries (fixed code) are reported so the file gets pruned.

The engine has no third-party dependencies: stdlib ``ast`` only.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

#: ``# repro: allow[rule-id]`` (or ``allow[a, b]``) suppression pragma.
ALLOW_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([a-z0-9\-_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str       # repo-relative, forward slashes
    line: int       # 1-based
    message: str
    snippet: str    # the stripped offending source line

    @property
    def fingerprint(self) -> str:
        """Content-addressed id used by the baseline: stable across
        moves of the offending line, invalidated when it changes."""
        digest = hashlib.sha256(self.snippet.encode("utf-8")).hexdigest()
        return f"{self.path}:{self.rule}:{digest[:12]}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` / ``title`` / ``rationale`` and implement
    :meth:`check`; :meth:`applies_to` scopes the rule to the files it
    understands (repo-relative posix paths).
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, path: str) -> bool:
        raise NotImplementedError

    def check(self, path: str, tree: ast.AST,
              lines: Sequence[str]) -> List[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str,
                lines: Sequence[str]) -> Finding:
        line = getattr(node, "lineno", 1)
        snippet = lines[line - 1].strip() if line <= len(lines) else ""
        return Finding(self.id, path, line, message, snippet)


def allowed_lines(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map of 1-based line number -> rule ids suppressed there.

    A pragma suppresses its own line and the line below it, so both
    trailing-comment and own-line-comment styles work.
    """
    allowed: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = ALLOW_PRAGMA.search(text)
        if match is None:
            continue
        ids = {part.strip() for part in match.group(1).split(",")
               if part.strip()}
        allowed.setdefault(number, set()).update(ids)
        allowed.setdefault(number + 1, set()).update(ids)
    return allowed


def _suppressed(finding: Finding, allowed: Dict[int, Set[str]]) -> bool:
    ids = allowed.get(finding.line)
    return ids is not None and (finding.rule in ids or "*" in ids)


def lint_file(path: pathlib.Path, rules: Sequence[Rule],
              root: pathlib.Path = REPO_ROOT) -> List[Finding]:
    """All unsuppressed findings for one file."""
    rel = path.resolve().relative_to(root).as_posix()
    applicable = [rule for rule in rules if rule.applies_to(rel)]
    if not applicable:
        return []
    source = path.read_text(encoding="utf-8")
    return lint_source(source, rel, applicable)


def lint_source(source: str, path: str,
                rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """All unsuppressed findings for ``source`` presented as ``path``.

    The main entry point for tests and docs: rules are scoped by the
    *claimed* path, so a fixture snippet exercises exactly the rules
    that would fire on a real file at that location.
    """
    if rules is None:
        from analysis.rules import ALL_RULES
        rules = [rule for rule in ALL_RULES if rule.applies_to(path)]
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    allowed = allowed_lines(lines)
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(path, tree, lines):
            if not _suppressed(finding, allowed):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_paths(paths: Iterable[pathlib.Path], rules: Sequence[Rule],
               root: pathlib.Path = REPO_ROOT) -> List[Finding]:
    findings: List[Finding] = []
    for path in paths:
        findings.extend(lint_file(path, rules, root))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def default_targets(root: pathlib.Path = REPO_ROOT) -> List[pathlib.Path]:
    """The python files the repo gate lints: src, tests, benchmarks."""
    targets: List[pathlib.Path] = []
    for base in ("src", "tests", "benchmarks"):
        for path in sorted((root / base).rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            targets.append(path)
    return targets


class Baseline:
    """The checked-in set of accepted finding fingerprints."""

    def __init__(self, fingerprints: Dict[str, str]) -> None:
        #: fingerprint -> human-readable location note
        self.fingerprints = dict(fingerprints)

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        if not path.exists():
            return cls({})
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(data.get("accepted", {}))

    def save(self, path: pathlib.Path) -> None:
        payload = {
            "comment": "Accepted pre-existing lint findings; new "
                       "findings fail the build.  Regenerate with "
                       "`python tools/analysis/run_lint.py "
                       "--update-baseline` and justify every entry "
                       "in the PR.",
            "accepted": dict(sorted(self.fingerprints.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    def split(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """``(new, accepted, stale)`` relative to this baseline."""
        seen: Set[str] = set()
        new: List[Finding] = []
        accepted: List[Finding] = []
        for finding in findings:
            fp = finding.fingerprint
            seen.add(fp)
            (accepted if fp in self.fingerprints else new).append(finding)
        stale = sorted(fp for fp in self.fingerprints if fp not in seen)
        return new, accepted, stale


def run(paths: Optional[Sequence[pathlib.Path]] = None,
        baseline_path: Optional[pathlib.Path] = None,
        update_baseline: bool = False,
        root: pathlib.Path = REPO_ROOT) -> int:
    """The CLI body: lint, apply the baseline, print, return exit code."""
    from analysis.rules import ALL_RULES
    if baseline_path is None:
        baseline_path = root / "tools" / "analysis" / "baseline.json"
    targets = list(paths) if paths else default_targets(root)
    findings = lint_paths(targets, ALL_RULES, root)
    baseline = Baseline.load(baseline_path)
    if update_baseline:
        baseline = Baseline({f.fingerprint: f.render() for f in findings})
        baseline.save(baseline_path)
        print(f"baseline updated: {len(findings)} accepted finding(s) "
              f"-> {baseline_path.relative_to(root)}")
        return 0
    new, accepted, stale = baseline.split(findings)
    for finding in new:
        print(finding.render())
    for finding in accepted:
        print(f"{finding.render()} (baselined)")
    for fingerprint in stale:
        print(f"stale baseline entry (fixed? prune it): {fingerprint}")
    checked = len(targets)
    print(f"lint: {checked} files, {len(new)} new finding(s), "
          f"{len(accepted)} baselined, {len(stale)} stale baseline "
          f"entr{'y' if len(stale) == 1 else 'ies'}")
    return 1 if new or stale else 0
