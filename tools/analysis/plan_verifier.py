"""Offline plan-verifier harness: the generated query corpus in CI.

Re-exports the IR checks from :mod:`repro.sparql.plan_verifier` (the
importable core the optimizer's ``REPRO_VERIFY_PLANS`` runtime hook
uses) and, as a CLI, drives them over the repository's generated plan
corpus: every E1–E11-shaped query from the columnar differential
suite plus the streaming differential corpus is executed against a
populated endpoint with plan verification forced on, so each freshly
planned :class:`PhysicalPlan` is checked before it enters the plan
cache.  Exit status 0 when every plan verifies; 1 with the offending
query and step otherwise.

Usage::

    python tools/analysis/plan_verifier.py
"""

from __future__ import annotations

import pathlib
import sys
from typing import List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
for entry in (REPO_ROOT / "src", REPO_ROOT):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from repro.sparql.plan_verifier import (  # noqa: E402,F401  (re-export)
    PlanVerificationError,
    collect_violations,
    verify_plan,
)


def corpus() -> List[str]:
    """The generated plan corpus: E1–E11 shapes + differential suite."""
    from tests.sparql.test_columnar_equivalence import CORPUS
    from tests.sparql.test_streaming_equivalence import DIFFERENTIAL_QUERIES
    queries: List[str] = []
    for query in list(CORPUS) + list(DIFFERENTIAL_QUERIES):
        if query not in queries:
            queries.append(query)
    return queries


def _query_form(query: str) -> str:
    upper = query.upper()
    for form in ("SELECT", "ASK", "CONSTRUCT", "DESCRIBE"):
        position = upper.find(form)
        if position != -1:
            return form
    return "SELECT"


def run_corpus() -> Tuple[int, int, List[str]]:
    """``(queries, plans_verified, failures)`` over the full corpus."""
    import repro.sparql.optimizer as optimizer
    import repro.sparql.plan_verifier as core
    from repro.sparql import LocalEndpoint
    from tests.sparql.test_columnar_equivalence import populate

    endpoint = LocalEndpoint()
    populate(endpoint)

    verified = {"plans": 0}
    real_verify = core.verify_plan

    def counting_verify(plan, patterns=None,
                        bound_names=frozenset()) -> None:
        verified["plans"] += 1
        real_verify(plan, patterns, bound_names)

    failures: List[str] = []
    queries = corpus()
    saved_flag = optimizer.VERIFY_PLANS
    optimizer.VERIFY_PLANS = True
    core.verify_plan = counting_verify
    try:
        for query in queries:
            form = _query_form(query)
            try:
                if form == "ASK":
                    endpoint.ask(query)
                elif form == "CONSTRUCT":
                    endpoint.construct(query)
                elif form == "DESCRIBE":
                    endpoint.describe(query)
                else:
                    endpoint.select(query)
            except PlanVerificationError as error:
                failures.append(f"{error}\n  query: {' '.join(query.split())}")
    finally:
        optimizer.VERIFY_PLANS = saved_flag
        core.verify_plan = real_verify
    return len(queries), verified["plans"], failures


def main() -> int:
    queries, plans, failures = run_corpus()
    for failure in failures:
        print(f"plan-verifier FAILURE: {failure}")
    print(f"plan-verifier: {queries} corpus queries, {plans} plan(s) "
          f"verified, {len(failures)} failure(s)")
    if plans == 0:
        print("plan-verifier FAILURE: no plans were verified — the "
              "runtime hook did not fire")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
