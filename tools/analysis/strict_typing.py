"""Strict-typing gate for the core modules.

The concurrency, governor, columnar and statistics layers are the
code whose bugs surface as data corruption rather than stack traces,
so they carry the strictest typing bar in the repo:

* when **mypy** is installed, the gate runs ``mypy --strict`` over the
  core module set and fails on any error;
* when it is not (this container ships no third-party type checker,
  and the repo policy forbids installing one), the gate degrades to an
  AST-enforced strictness subset: every function parameter and return
  in the core modules must be annotated, and every ``type: ignore``
  must carry a bracketed error code (``type: ignore[misc]``) — a bare
  ignore silences *everything*, which is how dead ignores accumulate.

Either way the command line is the same (``make lint`` runs it)::

    python tools/analysis/strict_typing.py
"""

from __future__ import annotations

import ast
import pathlib
import re
import subprocess
import sys
from typing import List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

#: The strictly-typed core module set (repo-relative).
CORE_MODULES = (
    "src/repro/rdf/columnar.py",
    "src/repro/rdf/concurrency.py",
    "src/repro/sparql/governor.py",
    "src/repro/rdf/stats.py",
)

#: ``# type: ignore`` with no ``[code]`` qualifier.
BARE_IGNORE = re.compile(r"#\s*type:\s*ignore(?!\[)")

#: Parameter names exempt from annotation (receivers).
RECEIVERS = {"self", "cls"}


def mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy(modules: List[str]) -> int:
    command = [sys.executable, "-m", "mypy", "--strict",
               "--no-error-summary"] + modules
    process = subprocess.run(command, cwd=str(REPO_ROOT),
                             capture_output=True, text=True)
    output = (process.stdout + process.stderr).strip()
    if output:
        print(output)
    return process.returncode


def _missing_annotations(tree: ast.AST, path: str) -> List[str]:
    problems: List[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        arguments = node.args
        positional = arguments.posonlyargs + arguments.args
        for position, argument in enumerate(positional):
            if position == 0 and argument.arg in RECEIVERS:
                continue
            if argument.annotation is None:
                problems.append(
                    f"{path}:{node.lineno}: parameter "
                    f"`{argument.arg}` of `{node.name}` lacks a type "
                    f"annotation")
        for argument in arguments.kwonlyargs:
            if argument.annotation is None:
                problems.append(
                    f"{path}:{node.lineno}: keyword parameter "
                    f"`{argument.arg}` of `{node.name}` lacks a type "
                    f"annotation")
        for argument in (arguments.vararg, arguments.kwarg):
            if argument is not None and argument.annotation is None:
                problems.append(
                    f"{path}:{node.lineno}: star parameter "
                    f"`{argument.arg}` of `{node.name}` lacks a type "
                    f"annotation")
        if node.returns is None:
            problems.append(
                f"{path}:{node.lineno}: `{node.name}` lacks a return "
                f"annotation")
    return problems


def run_fallback(modules: List[str]) -> int:
    problems: List[str] = []
    for module in modules:
        path = REPO_ROOT / module
        source = path.read_text(encoding="utf-8")
        problems.extend(
            _missing_annotations(ast.parse(source, filename=module),
                                 module))
        for number, line in enumerate(source.splitlines(), start=1):
            if BARE_IGNORE.search(line):
                problems.append(
                    f"{module}:{number}: bare `type: ignore` (qualify "
                    f"with an error code, e.g. `type: ignore[misc]`)")
    for problem in problems:
        print(problem)
    return 1 if problems else 0


def main() -> int:
    modules = list(CORE_MODULES)
    if mypy_available():
        status = run_mypy(modules)
        mode = "mypy --strict"
    else:
        status = run_fallback(modules)
        mode = "annotation fallback (mypy unavailable)"
    print(f"strict-typing [{mode}]: {len(modules)} core modules, "
          f"{'FAIL' if status else 'ok'}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
