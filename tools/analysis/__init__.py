"""Repo-specific static analysis: AST lint rules + plan-IR verifier.

The engine (:mod:`analysis.lint`) walks the repository's Python files
with stdlib :mod:`ast` visitors and applies the repo-aware rule set in
:mod:`analysis.rules` — discipline checks the hand-written conventions
of the concurrency, governor and columnar layers rely on.  Findings are
suppressible per line with ``# repro: allow[rule-id]`` and gated
against a checked-in baseline (``tools/analysis/baseline.json``), so
pre-existing accepted findings never block CI while new violations
fail it.

Run ``make lint`` (or ``python tools/analysis/run_lint.py``) for the
full gate: lint rules, the PhysicalPlan verifier over the generated
query corpus, and strict typing on the core modules.
"""
