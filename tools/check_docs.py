#!/usr/bin/env python
"""Run the doctests embedded in README.md and docs/*.md.

Documentation that shows code drifts; documentation that *runs* code
cannot.  Every ``>>>`` example in the top-level README and the files
under ``docs/`` is executed verbatim by :mod:`doctest` (NORMALIZE /
ELLIPSIS enabled so plans can elide machine-specific figures), and the
build fails when any example's output no longer matches the engine.

Usage::

    PYTHONPATH=src python tools/check_docs.py        # or: make docs-check
    PYTHONPATH=src python tools/check_docs.py -v     # show every example

The checker is also exercised by the tier-1 suite (``tests/test_docs.py``),
so ``pytest`` alone catches stale docs.
"""

from __future__ import annotations

import doctest
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: the documentation files whose examples must execute
FILES = ["README.md", "docs/architecture.md", "docs/statistics.md",
         "docs/performance.md", "docs/storage.md", "docs/analysis.md",
         "docs/parallel.md", "docs/olap.md"]

#: files that must contain at least one runnable example — a doc suite
#: whose examples silently vanished should fail, not pass vacuously
MUST_HAVE_EXAMPLES = ["README.md", "docs/architecture.md",
                      "docs/statistics.md", "docs/storage.md",
                      "docs/analysis.md", "docs/parallel.md",
                      "docs/olap.md"]

OPTIONS = (doctest.ELLIPSIS
           | doctest.NORMALIZE_WHITESPACE
           | doctest.IGNORE_EXCEPTION_DETAIL)


def check(verbose: bool = False) -> int:
    sys.path.insert(0, str(ROOT / "src"))
    exit_code = 0
    for name in FILES:
        path = ROOT / name
        if not path.exists():
            print(f"{name}: MISSING")
            exit_code = 1
            continue
        result = doctest.testfile(str(path), module_relative=False,
                                  optionflags=OPTIONS, verbose=verbose)
        status = "ok" if result.failed == 0 else "FAIL"
        print(f"{name}: {result.attempted} examples, "
              f"{result.failed} failures [{status}]")
        if result.failed:
            exit_code = 1
        if result.attempted == 0 and name in MUST_HAVE_EXAMPLES:
            print(f"{name}: expected at least one runnable example")
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    raise SystemExit(check(verbose="-v" in sys.argv[1:]))
