PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-baseline docs-check bench bench-smoke \
	bench-baseline bench-plan bench-plan-baseline bench-stream \
	bench-stream-baseline bench-concurrency bench-resilience \
	bench-resilience-baseline bench-join bench-join-baseline \
	bench-parallel bench-olap

## Tier-1 verification: static analysis + docs doctests + the full
## unit/integration suite.
test: lint docs-check
	$(PYTHON) -m pytest -x -q

## Static analysis gate: the repo-aware AST lint rules (against
## tools/analysis/baseline.json), the PhysicalPlan verifier over the
## generated E1-E11 + differential query corpus, and strict typing on
## the core modules (mypy --strict when installed, the annotation
## fallback otherwise).  Also covered by tests/test_analysis_gate.py,
## so plain pytest catches violations too.
lint:
	$(PYTHON) tools/analysis/run_lint.py
	$(PYTHON) tools/analysis/plan_verifier.py
	$(PYTHON) tools/analysis/strict_typing.py

## Accept the current lint findings into the checked-in baseline
## (justify every new entry in the PR).
lint-baseline:
	$(PYTHON) tools/analysis/run_lint.py --update-baseline

## Run the doctests embedded in README.md and docs/*.md (also covered
## by tests/test_docs.py, so plain pytest catches stale docs too).
docs-check:
	$(PYTHON) tools/check_docs.py

## Full paper-scale benchmark suite (slow; REPRO_BENCH_OBS=80000 for
## the paper's complete demo subset).
bench:
	$(PYTHON) -m pytest benchmarks -q

## Fast regression gate over the querying hot path: runs the E3/E6
## workload at a small scale and fails on >20% slowdown vs the
## committed baseline (benchmarks/baseline.json).
bench-smoke:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_regression.py

## Refresh the committed smoke baseline after an intentional change.
bench-baseline:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_regression.py --update

## Plan-quality gate: estimated plan cost of every E3/E6 query must
## stay within 2x of the committed baseline (benchmarks/plan_baseline.json).
bench-plan:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_plans.py

## Refresh the committed plan baseline after an intentional change.
bench-plan-baseline:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_plans.py --update

## Streaming gate: probe / streamed-row counts of a DISTINCT-LIMIT and
## an OPTIONAL-LIMIT query must stay within 2x of the committed
## baseline (and results must match materialized execution exactly).
bench-stream:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_regression.py --stream

## Refresh the committed streaming baseline after an intentional change.
bench-stream-baseline:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_regression.py --stream --update

## Concurrency gate: 8 interactive readers + 1 bulk writer under a
## wall-clock budget; snapshot isolation must deliver >= 2x the
## aggregate read throughput of a serialized-lock control, with
## concurrent results identical to single-threaded execution.
bench-concurrency:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_concurrency.py

## Resilience gate: healthy readers share the endpoint with injected
## hanging queries, a crashing bulk writer and an admission burst;
## every fault must surface as a typed governed error, healthy p99
## must stay within 3x of fault-free, crashed batches must roll back
## completely, and concurrent results must match single-threaded.
bench-resilience:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_resilience.py

## Refresh the committed resilience reference numbers.
bench-resilience-baseline:
	REPRO_BENCH_OBS=2000 $(PYTHON) benchmarks/check_resilience.py --update

## Columnar-storage gate: >=5x triple-pattern scan throughput vs the
## legacy dict backend at 100k observations, compaction latency under
## its ceiling, and a 1M-observation bulk load + E3-shaped aggregation
## inside the governor's default deadline.  Throughput history lands in
## benchmarks/join_baseline.json.
bench-join:
	$(PYTHON) benchmarks/check_join.py

## Refresh the recorded join/compaction throughput history.
bench-join-baseline:
	$(PYTHON) benchmarks/check_join.py --update

## Parallel-execution gate: the morsel-driven executor must run the
## paper-scale grouped aggregation at least 2x faster than serial
## (3x target) with 4 workers, with results identical to the serial
## path and zero leaked shared-memory segments after close.
bench-parallel:
	REPRO_BENCH_OBS=100000 $(PYTHON) benchmarks/check_parallel.py

## Columnar-OLAP gate: vectorized star ETL >= 5x the reference
## extractor at 100k observations (byte-identical fact tables), the
## SUM/AVG partial pushdown >= 2x serial on the star-shaped grouped
## aggregate, shared-fact-snapshot cells identical to the serial
## native engine, zero leaked shared-memory segments after close.
bench-olap:
	REPRO_BENCH_OBS=100000 $(PYTHON) benchmarks/check_olap.py
